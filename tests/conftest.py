"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.model.identifiers import identity_assignment, random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


@pytest.fixture
def ring12():
    """A 12-node cycle."""
    return cycle_graph(12)


@pytest.fixture
def ring12_random_ids():
    """A deterministic 'random' identifier assignment for the 12-node cycle."""
    return random_assignment(12, seed=1234)


@pytest.fixture
def ring12_sorted_ids():
    """Identifiers 0..11 in ring order."""
    return identity_assignment(12)


@pytest.fixture
def path7():
    """A 7-node path."""
    return path_graph(7)


@pytest.fixture
def largest_id_algorithm():
    """The paper's Section 2 algorithm."""
    return LargestIdAlgorithm()
