"""The bench-trend report: floors, headroom, sparklines, git fallback."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"

sys.path.insert(0, str(SCRIPTS))

import bench_trend  # noqa: E402


def _write(tmp_path, name, document):
    (tmp_path / name).write_text(json.dumps(document), encoding="utf-8")


KERNEL_DOC = {
    "kind": "repro-bench-kernel",
    "results": {
        "batched_sampling_python": {"speedup": 8.0, "min_speedup": 1.0},
        "fallback_rule_ring8": {"kernel_s": 0.5},
    },
}

OBS_DOC = {
    "kind": "repro-bench-obs",
    "results": {
        "obs_overhead_sampling": {"speedup": 1.02, "min_speedup": 0.95},
        "noop_span_call": {"calls": 1000, "total_s": 0.001},
    },
}


class TestSparkline:
    def test_maps_low_to_high_glyphs(self):
        line = bench_trend.sparkline([1.0, 2.0, 3.0])
        assert len(line) == 3
        assert line[0] == bench_trend.SPARKS[0]
        assert line[-1] == bench_trend.SPARKS[-1]

    def test_flat_series_renders_full_blocks(self):
        assert bench_trend.sparkline([2.0, 2.0]) == bench_trend.SPARKS[-1] * 2

    def test_short_series_renders_nothing(self):
        assert bench_trend.sparkline([]) == ""
        assert bench_trend.sparkline([1.0]) == ""


class TestTrendRows:
    def test_rows_carry_floor_and_headroom(self, tmp_path):
        _write(tmp_path, "BENCH_kernel.json", KERNEL_DOC)
        rows = bench_trend.trend_rows(
            tmp_path / "BENCH_kernel.json", tmp_path, history=0, use_git=False
        )
        # Entries without a speedup (timing-only) are skipped entirely.
        assert [row["key"] for row in rows] == ["batched_sampling_python"]
        (row,) = rows
        assert row["speedup"] == 8.0
        assert row["floor"] == 1.0
        assert row["headroom"] == pytest.approx(8.0)
        assert row["trajectory"] == [8.0]

    def test_ungated_entries_have_no_floor(self, tmp_path):
        document = {
            "kind": "repro-bench-api",
            "min_speedup": 1.5,
            "results": {
                "repeated_simulate_n64": {"speedup": 9.0},
                "repeated_worst_case_n8": {"speedup": 0.9},
            },
        }
        _write(tmp_path, "BENCH_api.json", document)
        rows = bench_trend.trend_rows(
            tmp_path / "BENCH_api.json", tmp_path, history=0, use_git=False
        )
        by_key = {row["key"]: row for row in rows}
        # The gated entry inherits the artifact-level floor ...
        assert by_key["repeated_simulate_n64"]["floor"] == 1.5
        assert by_key["repeated_simulate_n64"]["headroom"] == pytest.approx(6.0)
        # ... while the informational entry is reported floor-free.
        assert by_key["repeated_worst_case_n8"]["floor"] is None
        assert by_key["repeated_worst_case_n8"]["headroom"] is None

    def test_untracked_artifact_degrades_to_current_only(self, tmp_path):
        # tmp_path is no git repository: history lookup must come back
        # empty and the trajectory contain only the working-tree value.
        _write(tmp_path, "BENCH_obs.json", OBS_DOC)
        rows = bench_trend.trend_rows(
            tmp_path / "BENCH_obs.json", tmp_path, history=10, use_git=True
        )
        assert rows[0]["trajectory"] == [1.02]


class TestMain:
    def test_text_report_lists_every_artifact(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_kernel.json", KERNEL_DOC)
        _write(tmp_path, "BENCH_obs.json", OBS_DOC)
        assert bench_trend.main(["--root", str(tmp_path), "--no-git"]) == 0
        output = capsys.readouterr().out
        assert "2 artifacts" in output
        assert "BENCH_kernel.json" in output
        assert "batched_sampling_python" in output
        assert "obs_overhead_sampling" in output
        assert "headroom" in output

    def test_markdown_report_is_a_table(self, tmp_path, capsys):
        _write(tmp_path, "BENCH_obs.json", OBS_DOC)
        assert (
            bench_trend.main(["--root", str(tmp_path), "--no-git", "--markdown"])
            == 0
        )
        output = capsys.readouterr().out
        assert "| artifact | benchmark |" in output
        assert "| BENCH_obs.json | obs_overhead_sampling | 1.02x | 0.95x |" in output

    def test_empty_root_fails(self, tmp_path):
        assert bench_trend.main(["--root", str(tmp_path)]) == 1

    def test_runs_against_the_real_repository(self, capsys):
        # The committed artifacts must produce a healthy report end to end
        # (git history included — this exercises the subprocess path).
        assert bench_trend.main(["--root", str(REPO_ROOT)]) == 0
        output = capsys.readouterr().out
        assert "BENCH_obs.json" in output
