"""Span tracer: nesting, timing, read-outs, bounds, and the off switch."""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import spans
from repro.obs.spans import (
    MAX_CHILD_SPANS,
    MAX_ROOT_SPANS,
    NOOP_SPAN,
    Span,
    chrome_trace_events,
    finished_roots,
    span,
    summarize_spans,
    top_spans,
    tracer,
    write_chrome_trace,
)


def _enabled():
    spans.enable()
    spans.reset_spans()


class TestSwitch:
    def test_disabled_returns_the_noop_singleton(self):
        spans.disable()
        assert span("dist.exact") is NOOP_SPAN
        assert span("kernel.simulate_batch", rows=3) is NOOP_SPAN

    def test_noop_span_is_inert(self):
        spans.disable()
        with span("a") as item:
            assert item is NOOP_SPAN
            assert item.set(n=3) is NOOP_SPAN
        assert finished_roots() == []
        assert item.enabled is False

    def test_enabled_returns_real_spans(self):
        _enabled()
        item = span("a", n=3)
        assert isinstance(item, Span)
        assert item.enabled is True
        assert item.attrs == {"n": 3}

    def test_env_resolution_rejects_unknown_values(self, monkeypatch):
        monkeypatch.setenv(spans.OBS_ENV, "sometimes")
        spans._state = None
        with pytest.raises(ConfigurationError, match="REPRO_OBS"):
            spans.obs_enabled()
        spans._state = None

    @pytest.mark.parametrize(
        "raw, expected",
        [("", False), ("off", False), ("on", True), (" ON ", True)],
    )
    def test_env_resolution_accepts_documented_values(
        self, monkeypatch, raw, expected
    ):
        monkeypatch.setenv(spans.OBS_ENV, raw)
        spans._state = None
        assert spans.obs_enabled() is expected


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self):
        _enabled()
        with span("api.query"):
            with span("engine.search_cell"):
                with span("kernel.simulate_batch"):
                    pass
            with span("engine.search_cell"):
                pass
        roots = finished_roots()
        assert [root.name for root in roots] == ["api.query"]
        cells = roots[0].children
        assert [cell.name for cell in cells] == [
            "engine.search_cell",
            "engine.search_cell",
        ]
        assert [child.name for child in cells[0].children] == [
            "kernel.simulate_batch"
        ]
        assert cells[1].children == []

    def test_sequential_roots_accumulate(self):
        _enabled()
        for _ in range(3):
            with span("api.query"):
                pass
        assert len(finished_roots()) == 3

    def test_durations_are_positive_and_nested_within_parent(self):
        _enabled()
        with span("outer") as outer:
            with span("inner") as inner:
                time.sleep(0.002)
        assert inner.duration_s > 0.0
        assert outer.duration_s >= inner.duration_s

    def test_set_updates_attributes_after_creation(self):
        _enabled()
        with span("a", n=1) as item:
            item.set(rows=7)
        assert item.attrs == {"n": 1, "rows": 7}

    def test_exceptions_propagate_and_still_record_the_span(self):
        _enabled()
        with pytest.raises(ValueError):
            with span("api.query"):
                raise ValueError("boom")
        roots = finished_roots()
        assert [root.name for root in roots] == ["api.query"]
        assert tracer().stack == []


class TestBounds:
    def test_root_deque_drops_oldest_beyond_the_cap(self):
        _enabled()
        for index in range(MAX_ROOT_SPANS + 5):
            with span("root", index=index):
                pass
        assert len(finished_roots()) == MAX_ROOT_SPANS
        assert tracer().dropped_roots == 5
        assert finished_roots()[0].attrs == {"index": 5}

    def test_children_beyond_the_cap_fold_into_the_aggregate(self):
        _enabled()
        with span("parent") as parent:
            for _ in range(MAX_CHILD_SPANS + 10):
                with span("child"):
                    pass
        assert len(parent.children) == MAX_CHILD_SPANS
        assert parent.overflow["child"][0] == 10
        summary = summarize_spans([parent])
        child_node = summary[0]["children"][0]
        assert child_node["count"] == MAX_CHILD_SPANS + 10


class TestSummary:
    def test_same_name_siblings_merge(self):
        _enabled()
        with span("api.query"):
            for _ in range(4):
                with span("engine.search_cell"):
                    pass
        summary = summarize_spans()
        assert summary[0]["name"] == "api.query"
        assert summary[0]["count"] == 1
        (cells,) = summary[0]["children"]
        assert cells["name"] == "engine.search_cell"
        assert cells["count"] == 4

    def test_self_time_is_total_minus_children(self):
        _enabled()
        with span("outer"):
            with span("inner"):
                time.sleep(0.002)
        (outer,) = summarize_spans()
        (inner,) = outer["children"]
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"]
        )
        assert outer["self_s"] >= 0.0

    def test_summary_is_json_serialisable(self):
        _enabled()
        with span("a", n=3):
            with span("b"):
                pass
        json.dumps(summarize_spans())

    def test_top_spans_ranks_by_self_time(self):
        _enabled()
        with span("wrapper"):
            with span("hot"):
                time.sleep(0.005)
        top = top_spans(summarize_spans(), 2)
        assert top[0]["name"] == "hot"
        assert "children" not in top[0]

    def test_top_spans_respects_k(self):
        _enabled()
        for name in ("a", "b", "c", "d"):
            with span(name):
                pass
        assert len(top_spans(summarize_spans(), 2)) == 2
        assert top_spans(summarize_spans(), 0) == []


class TestChromeTrace:
    def test_events_cover_the_whole_tree(self):
        _enabled()
        with span("api.query", mode="sweep"):
            with span("engine.search_cell"):
                pass
        events = chrome_trace_events()
        assert [event["name"] for event in events] == [
            "api.query",
            "engine.search_cell",
        ]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["tid"] == 1
        assert events[0]["cat"] == "api"
        assert events[0]["args"] == {"mode": "sweep"}
        # Child contained in the parent interval (how tracing UIs nest).
        assert events[1]["ts"] >= events[0]["ts"]
        parent_end = events[0]["ts"] + events[0]["dur"]
        assert events[1]["ts"] + events[1]["dur"] <= parent_end + 1e-3

    def test_write_chrome_trace_emits_a_loadable_document(self, tmp_path):
        _enabled()
        with span("api.query"):
            with span("dist.sampling"):
                pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path))
        assert count == 2
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 2

    def test_reset_restarts_the_timeline(self):
        _enabled()
        with span("a"):
            pass
        spans.reset_spans()
        assert finished_roots() == []
        assert chrome_trace_events() == []
