"""Metrics registry: instruments, snapshots, and the REPRO_OBS gate."""

from repro.obs import metrics, spans
from repro.obs.metrics import (
    MetricsRegistry,
    add,
    metrics_snapshot,
    observe,
    registry,
    reset_metrics,
    set_gauge,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("kernel.rows").inc(5)
        reg.counter("kernel.rows").inc()
        assert reg.snapshot()["counters"]["kernel.rows"] == 6

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("api.session.cache_hits").set(3)
        reg.gauge("api.session.cache_hits").set(8)
        assert reg.snapshot()["gauges"]["api.session.cache_hits"] == 8

    def test_timer_accumulates_count_and_total(self):
        reg = MetricsRegistry()
        reg.timer("engine.run").observe(0.25)
        reg.timer("engine.run").observe(0.75)
        assert reg.snapshot()["timers"]["engine.run"] == {
            "count": 2,
            "total_s": 1.0,
        }

    def test_instruments_are_created_once_per_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.timer("c") is reg.timer("c")

    def test_snapshot_is_sorted_by_name(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.counter(name).inc()
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        reg.timer("c").observe(1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestModuleHelpers:
    def test_helpers_record_while_enabled(self):
        spans.enable()
        reset_metrics()
        add("search.nodes", 10)
        add("search.nodes")
        set_gauge("api.session.cache_hits", 4)
        observe("engine.run", 0.5)
        snapshot = metrics_snapshot()
        assert snapshot["counters"]["search.nodes"] == 11
        assert snapshot["gauges"]["api.session.cache_hits"] == 4
        assert snapshot["timers"]["engine.run"]["count"] == 1

    def test_helpers_are_noops_while_disabled(self):
        spans.disable()
        reset_metrics()
        add("search.nodes", 10)
        set_gauge("api.session.cache_hits", 4)
        observe("engine.run", 0.5)
        assert metrics_snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }

    def test_direct_registry_access_is_never_gated(self):
        spans.disable()
        reset_metrics()
        registry().counter("tooling.count").inc(3)
        assert metrics_snapshot()["counters"]["tooling.count"] == 3

    def test_registry_is_the_process_singleton(self):
        assert registry() is metrics._registry
