"""Subprocess checks of the REPRO_OBS gate: truly free off, effective on."""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


def _run(code: str, **env_overrides) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop("REPRO_OBS", None)
    env["PYTHONPATH"] = SRC
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
    )


def test_off_never_allocates_span_objects():
    # Poison the Span constructor: if any instrumented path tried to build
    # a real span while REPRO_OBS=off, the query below would explode.
    code = """
from repro.obs import spans
def _boom(cls, *args, **kwargs):
    raise AssertionError("Span allocated while REPRO_OBS=off")
spans.Span.__new__ = classmethod(_boom)

import repro
result = repro.query(
    mode="distribution", topologies="cycle", sizes=8,
    algorithms="largest-id", methods="sample", samples=32, seed=3,
)
assert result.profile is None
assert spans.span("anything") is spans.NOOP_SPAN
print("CLEAN")
"""
    proc = _run(code, REPRO_OBS="off")
    assert proc.returncode == 0, proc.stderr
    assert "CLEAN" in proc.stdout


def test_on_attaches_a_profile_block():
    code = """
import repro
result = repro.query(
    mode="distribution", topologies="cycle", sizes=8,
    algorithms="largest-id", methods="sample", samples=32, seed=3,
)
profile = result.profile
assert profile is not None
assert profile["spans"][0]["name"] == "api.query"
names = {child["name"] for child in profile["spans"][0]["children"]}
assert "engine.dist_cell" in names
assert profile["metrics"]["counters"]["kernel.rows"] >= 32
assert profile["total_s"] > 0.0
print("PROFILED")
"""
    proc = _run(code, REPRO_OBS="on")
    assert proc.returncode == 0, proc.stderr
    assert "PROFILED" in proc.stdout


def test_unset_defaults_to_off():
    code = """
from repro.obs import spans
assert spans.obs_enabled() is False
assert spans.span("x") is spans.NOOP_SPAN
print("OFF")
"""
    proc = _run(code)
    assert proc.returncode == 0, proc.stderr
    assert "OFF" in proc.stdout


def test_unknown_value_raises_configuration_error():
    code = """
from repro.errors import ConfigurationError
from repro.obs import spans
try:
    spans.obs_enabled()
except ConfigurationError as exc:
    assert "REPRO_OBS" in str(exc)
    print("REJECTED")
"""
    proc = _run(code, REPRO_OBS="sometimes")
    assert proc.returncode == 0, proc.stderr
    assert "REJECTED" in proc.stdout
