"""Shared isolation for the obs tests: save/restore the process switch."""

import pytest

from repro.obs import metrics, spans


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Restore the obs switch and clear spans/metrics around every test.

    The switch is process-global (frozen from ``REPRO_OBS`` on first use),
    so tests that enable/disable explicitly must not leak their choice into
    the rest of the suite — tier-1 runs both with and without
    ``REPRO_OBS=on`` in CI.
    """
    state = spans._state
    yield
    spans._state = state
    spans.reset_spans()
    metrics.reset_metrics()
