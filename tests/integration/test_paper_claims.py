"""Integration tests tying the simulator, adversaries and theory together.

Each test here corresponds to a sentence of the paper and checks it across
module boundaries (simulator + adversary + recurrence + certifier), which is
what distinguishes these from the per-module unit tests.
"""

import pytest

from repro.algorithms.cole_vishkin import ColeVishkinRing, cv_rounds_needed
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.adversary import ExhaustiveAdversary, LocalSearchAdversary
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.theory.bounds import (
    largest_id_average_upper_bound,
    largest_id_sum_upper_bound,
    largest_id_worst_case_bound,
)
from repro.theory.linial import linial_lower_bound_radius
from repro.theory.recurrence import worst_case_cycle_arrangement
from repro.topology.cycle import cycle_graph


class TestSection2LargestId:
    """'The largest ID problem on a cycle has linear worst case complexity,
    and there exists an algorithm with logarithmic average radius.'"""

    @pytest.mark.parametrize("n", [5, 6, 7])
    def test_exhaustive_worst_case_sum_equals_the_recurrence_bound(self, n):
        graph = cycle_graph(n)
        result = ExhaustiveAdversary().maximise(graph, LargestIdAlgorithm(), objective="sum")
        assert result.value == largest_id_sum_upper_bound(n)

    @pytest.mark.parametrize("n", [5, 6, 7, 8])
    def test_exhaustive_worst_case_max_is_linear(self, n):
        graph = cycle_graph(n)
        result = ExhaustiveAdversary().maximise(graph, LargestIdAlgorithm(), objective="max")
        assert result.value == largest_id_worst_case_bound(n)

    @pytest.mark.parametrize("n", [32, 128, 512])
    def test_constructed_worst_arrangement_achieves_the_average_bound(self, n):
        graph = cycle_graph(n)
        ids = IdentifierAssignment(worst_case_cycle_arrangement(n))
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert certify("largest-id", graph, ids, trace)
        assert trace.average_radius == pytest.approx(largest_id_average_upper_bound(n))
        assert trace.max_radius == largest_id_worst_case_bound(n)

    def test_local_search_never_exceeds_the_analytic_worst_case(self):
        n = 24
        graph = cycle_graph(n)
        found = LocalSearchAdversary(restarts=2, swaps_per_step=16, max_steps=16, seed=7).maximise(
            graph, LargestIdAlgorithm(), objective="average"
        )
        assert found.value <= largest_id_average_upper_bound(n) + 1e-9

    def test_the_gap_between_the_measures_is_exponential_in_scale(self):
        n = 1024
        graph = cycle_graph(n)
        ids = IdentifierAssignment(worst_case_cycle_arrangement(n))
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert trace.max_radius == n // 2
        assert trace.average_radius < 8  # versus 512 for the classic measure


class TestSection3Coloring:
    """'The vertices need an average radius of Omega(log* n) to compute a
    valid 3-colouring ... this lower bound matches the upper bound.'"""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_cole_vishkin_average_sits_between_the_bounds(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        algorithm = BallSimulationOfRounds(ColeVishkinRing(n))
        trace = run_ball_algorithm(graph, ids, algorithm)
        assert certify("3-coloring", graph, ids, trace)
        assert linial_lower_bound_radius(n) <= trace.average_radius <= cv_rounds_needed(n)

    def test_no_identifier_assignment_helps_cole_vishkin_beat_the_threshold(self):
        n = 7
        graph = cycle_graph(n)
        algorithm = BallSimulationOfRounds(ColeVishkinRing(n))
        result = ExhaustiveAdversary(max_nodes=7).maximise(graph, algorithm, objective="average")
        # Even the *least* favourable assignment (the adversary maximises, so
        # every assignment is at most this) cannot be below the threshold
        # because all assignments give the same flat radius profile.
        assert result.value >= linial_lower_bound_radius(n)

    def test_averaging_helps_largest_id_but_not_coloring(self):
        n = 128
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=0)
        largest = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        coloring = run_ball_algorithm(graph, ids, BallSimulationOfRounds(ColeVishkinRing(n)))
        largest_gap = largest.max_radius / largest.average_radius
        coloring_gap = coloring.max_radius / coloring.average_radius
        assert largest_gap > 10
        assert coloring_gap == pytest.approx(1.0)
