"""Failure injection: deliberately buggy algorithms must be caught end-to-end.

The experiments only trust a radius measurement after the certifier has
accepted the outputs, so the certification layer is the safety net of the
whole reproduction.  These tests wire intentionally broken algorithms through
the same runner + certifier pipeline the experiments use and check that each
class of bug is rejected with a precise error, and that the runner's own
guards (non-termination, invalid ports) trip where certification cannot see
the problem.
"""

import pytest

from repro.core.algorithm import FunctionBallAlgorithm
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.errors import AlgorithmError, CertificationError
from repro.model.identifiers import random_assignment
from repro.model.rounds import RoundAlgorithm, run_round_algorithm
from repro.topology.cycle import cycle_graph


@pytest.fixture
def ring():
    return cycle_graph(10)


@pytest.fixture
def ids():
    return random_assignment(10, seed=42)


class TestBuggyBallAlgorithms:
    def test_everyone_claims_to_be_the_leader(self, ring, ids):
        braggart = FunctionBallAlgorithm(lambda ball: True, problem="largest-id")
        trace = run_ball_algorithm(ring, ids, braggart)
        with pytest.raises(CertificationError):
            certify("largest-id", ring, ids, trace)

    def test_nobody_claims_to_be_the_leader(self, ring, ids):
        modest = FunctionBallAlgorithm(lambda ball: False, problem="largest-id")
        trace = run_ball_algorithm(ring, ids, modest)
        with pytest.raises(CertificationError):
            certify("largest-id", ring, ids, trace)

    def test_constant_coloring_is_rejected(self, ring, ids):
        monochrome = FunctionBallAlgorithm(lambda ball: 0, problem="3-coloring")
        trace = run_ball_algorithm(ring, ids, monochrome)
        with pytest.raises(CertificationError, match="monochromatic"):
            certify("3-coloring", ring, ids, trace)

    def test_identifier_coloring_uses_too_many_colors(self, ring, ids):
        # Colouring by identifier is proper but uses n colours, not 3.
        by_id = FunctionBallAlgorithm(lambda ball: ball.center_id, problem="3-coloring")
        trace = run_ball_algorithm(ring, ids, by_id)
        with pytest.raises(CertificationError, match="palette"):
            certify("3-coloring", ring, ids, trace)

    def test_empty_set_is_not_a_maximal_independent_set(self, ring, ids):
        lazy = FunctionBallAlgorithm(lambda ball: False, problem="mis")
        trace = run_ball_algorithm(ring, ids, lazy)
        with pytest.raises(CertificationError, match="maximal"):
            certify("mis", ring, ids, trace)

    def test_full_set_is_not_independent(self, ring, ids):
        greedy = FunctionBallAlgorithm(lambda ball: True, problem="mis")
        trace = run_ball_algorithm(ring, ids, greedy)
        with pytest.raises(CertificationError, match="adjacent"):
            certify("mis", ring, ids, trace)

    def test_algorithm_that_never_answers_is_stopped_by_the_runner(self, ring, ids):
        silent = FunctionBallAlgorithm(lambda ball: None)
        with pytest.raises(AlgorithmError, match="refused to output"):
            run_ball_algorithm(ring, ids, silent)


class _DeafNode(RoundAlgorithm):
    """Commits based on its own identifier parity without listening at all."""

    name = "deaf-node"

    def initialize(self, identifier, degree):
        return identifier

    def decide_initially(self, memory):
        return memory % 3

    def send(self, memory, round_number):
        return {}

    def receive(self, memory, inbox, round_number):
        return memory, memory % 3


class TestBuggyRoundAlgorithms:
    def test_zero_round_parity_coloring_is_caught(self, ring, ids):
        trace = run_round_algorithm(ring, ids, _DeafNode())
        assert trace.max_radius == 0  # impressively fast...
        with pytest.raises(CertificationError):  # ...and wrong
            certify("3-coloring", ring, ids, trace)
