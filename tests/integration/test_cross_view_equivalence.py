"""Integration tests for the equivalence of the ball and round views."""

import pytest

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds, FullGatherRoundAlgorithm
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.algorithms.mis import GreedyMISByID
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import random_assignment
from repro.model.rounds import run_round_algorithm
from repro.topology.cycle import cycle_graph
from repro.topology.random_graphs import random_tree


@pytest.mark.parametrize("algorithm_factory", [LargestIdAlgorithm, GreedyColoringByID, GreedyMISByID])
@pytest.mark.parametrize("n", [8, 20])
def test_ball_algorithms_survive_round_compilation(algorithm_factory, n):
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=n)
    algorithm = algorithm_factory()
    ball_trace = run_ball_algorithm(graph, ids, algorithm)
    round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(algorithm))
    assert ball_trace.outputs_by_position() == round_trace.outputs_by_position()
    assert certify(algorithm.problem, graph, ids, round_trace)
    for position in graph.positions():
        assert 0 <= round_trace.radii()[position] - ball_trace.radii()[position] <= 1


def test_round_compilation_on_a_tree_topology():
    graph = random_tree(18, seed=4)
    ids = random_assignment(graph.n, seed=5)
    algorithm = LargestIdAlgorithm()
    ball_trace = run_ball_algorithm(graph, ids, algorithm)
    round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(algorithm))
    assert ball_trace.outputs_by_position() == round_trace.outputs_by_position()


@pytest.mark.parametrize("n", [8, 33, 64])
def test_round_algorithms_survive_ball_compilation(n):
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=n + 1)
    round_trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
    ball_trace = run_ball_algorithm(graph, ids, BallSimulationOfRounds(ColeVishkinRing(n)))
    assert round_trace.outputs_by_position() == ball_trace.outputs_by_position()
    assert round_trace.radii() == ball_trace.radii()


def test_double_compilation_is_still_correct():
    n = 16
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=3)
    twice_compiled = FullGatherRoundAlgorithm(BallSimulationOfRounds(ColeVishkinRing(n)))
    trace = run_round_algorithm(graph, ids, twice_compiled)
    assert certify("3-coloring", graph, ids, trace)
