"""Tests for the deterministic topology builders."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.complete import complete_graph, star_graph
from repro.topology.cycle import PREDECESSOR_PORT, SUCCESSOR_PORT, cycle_graph, cycle_successor_ports
from repro.topology.grid import grid_graph, torus_graph
from repro.topology.path import path_graph
from repro.topology.tree import balanced_tree, caterpillar_tree, spider_tree


class TestCycle:
    @pytest.mark.parametrize("n", [3, 4, 10, 101])
    def test_structure(self, n):
        graph = cycle_graph(n)
        assert graph.n == n and graph.m == n
        assert graph.is_cycle()
        assert graph.diameter() == n // 2

    def test_orientation_is_consistent(self):
        graph = cycle_graph(7)
        for position in graph.positions():
            successor = graph.neighbors(position)[SUCCESSOR_PORT]
            assert successor == (position + 1) % 7
            assert graph.neighbors(position)[PREDECESSOR_PORT] == (position - 1) % 7

    def test_successor_ports_helper(self):
        assert cycle_successor_ports(5) == {p: SUCCESSOR_PORT for p in range(5)}

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_too_small_rejected(self, n):
        with pytest.raises(ConfigurationError):
            cycle_graph(n)


class TestPath:
    @pytest.mark.parametrize("n", [1, 2, 5, 40])
    def test_structure(self, n):
        graph = path_graph(n)
        assert graph.n == n and graph.m == n - 1
        assert graph.is_path()
        if n > 1:
            assert graph.diameter() == n - 1

    def test_endpoints_have_degree_one(self):
        graph = path_graph(6)
        assert graph.degree(0) == 1 and graph.degree(5) == 1
        assert all(graph.degree(v) == 2 for v in range(1, 5))


class TestCompleteAndStar:
    def test_complete_graph_edge_count(self):
        graph = complete_graph(6)
        assert graph.m == 15
        assert graph.diameter() == 1

    def test_complete_graph_single_node(self):
        assert complete_graph(1).m == 0

    def test_star_structure(self):
        graph = star_graph(7)
        assert graph.n == 8 and graph.m == 7
        assert graph.degree(0) == 7
        assert all(graph.degree(v) == 1 for v in range(1, 8))


class TestGridAndTorus:
    def test_grid_dimensions_and_degrees(self):
        graph = grid_graph(3, 4)
        assert graph.n == 12
        assert graph.m == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert graph.degree(0) == 2  # corner
        assert graph.max_degree() == 4

    def test_grid_diameter_is_manhattan(self):
        assert grid_graph(3, 5).diameter() == 2 + 4

    def test_torus_is_four_regular(self):
        graph = torus_graph(4, 5)
        assert graph.n == 20
        assert all(graph.degree(v) == 4 for v in graph.positions())

    def test_torus_rejects_small_dimensions(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)


class TestTrees:
    def test_balanced_tree_node_count(self):
        graph = balanced_tree(2, 3)
        assert graph.n == 1 + 2 + 4 + 8
        assert graph.m == graph.n - 1
        assert graph.is_connected()

    def test_balanced_tree_height_zero_is_single_node(self):
        assert balanced_tree(3, 0).n == 1

    def test_caterpillar_structure(self):
        graph = caterpillar_tree(spine=4, legs_per_node=2)
        assert graph.n == 4 + 8
        assert graph.m == graph.n - 1
        assert graph.degree(0) == 3  # spine end: one spine edge + two legs

    def test_spider_structure(self):
        graph = spider_tree(legs=3, leg_length=4)
        assert graph.n == 1 + 12
        assert graph.degree(0) == 3
        assert graph.diameter() == 8

    def test_spider_needs_two_legs(self):
        with pytest.raises(ConfigurationError):
            spider_tree(legs=1, leg_length=2)
