"""Tests for the random topology builders."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.random_graphs import gnp_random_graph, random_regular_graph, random_tree


class TestGnp:
    def test_connected_component_is_returned(self):
        graph = gnp_random_graph(40, 0.2, seed=1)
        assert graph.is_connected()
        assert 1 <= graph.n <= 40

    def test_deterministic_for_fixed_seed(self):
        assert gnp_random_graph(30, 0.15, seed=5) == gnp_random_graph(30, 0.15, seed=5)

    def test_different_seeds_differ(self):
        assert gnp_random_graph(30, 0.15, seed=5) != gnp_random_graph(30, 0.15, seed=6)

    def test_dense_graph_keeps_every_node(self):
        assert gnp_random_graph(25, 0.9, seed=2).n == 25

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            gnp_random_graph(10, 1.5, seed=0)


class TestRandomRegular:
    def test_degrees_are_uniform(self):
        graph = random_regular_graph(3, 16, seed=3)
        assert all(graph.degree(v) == 3 for v in graph.positions())

    def test_impossible_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regular_graph(3, 5, seed=0)  # odd degree sum

    def test_degree_must_be_below_n(self):
        with pytest.raises(ConfigurationError):
            random_regular_graph(6, 6, seed=0)


class TestRandomTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 64])
    def test_tree_has_n_minus_one_edges_and_is_connected(self, n):
        graph = random_tree(n, seed=11)
        assert graph.n == n
        assert graph.m == n - 1
        assert graph.is_connected()

    def test_deterministic_for_fixed_seed(self):
        assert random_tree(20, seed=4) == random_tree(20, seed=4)
