"""Streamed CSR construction: chunk independence, determinism, parity."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.cycle import cycle_graph
from repro.topology.stream import (
    DEFAULT_STREAM_CHUNK,
    STREAM_DETERMINISTIC,
    STREAM_TOPOLOGIES,
    CSRTopology,
    build_csr,
    stream_adjacency,
)


def _flatten(chunks):
    """Reassemble a streamed adjacency into global (indptr, indices)."""
    indptr = [0]
    indices = []
    for chunk in chunks:
        base = len(indices)
        for offset in range(chunk.stop - chunk.start):
            indptr.append(base + chunk.indptr[offset + 1])
        indices.extend(chunk.indices)
    return indptr, indices


class TestStreamAdjacency:
    @pytest.mark.parametrize("topology", STREAM_TOPOLOGIES)
    @pytest.mark.parametrize("chunk", [3, 7, 64, DEFAULT_STREAM_CHUNK])
    def test_chunk_size_never_changes_the_adjacency(self, topology, chunk):
        reference = _flatten(stream_adjacency(topology, 41, seed=9))
        chunked = _flatten(stream_adjacency(topology, 41, seed=9, chunk_nodes=chunk))
        assert chunked == reference

    @pytest.mark.parametrize("topology", STREAM_TOPOLOGIES)
    def test_same_seed_same_graph(self, topology):
        assert _flatten(stream_adjacency(topology, 33, seed=4)) == _flatten(
            stream_adjacency(topology, 33, seed=4)
        )

    @pytest.mark.parametrize("topology", sorted(set(STREAM_TOPOLOGIES) - STREAM_DETERMINISTIC))
    def test_different_seed_different_graph(self, topology):
        # Random families must actually vary with the seed.
        streams = {
            tuple(_flatten(stream_adjacency(topology, 64, seed=seed))[1])
            for seed in range(5)
        }
        assert len(streams) > 1

    def test_unknown_topology_is_rejected(self):
        with pytest.raises(ConfigurationError):
            list(stream_adjacency("complete", 8))

    def test_chunks_tile_the_node_range(self):
        chunks = list(stream_adjacency("cycle", 100, chunk_nodes=32))
        assert [(c.start, c.stop) for c in chunks] == [
            (0, 32),
            (32, 64),
            (64, 96),
            (96, 100),
        ]


class TestBuildCSR:
    def test_cycle_matches_the_object_graph(self):
        csr = build_csr("cycle", 12)
        graph = cycle_graph(12)
        for v in range(12):
            assert sorted(csr.neighbors(v)) == sorted(graph.neighbors(v))

    def test_deterministic_topologies_normalise_the_seed(self):
        # A cycle is the same graph whatever the seed: the CSR (and its
        # cache key, the spec) must not vary with it.
        assert build_csr("cycle", 10, seed=0).spec == build_csr("cycle", 10, seed=7).spec

    @pytest.mark.parametrize("topology", STREAM_TOPOLOGIES)
    def test_to_graph_round_trip(self, topology):
        csr = build_csr(topology, 23, seed=3)
        graph = csr.to_graph()
        assert graph.n == 23
        for v in range(23):
            assert sorted(graph.neighbors(v)) == sorted(csr.neighbors(v))

    @pytest.mark.parametrize("topology", STREAM_TOPOLOGIES)
    def test_streamed_families_are_connected(self, topology):
        csr = build_csr(topology, 57, seed=11)
        seen = {0}
        frontier = [0]
        while frontier:
            next_frontier = []
            for v in frontier:
                for u in csr.neighbors(v):
                    if u not in seen:
                        seen.add(u)
                        next_frontier.append(u)
            frontier = next_frontier
        assert len(seen) == csr.n

    @pytest.mark.parametrize("topology", STREAM_TOPOLOGIES)
    def test_adjacency_is_symmetric_and_deduplicated(self, topology):
        csr = build_csr(topology, 40, seed=2)
        for v in range(csr.n):
            neighbors = list(csr.neighbors(v))
            assert len(neighbors) == len(set(neighbors))
            assert v not in neighbors
            for u in neighbors:
                assert v in set(csr.neighbors(u))

    def test_describe_reports_the_shape(self):
        csr = build_csr("cycle", 16)
        description = csr.describe()
        assert description["topology"] == "cycle"
        assert description["n"] == 16
        assert description["m"] == 16

    def test_degree_matches_indptr(self):
        csr = build_csr("random-tree", 31, seed=6)
        assert sum(csr.degree(v) for v in range(csr.n)) == 2 * csr.m
        assert isinstance(csr, CSRTopology)
