"""Tests for log*, the Linial threshold and the neighbourhood-graph machinery."""

import pytest

from repro.errors import ConfigurationError
from repro.theory.linial import (
    greedy_chromatic_upper_bound,
    is_k_colorable,
    linial_lower_bound_radius,
    neighborhood_graph,
    neighborhood_graph_chromatic_number,
)
from repro.theory.log_star import log_star, log_star_table, power_tower


class TestLogStarTable:
    def test_table_covers_powers_of_two(self):
        table = log_star_table(10)
        assert table[0] == (1, 0)
        assert table[4] == (16, 3)
        assert len(table) == 11

    def test_values_are_monotone(self):
        values = [value for _, value in log_star_table(20)]
        assert values == sorted(values)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            log_star_table(-1)


class TestLinialThreshold:
    def test_threshold_is_at_least_one(self):
        assert linial_lower_bound_radius(4) >= 1

    @pytest.mark.parametrize("n", [16, 64, 1024, 2**20])
    def test_threshold_is_half_log_star_of_half_n(self, n):
        import math

        assert linial_lower_bound_radius(n) == max(1, math.ceil(0.5 * log_star(n // 2)))

    def test_threshold_is_essentially_flat(self):
        assert linial_lower_bound_radius(2**20) - linial_lower_bound_radius(16) <= 2

    def test_threshold_never_decreases(self):
        values = [linial_lower_bound_radius(n) for n in range(4, 4096, 17)]
        assert values == sorted(values)


class TestNeighborhoodGraph:
    def test_vertex_count_is_falling_factorial(self):
        graph = neighborhood_graph(5, 1)
        assert graph.number_of_nodes() == 5 * 4 * 3

    def test_views_are_adjacent_when_they_overlap_by_a_shift(self):
        graph = neighborhood_graph(4, 1)
        assert graph.has_edge((0, 1, 2), (1, 2, 3))
        assert not graph.has_edge((0, 1, 2), (3, 2, 1))

    def test_radius_too_large_for_identifier_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            neighborhood_graph(3, 2)

    def test_oversized_construction_refused(self):
        with pytest.raises(ConfigurationError, match="refusing"):
            neighborhood_graph(12, 3)

    def test_one_round_views_of_tiny_rings_admit_few_colours(self):
        # Linial's argument relates t-round c-colouring algorithms to
        # c-colourability of B_{t,n}.  For very small identifier pools the
        # neighbourhood graph is still easy: a one-round algorithm can
        # 3-colour rings whose identifiers come from a pool of 5.
        assert is_k_colorable(neighborhood_graph(4, 1), 3)
        assert is_k_colorable(neighborhood_graph(5, 1), 3)

    def test_chromatic_number_of_tiny_neighbourhood_graph(self):
        graph = neighborhood_graph(4, 1)
        chromatic = neighborhood_graph_chromatic_number(graph)
        assert graph.number_of_edges() > 0
        assert 2 <= chromatic <= greedy_chromatic_upper_bound(graph)


class TestColorability:
    def test_even_cycle_is_two_colorable_odd_is_not(self):
        import networkx as nx

        assert is_k_colorable(nx.cycle_graph(6), 2)
        assert not is_k_colorable(nx.cycle_graph(7), 2)
        assert is_k_colorable(nx.cycle_graph(7), 3)

    def test_complete_graph_needs_all_colours(self):
        import networkx as nx

        assert not is_k_colorable(nx.complete_graph(5), 4)
        assert is_k_colorable(nx.complete_graph(5), 5)
        assert neighborhood_graph_chromatic_number(nx.complete_graph(5)) == 5

    def test_empty_and_edgeless_graphs(self):
        import networkx as nx

        assert neighborhood_graph_chromatic_number(nx.Graph()) == 0
        assert neighborhood_graph_chromatic_number(nx.empty_graph(4)) == 1

    def test_node_limit_guard(self):
        import networkx as nx

        with pytest.raises(ConfigurationError):
            is_k_colorable(nx.path_graph(50), 2, node_limit=10)

    def test_power_tower_and_log_star_are_inverse_on_small_heights(self):
        for height in range(5):
            assert log_star(power_tower(height)) == height
