"""Tests for the closed-form bound predictions."""

import math

import pytest

from repro.theory.bounds import (
    coloring_average_lower_bound,
    coloring_classic_upper_bound,
    exponential_gap,
    largest_id_average_upper_bound,
    largest_id_random_ids_expected_average,
    largest_id_sum_upper_bound,
    largest_id_worst_case_bound,
)
from repro.theory.recurrence import worst_case_segment_sum


class TestLargestIdBounds:
    @pytest.mark.parametrize("n", [4, 9, 100])
    def test_worst_case_is_half_of_n(self, n):
        assert largest_id_worst_case_bound(n) == n // 2

    def test_sum_bound_combines_eccentricity_and_recurrence(self):
        assert largest_id_sum_upper_bound(10) == 5 + worst_case_segment_sum(9)

    def test_average_bound_is_sum_bound_over_n(self):
        assert largest_id_average_upper_bound(12) == pytest.approx(largest_id_sum_upper_bound(12) / 12)

    def test_average_bound_grows_like_half_log2(self):
        delta = largest_id_average_upper_bound(2**14) - largest_id_average_upper_bound(2**10)
        assert delta == pytest.approx(2.0, abs=0.1)

    def test_random_ids_expectation_is_the_harmonic_number(self):
        assert largest_id_random_ids_expected_average(4) == pytest.approx(25 / 12)


class TestColoringBounds:
    def test_lower_bound_is_the_linial_threshold(self):
        from repro.theory.linial import linial_lower_bound_radius

        for n in (8, 64, 4096):
            assert coloring_average_lower_bound(n) == float(linial_lower_bound_radius(n))

    def test_upper_bound_tracks_cole_vishkin(self):
        from repro.algorithms.cole_vishkin import cv_rounds_needed

        assert coloring_classic_upper_bound(256) == float(cv_rounds_needed(256))

    def test_upper_bound_exceeds_lower_bound(self):
        for n in (8, 64, 1024, 2**16):
            assert coloring_classic_upper_bound(n) >= coloring_average_lower_bound(n)


class TestExponentialGap:
    def test_gap_grows_roughly_like_n_over_log_n(self):
        gap_small = exponential_gap(2**8)
        gap_large = exponential_gap(2**12)
        assert gap_large > 10 * gap_small / 2
        assert gap_large == pytest.approx((2**12 / 2) / largest_id_average_upper_bound(2**12))

    def test_gap_is_monotone_over_powers_of_two(self):
        gaps = [exponential_gap(2**k) for k in range(4, 14)]
        assert gaps == sorted(gaps)
