"""Tests for the slice-concatenation construction of Theorem 1."""

import pytest

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError
from repro.theory.linial import linial_lower_bound_radius
from repro.theory.lower_bound import build_hard_assignment, evaluate_hard_assignment
from repro.topology.cycle import cycle_graph


@pytest.fixture(scope="module")
def construction_32():
    algorithm = BallSimulationOfRounds(ColeVishkinRing(32))
    return build_hard_assignment(32, algorithm, seed=5), algorithm


class TestConstruction:
    def test_result_is_a_permutation_of_all_identifiers(self, construction_32):
        construction, _ = construction_32
        assert sorted(construction.assignment.identifiers()) == list(range(32))

    def test_threshold_defaults_to_the_linial_value(self, construction_32):
        construction, _ = construction_32
        assert construction.threshold == linial_lower_bound_radius(32)

    def test_slices_have_the_prescribed_length_and_are_disjoint(self, construction_32):
        construction, _ = construction_32
        length = 2 * construction.threshold + 1
        seen = set()
        for slice_ids in construction.slices:
            assert len(slice_ids) == length
            assert not (set(slice_ids) & seen)
            seen |= set(slice_ids)

    def test_slices_cover_at_least_half_of_the_identifiers(self, construction_32):
        construction, _ = construction_32
        covered = sum(len(s) for s in construction.slices)
        assert covered >= 32 // 2 - (2 * construction.threshold + 1)

    def test_every_slice_centre_reached_the_threshold(self, construction_32):
        construction, _ = construction_32
        assert all(r >= construction.threshold for r in construction.achieved_center_radii)

    def test_explicit_threshold_is_respected(self):
        algorithm = BallSimulationOfRounds(ColeVishkinRing(16))
        construction = build_hard_assignment(16, algorithm, threshold=1, seed=2)
        assert construction.threshold == 1
        assert all(len(s) == 3 for s in construction.slices)

    def test_too_small_cycles_are_rejected(self):
        algorithm = BallSimulationOfRounds(ColeVishkinRing(4))
        with pytest.raises(ConfigurationError):
            build_hard_assignment(4, algorithm)


class TestEvaluation:
    def test_average_on_the_construction_meets_the_threshold(self, construction_32):
        construction, algorithm = construction_32
        average = evaluate_hard_assignment(construction, algorithm)
        assert average >= construction.threshold

    def test_constructed_assignment_still_yields_a_valid_colouring(self, construction_32):
        construction, algorithm = construction_32
        graph = cycle_graph(32)
        trace = run_ball_algorithm(graph, construction.assignment, algorithm)
        assert certify("3-coloring", graph, construction.assignment, trace)
