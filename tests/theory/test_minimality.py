"""Tests for the Lemma 2 / Lemma 3 regularity checkers."""

import pytest

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.runner import run_ball_algorithm
from repro.errors import TopologyError
from repro.model.identifiers import random_assignment
from repro.model.trace import ExecutionTrace, NodeRecord
from repro.theory.minimality import (
    lemma2_violations,
    lemma3_local_average,
    lemma3_reports,
    minimum_lemma3_ratio,
    positions_between,
    radii_between,
)
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


def synthetic_trace(radii):
    return ExecutionTrace(
        {p: NodeRecord(position=p, identifier=p, radius=r, output=None) for p, r in enumerate(radii)}
    )


class TestPositionsBetween:
    def test_shorter_arc_is_selected(self):
        graph = cycle_graph(8)
        assert positions_between(graph, 0, 3) == [1, 2]
        assert positions_between(graph, 0, 6) == [7]

    def test_adjacent_anchors_have_nothing_between(self):
        graph = cycle_graph(6)
        assert positions_between(graph, 2, 3) == []

    def test_non_cycles_are_rejected(self):
        with pytest.raises(TopologyError):
            positions_between(path_graph(5), 0, 3)

    def test_radii_between_reads_the_trace(self):
        graph = cycle_graph(6)
        trace = synthetic_trace([0, 5, 7, 1, 2, 3])
        assert sorted(radii_between(trace, graph, 0, 3)) == [5, 7]


class TestLemma2:
    def test_flat_radius_profiles_never_violate(self):
        graph = cycle_graph(10)
        trace = synthetic_trace([4] * 10)
        assert lemma2_violations(trace, graph) == []

    def test_a_spike_between_two_quiet_anchors_is_reported(self):
        graph = cycle_graph(8)
        trace = synthetic_trace([0, 0, 9, 0, 0, 0, 0, 0])
        violations = lemma2_violations(trace, graph, max_separation=1)
        assert violations
        worst = violations[0]
        assert worst.worst_radius == 9
        assert worst.threshold == 1  # max(r(x), r(y)) + k = 0 + 1

    def test_cole_vishkin_profile_is_lemma2_clean(self):
        n = 32
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=0)
        trace = run_ball_algorithm(graph, ids, BallSimulationOfRounds(ColeVishkinRing(n)))
        assert lemma2_violations(trace, graph, max_separation=6) == []

    def test_largest_id_profile_shows_violations(self):
        n = 32
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=0)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert lemma2_violations(trace, graph, max_separation=6)


class TestLemma3:
    def test_report_fields(self):
        graph = cycle_graph(9)
        trace = synthetic_trace([4, 1, 1, 1, 1, 1, 1, 1, 1])
        report = lemma3_local_average(trace, graph, 0)
        assert report.radius == 4
        assert report.window == 2
        # Ball of radius 2 around position 0 holds radii {4, 1, 1, 1, 1}.
        assert report.local_average == pytest.approx(8 / 5)
        assert report.ratio == pytest.approx((8 / 5) / 4)

    def test_zero_radius_vertex_has_ratio_one(self):
        graph = cycle_graph(5)
        trace = synthetic_trace([0, 1, 1, 1, 1])
        assert lemma3_local_average(trace, graph, 0).ratio == 1.0

    def test_reports_are_sorted_by_decreasing_radius(self):
        graph = cycle_graph(6)
        trace = synthetic_trace([1, 5, 2, 4, 3, 0])
        radii = [report.radius for report in lemma3_reports(trace, graph)]
        assert radii == sorted(radii, reverse=True)

    def test_minimum_ratio_for_flat_profile_is_one(self):
        graph = cycle_graph(7)
        trace = synthetic_trace([3] * 7)
        assert minimum_lemma3_ratio(trace, graph) == pytest.approx(1.0)

    def test_minimum_ratio_detects_isolated_spikes(self):
        graph = cycle_graph(32)
        radii = [0] * 32
        radii[10] = 16
        trace = synthetic_trace(radii)
        assert minimum_lemma3_ratio(trace, graph) < 0.2
