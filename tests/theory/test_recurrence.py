"""Tests for the segment recurrence of Section 2."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.theory.oeis import A000788
from repro.theory.recurrence import (
    average_radius_upper_bound,
    brute_force_segment_maximum,
    segment_radii,
    segment_radius_sum,
    worst_case_cycle_arrangement,
    worst_case_segment_arrangement,
    worst_case_segment_sum,
    worst_case_segment_sums,
)


class TestRecurrenceValues:
    def test_initial_values_match_the_paper(self):
        assert worst_case_segment_sum(0) == 0
        assert worst_case_segment_sum(1) == 1

    def test_first_terms(self):
        assert worst_case_segment_sums(7) == [0, 1, 2, 4, 5, 7, 9, 12]

    @pytest.mark.parametrize("p", [0, 1, 2, 3, 10, 50, 255, 1024])
    def test_recurrence_equals_A000788(self, p):
        assert worst_case_segment_sum(p) == A000788(p)

    def test_growth_is_theta_p_log_p(self):
        p = 4096
        ratio = worst_case_segment_sum(p) / (p * math.log2(p))
        assert 0.4 < ratio < 0.6

    def test_monotone_in_p(self):
        values = worst_case_segment_sums(200)
        assert values == sorted(values)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            worst_case_segment_sum(-1)


class TestSegmentRadii:
    def test_single_vertex_segment_has_radius_one(self):
        assert segment_radii([5]) == [1]

    def test_radius_is_distance_to_nearest_larger_identifier(self):
        # The local maximum 5 sits two steps away from the segment maximum 9
        # and three steps away from either endpoint, so its radius is 2.
        assert segment_radii([0, 1, 5, 2, 9, 3, 4]) == [1, 1, 2, 1, 3, 1, 1]

    def test_endpoint_proximity_caps_the_radius(self):
        # The segment maximum in the middle of 5 vertices reaches the nearer
        # endpoint (and hence the cycle's global maximum) in 3 steps.
        assert segment_radii([0, 1, 4, 2, 3]) == [1, 1, 3, 1, 1]

    def test_duplicate_identifiers_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_radii([1, 1, 2])

    def test_sum_helper_matches_manual_sum(self):
        order = [4, 1, 0, 3, 2]
        assert segment_radius_sum(order) == sum(segment_radii(order))


class TestBruteForce:
    @pytest.mark.parametrize("p", range(0, 8))
    def test_exhaustive_maximum_matches_the_recurrence(self, p):
        assert brute_force_segment_maximum(p) == worst_case_segment_sum(p)

    def test_refuses_oversized_instances(self):
        with pytest.raises(ConfigurationError, match="refused"):
            brute_force_segment_maximum(12)


class TestWorstCaseArrangements:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13, 40, 100])
    def test_segment_arrangement_achieves_the_recurrence_value(self, p):
        arrangement = worst_case_segment_arrangement(range(p))
        assert sorted(arrangement) == list(range(p))
        assert segment_radius_sum(arrangement) == worst_case_segment_sum(p)

    def test_arrangement_preserves_the_identifier_pool(self):
        pool = [3, 8, 11, 20, 21]
        arrangement = worst_case_segment_arrangement(pool)
        assert sorted(arrangement) == sorted(pool)

    def test_duplicate_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            worst_case_segment_arrangement([1, 1, 2])

    @pytest.mark.parametrize("n", [3, 4, 9, 32])
    def test_cycle_arrangement_is_a_permutation_with_max_first(self, n):
        arrangement = worst_case_cycle_arrangement(n)
        assert sorted(arrangement) == list(range(n))
        assert arrangement[0] == n - 1

    def test_cycle_arrangement_needs_at_least_three_nodes(self):
        with pytest.raises(ConfigurationError):
            worst_case_cycle_arrangement(2)


class TestAverageUpperBound:
    def test_formula(self):
        assert average_radius_upper_bound(8) == pytest.approx((4 + worst_case_segment_sum(7)) / 8)

    def test_grows_logarithmically(self):
        small = average_radius_upper_bound(64)
        large = average_radius_upper_bound(4096)
        assert large - small == pytest.approx(3.0, abs=0.2)  # +log2(64) / 2

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            average_radius_upper_bound(0)
