"""Tests for OEIS A000788 and the binary digit-sum helpers."""

import pytest

from repro.theory.oeis import A000788, A000788_closed_form, A000788_prefix, popcount


class TestPopcount:
    @pytest.mark.parametrize(("value", "expected"), [(0, 0), (1, 1), (2, 1), (3, 2), (255, 8), (256, 1)])
    def test_known_values(self, value, expected):
        assert popcount(value) == expected

    def test_negative_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            popcount(-3)


class TestA000788:
    def test_first_terms_match_the_oeis_listing(self):
        # First terms of A000788 as published by the OEIS.
        expected = [0, 1, 2, 4, 5, 7, 9, 12, 13, 15, 17, 20, 22, 25, 28, 32, 33]
        assert [A000788(n) for n in range(len(expected))] == expected

    @pytest.mark.parametrize("n", [0, 1, 5, 17, 100, 1000, 4097])
    def test_closed_form_matches_the_naive_sum(self, n):
        assert A000788_closed_form(n) == A000788(n)

    def test_prefix_matches_individual_terms(self):
        assert A000788_prefix(12) == [A000788(n) for n in range(12)]

    def test_growth_is_n_log_n_over_two(self):
        # A000788(n) ~ n*log2(n)/2.
        import math

        n = 1 << 16
        assert A000788_closed_form(n) / (n * math.log2(n) / 2) == pytest.approx(1.0, rel=0.05)

    def test_closed_form_is_fast_for_huge_inputs(self):
        # The per-bit formula works far beyond anything the naive sum could touch.
        value = A000788_closed_form(10**15)
        assert value > 0
