"""The package's public surface: ``__all__`` is sorted and fully importable."""

import repro


def test_all_is_sorted():
    assert list(repro.__all__) == sorted(repro.__all__), (
        "repro.__all__ must stay alphabetically sorted; offenders: "
        f"{[name for name, expected in zip(repro.__all__, sorted(repro.__all__)) if name != expected]}"
    )


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_every_name_is_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is missing"


def test_version_is_a_string():
    assert isinstance(repro.__version__, str) and repro.__version__


def test_api_facade_is_exported():
    for name in ("Query", "QueryBuilder", "Result", "Session", "query", "ID_FAMILIES"):
        assert name in repro.__all__
