"""Tests for the automorphism machinery behind the symmetry-pruned searches."""

import math

import pytest

from repro.model.graph import Graph
from repro.search.automorphisms import (
    AutomorphismGroup,
    adjacency_automorphisms,
    automorphism_group,
    orbit_partition,
    port_preserving_automorphisms,
    refine_colors,
)
from repro.topology.complete import complete_graph, star_graph
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import gnp_random_graph, random_tree


def assert_is_adjacency_automorphism(graph: Graph, sigma: tuple[int, ...]) -> None:
    assert sorted(sigma) == list(graph.positions())
    for v in graph.positions():
        assert {sigma[u] for u in graph.neighbors(v)} == set(graph.neighbors(sigma[v]))


def assert_is_port_automorphism(graph: Graph, sigma: tuple[int, ...]) -> None:
    assert_is_adjacency_automorphism(graph, sigma)
    for v in graph.positions():
        image_neighbors = graph.neighbors(sigma[v])
        for port, u in enumerate(graph.neighbors(v)):
            assert sigma[u] == image_neighbors[port]


class TestRefineColors:
    def test_regular_graph_collapses_to_one_class(self):
        colors = refine_colors(cycle_graph(8))
        assert len(set(colors)) == 1

    def test_path_distinguishes_by_distance_to_the_ends(self):
        colors = refine_colors(path_graph(5))
        # 0/4 (ends), 1/3 (next to ends) and 2 (middle) are the three classes.
        assert colors[0] == colors[4]
        assert colors[1] == colors[3]
        assert len(set(colors)) == 3

    def test_rejects_wrong_initial_length(self):
        with pytest.raises(ValueError):
            refine_colors(path_graph(4), initial=(0, 1))


class TestPortPreservingAutomorphisms:
    def test_cycle_rotations(self):
        # cycle_graph's port numbering is globally consistent (port 0 =
        # successor), so exactly the n rotations preserve ports.
        n = 9
        group = port_preserving_automorphisms(cycle_graph(n))
        assert len(group) == n
        expected = {tuple((v + shift) % n for v in range(n)) for shift in range(n)}
        assert set(group) == expected

    def test_every_element_is_a_port_automorphism(self):
        for graph in (cycle_graph(6), path_graph(5), grid_graph(3, 3)):
            for sigma in port_preserving_automorphisms(graph):
                assert_is_port_automorphism(graph, sigma)

    def test_identity_always_present(self):
        for graph in (cycle_graph(5), random_tree(7, seed=1)):
            assert tuple(graph.positions()) in port_preserving_automorphisms(graph)

    def test_disconnected_graph_gets_the_trivial_group(self):
        # The rigidity argument (image of one vertex determines the map)
        # needs connectivity; a disconnected graph must still yield a valid
        # group containing the identity, never an empty one.
        graph = Graph.from_edges(4, [(0, 1), (2, 3)], name="two-edges")
        assert port_preserving_automorphisms(graph) == [(0, 1, 2, 3)]
        group = automorphism_group(graph, respect_ports=True)
        assert group.order == 1
        assert group.is_trivial()


class TestAdjacencyAutomorphisms:
    def test_cycle_dihedral_group(self):
        n = 8
        elements = adjacency_automorphisms(cycle_graph(n))
        assert elements is not None and len(elements) == 2 * n

    def test_path_reversal(self):
        elements = adjacency_automorphisms(path_graph(6))
        assert elements is not None
        assert set(elements) == {tuple(range(6)), tuple(reversed(range(6)))}

    def test_square_grid_has_the_8_symmetries(self):
        elements = adjacency_automorphisms(grid_graph(3, 3))
        assert elements is not None and len(elements) == 8
        for sigma in elements:
            assert_is_adjacency_automorphism(grid_graph(3, 3), sigma)

    def test_size_cap_returns_none(self):
        # The star's leaves are fully interchangeable: 6! = 720 automorphisms.
        assert adjacency_automorphisms(star_graph(6), max_size=100) is None


class TestAutomorphismGroup:
    def test_complete_graph_is_full_symmetric(self):
        group = automorphism_group(complete_graph(7), respect_ports=False)
        assert group.full_symmetric
        assert group.order == math.factorial(7)
        assert orbit_partition(group) == [list(range(7))]

    def test_port_respecting_group_on_the_cycle(self):
        group = automorphism_group(cycle_graph(7), respect_ports=True)
        assert group.respects_ports and group.order == 7
        assert orbit_partition(group) == [list(range(7))]

    def test_cap_falls_back_to_port_preserving(self):
        group = automorphism_group(star_graph(6), respect_ports=False, max_size=100)
        assert group.respects_ports  # fallback engaged
        for sigma in group.elements:
            assert_is_port_automorphism(star_graph(6), sigma)

    def test_cached_on_the_graph(self):
        graph = cycle_graph(6)
        first = automorphism_group(graph, respect_ports=False)
        second = automorphism_group(graph, respect_ports=False)
        assert first is second

    def test_trivial_group_detection(self):
        graph = gnp_random_graph(9, 0.4, seed=11)
        group = automorphism_group(graph, respect_ports=True)
        assert isinstance(group, AutomorphismGroup)
        for sigma in group.elements:
            assert_is_port_automorphism(graph, sigma)

    def test_orbits_partition_the_positions(self):
        for graph in (path_graph(6), grid_graph(3, 4), random_tree(9, seed=4)):
            group = automorphism_group(graph, respect_ports=False)
            orbits = orbit_partition(group)
            flattened = sorted(v for orbit in orbits for v in orbit)
            assert flattened == list(graph.positions())
