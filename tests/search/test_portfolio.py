"""Tests for the strategy portfolio and its determinism guarantees."""

import pytest

from repro.core.adversary import ExhaustiveAdversary
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError
from repro.search.adversaries import PortfolioAdversary
from repro.search.portfolio import (
    PortfolioSearch,
    StrategySpec,
    default_portfolio,
)
from repro.topology.cycle import cycle_graph


class TestStrategySpec:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            StrategySpec.make("gradient-descent")

    def test_default_portfolio_covers_all_families(self):
        names = {spec.name for spec in default_portfolio()}
        assert names == {"hill-climb", "annealing", "tabu", "random-probe"}


class TestPortfolioSearch:
    def test_deterministic_across_worker_counts(self, largest_id_algorithm):
        graph = cycle_graph(10)
        serial = PortfolioAdversary(seed=7, workers=1).maximise(
            graph, largest_id_algorithm
        )
        parallel = PortfolioAdversary(seed=7, workers=3).maximise(
            graph, largest_id_algorithm
        )
        assert serial.value == parallel.value
        assert serial.assignment == parallel.assignment

    def test_finds_the_optimum_on_a_small_cycle(self, largest_id_algorithm):
        graph = cycle_graph(7)
        exact = ExhaustiveAdversary().maximise(graph, largest_id_algorithm)
        found = PortfolioAdversary(seed=0).maximise(graph, largest_id_algorithm)
        assert not found.exact
        assert found.value == pytest.approx(exact.value)

    def test_witness_reproduces_the_value(self, ring12, largest_id_algorithm):
        result = PortfolioAdversary(seed=2).maximise(ring12, largest_id_algorithm)
        trace = run_ball_algorithm(ring12, result.assignment, largest_id_algorithm)
        assert trace.average_radius == pytest.approx(result.value)

    def test_certificate_reports_every_strategy(self, ring12, largest_id_algorithm):
        result = PortfolioAdversary(seed=1).maximise(ring12, largest_id_algorithm)
        names = [row["strategy"] for row in result.certificate.rows]
        assert names == ["hill-climb", "annealing", "tabu", "random-probe"]
        assert result.evaluations == sum(
            row["evaluations"] for row in result.certificate.rows
        )
        # The best strategy's value is exactly the reported value.
        assert result.value == max(row["value"] for row in result.certificate.rows)

    def test_custom_portfolio(self, ring12, largest_id_algorithm):
        search = PortfolioSearch(
            strategies=[StrategySpec.make("hill-climb", max_steps=4, swaps_per_step=4)],
            seed=5,
        )
        best, certificate = search.run(ring12, largest_id_algorithm, "average")
        assert best.name == "hill-climb"
        assert len(certificate.rows) == 1

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ConfigurationError):
            PortfolioSearch(strategies=[])
