"""Tests for the incremental swap evaluator."""

import random

import pytest

from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.core.adversary import trace_objective
from repro.engine.frontier import FrontierRunner
from repro.errors import AnalysisError
from repro.model.identifiers import identity_assignment, random_assignment
from repro.search.incremental import SwapEvaluator
from repro.topology.cycle import cycle_graph
from repro.topology.random_graphs import random_tree


class TestSwapEvaluator:
    def test_initial_value_matches_a_full_run(self, ring12, largest_id_algorithm):
        ids = random_assignment(12, seed=5)
        evaluator = SwapEvaluator(ring12, largest_id_algorithm, "average", ids=ids)
        trace = FrontierRunner(ring12, largest_id_algorithm).run(ids)
        assert evaluator.value == pytest.approx(trace.average_radius)
        assert evaluator.sum_radius == trace.sum_radius

    def test_peek_does_not_mutate(self, ring12, largest_id_algorithm):
        evaluator = SwapEvaluator(
            ring12, largest_id_algorithm, ids=identity_assignment(12)
        )
        before_ids = evaluator.identifiers
        before_value = evaluator.value
        evaluator.peek(0, 7)
        assert evaluator.identifiers == before_ids
        assert evaluator.value == before_value

    def test_peek_matches_full_resimulation(self, ring12, largest_id_algorithm):
        evaluator = SwapEvaluator(
            ring12, largest_id_algorithm, "average", ids=random_assignment(12, seed=2)
        )
        reference = FrontierRunner(ring12, largest_id_algorithm)
        for a, b in [(0, 1), (0, 6), (3, 9), (10, 11)]:
            delta = evaluator.peek(a, b)
            swapped = evaluator.assignment().with_swap(a, b)
            expected = trace_objective(reference.run(swapped), "average")
            assert delta.value == pytest.approx(expected)

    def test_commit_then_trace_is_consistent(self, largest_id_algorithm):
        graph = random_tree(10, seed=8)
        evaluator = SwapEvaluator(
            graph, largest_id_algorithm, "sum", ids=random_assignment(10, seed=3)
        )
        rng = random.Random(0)
        for _ in range(25):
            a, b = rng.sample(range(10), 2)
            evaluator.apply_swap(a, b)
        reference = FrontierRunner(graph, largest_id_algorithm).run(
            evaluator.assignment()
        )
        assert evaluator.trace().radii() == reference.radii()
        assert evaluator.value == pytest.approx(float(reference.sum_radius))

    def test_max_objective_tracks_the_maximum(self):
        graph = cycle_graph(9)
        algorithm = GreedyColoringByID()
        evaluator = SwapEvaluator(
            graph, algorithm, "max", ids=random_assignment(9, seed=1)
        )
        reference = FrontierRunner(graph, algorithm)
        rng = random.Random(4)
        for _ in range(15):
            a, b = rng.sample(range(9), 2)
            evaluator.apply_swap(a, b)
            expected = reference.run(evaluator.assignment()).max_radius
            assert evaluator.value == float(expected)

    def test_rejects_unknown_objective(self, ring12, largest_id_algorithm):
        with pytest.raises(AnalysisError):
            SwapEvaluator(ring12, largest_id_algorithm, objective="median")

    def test_counts_evaluations(self, ring12, largest_id_algorithm):
        evaluator = SwapEvaluator(ring12, largest_id_algorithm)
        start = evaluator.evaluations
        evaluator.peek(0, 1)
        evaluator.apply_swap(2, 3)
        assert evaluator.evaluations == start + 2

    def test_batch_values_match_peek_for_every_objective(
        self, ring12, largest_id_algorithm
    ):
        import random

        for objective in ("average", "max", "sum"):
            evaluator = SwapEvaluator(ring12, largest_id_algorithm, objective=objective)
            rng = random.Random(7)
            for _ in range(3):
                pairs = [tuple(rng.sample(range(12), 2)) for _ in range(9)]
                expected = [evaluator.peek(a, b).value for a, b in pairs]
                assert evaluator.peek_values_batch(pairs) == expected
                evaluator.apply_swap(*pairs[0])

    def test_batch_values_match_peek_on_the_fallback_rule(self, ring12):
        # Non-vectorised algorithms take the per-pair path inside the batch
        # API; values and evaluation counting must be identical.
        from repro.algorithms.greedy_coloring import GreedyColoringByID

        evaluator = SwapEvaluator(ring12, GreedyColoringByID())
        pairs = [(0, 5), (1, 7), (2, 2), (3, 11), (4, 8)]
        expected = [evaluator.peek(a, b).value for a, b in pairs]
        before = evaluator.evaluations
        assert evaluator.peek_values_batch(pairs) == expected
        assert evaluator.evaluations == before + len(pairs)

    def test_batch_values_with_identifiers_beyond_int64(self, largest_id_algorithm):
        # Identifiers above the numpy int64 range are legal for the runner;
        # the batch path must quietly take the incremental gear rather than
        # overflow inside the numpy gather.
        from repro.model.identifiers import IdentifierAssignment
        from repro.topology.cycle import cycle_graph

        ids = IdentifierAssignment(tuple(2**63 + i for i in range(8)))
        evaluator = SwapEvaluator(cycle_graph(8), largest_id_algorithm, ids=ids)
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7), (1, 6)]
        expected = [evaluator.peek(a, b).value for a, b in pairs]
        assert evaluator.peek_values_batch(pairs) == expected

    def test_batch_counts_evaluations_and_does_not_move_state(
        self, ring12, largest_id_algorithm
    ):
        evaluator = SwapEvaluator(ring12, largest_id_algorithm)
        identifiers = evaluator.identifiers
        value = evaluator.value
        before = evaluator.evaluations
        assert evaluator.peek_values_batch([]) == []
        evaluator.peek_values_batch([(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)])
        assert evaluator.evaluations == before + 5
        assert evaluator.identifiers == identifiers
        assert evaluator.value == value
