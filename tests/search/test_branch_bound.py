"""Tests for the exact symmetry-pruned searches and their certificates."""

import math

import pytest

from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.adversary import ExhaustiveAdversary
from repro.core.algorithm import FunctionBallAlgorithm
from repro.core.measures import exact_worst_case
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError
from repro.search.adversaries import (
    BranchAndBoundAdversary,
    PrunedExhaustiveAdversary,
)
from repro.search.branch_bound import BranchAndBoundSearch
from repro.topology.complete import complete_graph
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


class TestPrunedExhaustive:
    def test_matches_legacy_on_the_6_cycle(self, largest_id_algorithm):
        graph = cycle_graph(6)
        legacy = ExhaustiveAdversary().maximise(graph, largest_id_algorithm, "sum")
        pruned = PrunedExhaustiveAdversary().maximise(graph, largest_id_algorithm, "sum")
        assert pruned.exact
        assert pruned.value == legacy.value
        # Dihedral group of order 12: 720 / 12 = 60 canonical classes.
        assert pruned.certificate.canonical_leaves == 60
        assert pruned.certificate.group_order == 12

    def test_witness_reproduces_the_value(self, largest_id_algorithm):
        graph = cycle_graph(6)
        result = PrunedExhaustiveAdversary().maximise(graph, largest_id_algorithm)
        trace = run_ball_algorithm(graph, result.assignment, largest_id_algorithm)
        assert trace.average_radius == pytest.approx(result.value)

    def test_complete_graph_collapses_to_one_class(self, largest_id_algorithm):
        result = PrunedExhaustiveAdversary().maximise(
            complete_graph(10), largest_id_algorithm, "average"
        )
        assert result.exact
        assert result.certificate.canonical_leaves == 1
        assert result.certificate.group_order == math.factorial(10)
        assert result.value == 1.0  # everyone sees everything at radius 1

    def test_port_using_algorithm_gets_the_port_preserving_group(self):
        algorithm = BallSimulationOfRounds(ColeVishkinRing(6))
        result = PrunedExhaustiveAdversary().maximise(cycle_graph(6), algorithm)
        # Rotations only: order 6, not the dihedral 12.
        assert result.certificate.group_order == 6
        assert result.certificate.group_respects_ports

    def test_respects_max_nodes(self, largest_id_algorithm):
        with pytest.raises(ConfigurationError, match="limited"):
            PrunedExhaustiveAdversary(max_nodes=5).maximise(
                cycle_graph(8), largest_id_algorithm
            )

    def test_respects_the_class_budget(self, largest_id_algorithm):
        # The 12-path has a symmetry group of order 2: ~12!/2 canonical
        # classes, hopeless for enumeration, and rejected eagerly.
        with pytest.raises(ConfigurationError, match="canonical"):
            PrunedExhaustiveAdversary().maximise(
                path_graph(12), largest_id_algorithm
            )
        # The 12-node complete graph has more nodes but a single class.
        result = PrunedExhaustiveAdversary().maximise(
            complete_graph(12), largest_id_algorithm
        )
        assert result.exact and result.certificate.canonical_leaves == 1


class TestBranchAndBound:
    @pytest.mark.parametrize("objective", ["average", "max", "sum"])
    def test_matches_legacy_on_cycles_and_paths(self, largest_id_algorithm, objective):
        for graph in (cycle_graph(5), path_graph(6)):
            legacy = ExhaustiveAdversary().maximise(
                graph, largest_id_algorithm, objective
            )
            bounded = BranchAndBoundAdversary().maximise(
                graph, largest_id_algorithm, objective
            )
            assert bounded.exact
            assert bounded.value == legacy.value

    def test_bound_pruning_reduces_the_enumeration(self, largest_id_algorithm):
        graph = cycle_graph(7)
        pruned = PrunedExhaustiveAdversary().maximise(graph, largest_id_algorithm)
        bounded = BranchAndBoundAdversary().maximise(graph, largest_id_algorithm)
        assert bounded.value == pruned.value
        assert (
            bounded.certificate.canonical_leaves
            < pruned.certificate.canonical_leaves
        )
        assert bounded.certificate.pruned_by_bound > 0

    def test_without_incumbent_still_exact(self, largest_id_algorithm):
        graph = cycle_graph(6)
        reference = ExhaustiveAdversary().maximise(graph, largest_id_algorithm, "sum")
        unseeded = BranchAndBoundAdversary(seed_incumbent=False).maximise(
            graph, largest_id_algorithm, "sum"
        )
        assert unseeded.value == reference.value
        assert not unseeded.certificate.incumbent_seeded

    def test_exact_beyond_the_legacy_limit(self, largest_id_algorithm):
        # n = 12 > 9: a space of 12! assignments, collapsed to one canonical
        # class by the complete graph's full symmetry.  (The cycle version of
        # this claim, cross-checked against the paper's recurrence, lives in
        # benchmarks/test_bench_search.py — it takes seconds, not millis.)
        result = exact_worst_case(complete_graph(12), largest_id_algorithm, "sum")
        assert result.exact
        assert result.value == 12.0  # every node outputs at radius 1
        assert result.certificate.space_size == math.factorial(12)
        assert result.certificate.group_order == math.factorial(12)

    def test_search_outcome_certificate_counters_are_consistent(
        self, largest_id_algorithm
    ):
        search = BranchAndBoundSearch(cycle_graph(6), largest_id_algorithm, "sum")
        outcome = search.run()
        certificate = outcome.certificate
        assert certificate.exact
        assert certificate.nodes_expanded > 0
        assert certificate.canonical_leaves > 0
        assert 0 < certificate.group_order <= 12

    def test_greedy_coloring_agrees_with_legacy(self):
        algorithm = GreedyColoringByID()
        graph = path_graph(5)
        legacy = ExhaustiveAdversary().maximise(graph, algorithm, "average")
        bounded = BranchAndBoundAdversary().maximise(graph, algorithm, "average")
        assert bounded.value == legacy.value


class TestBatchedEnumeration:
    """run_batched must be indistinguishable from the eager full enumeration."""

    @pytest.mark.parametrize("objective", ["sum", "max", "average"])
    def test_matches_eager_enumeration_leaf_by_leaf(self, objective):
        # An opaque FunctionBallAlgorithm has no vectorised rule, so run()
        # keeps the eager path — making it the reference run_batched is
        # compared against (every registered algorithm now vectorises).
        algorithm = FunctionBallAlgorithm(
            GreedyColoringByID().decide,
            name="greedy-coloring-opaque",
            problem="coloring",
            order_invariant=True,
            uses_ports=False,
        )
        graph = cycle_graph(6)
        eager = BranchAndBoundSearch(graph, algorithm, objective, use_bound=False)
        assert not eager.kernel.vectorized
        eager_leaves = []
        eager_outcome = eager.run(
            on_leaf=lambda ids, radii: eager_leaves.append((tuple(ids), tuple(radii)))
        )
        batched = BranchAndBoundSearch(graph, algorithm, objective, use_bound=False)
        batched_leaves = []
        batched_outcome = batched.run_batched(
            on_leaf=lambda ids, radii: batched_leaves.append((tuple(ids), tuple(radii))),
            cohort_rows=7,   # force several partial cohorts
        )
        assert batched_leaves == eager_leaves
        assert batched_outcome.value == eager_outcome.value
        assert batched_outcome.identifiers == eager_outcome.identifiers
        eager_cert = eager_outcome.certificate.as_dict()
        batched_cert = batched_outcome.certificate.as_dict()
        assert batched_cert == eager_cert

    def test_vectorised_algorithms_delegate_from_run(self, largest_id_algorithm):
        # For largest-id, run(use_bound=False) IS the batched path; its
        # outcome must still match the bounded exact search and the legacy
        # exhaustive optimum.
        graph = cycle_graph(7)
        search = BranchAndBoundSearch(graph, largest_id_algorithm, "sum", use_bound=False)
        assert search.kernel.vectorized
        outcome = search.run()
        legacy = ExhaustiveAdversary().maximise(graph, largest_id_algorithm, "sum")
        assert outcome.value == legacy.value
        assert outcome.certificate.canonical_leaves == math.factorial(7) // 14
        assert outcome.certificate.pruned_by_bound == 0

    def test_incumbent_seeding_matches_eager_semantics(self, largest_id_algorithm):
        graph = cycle_graph(6)
        incumbent = tuple(range(6))
        search = BranchAndBoundSearch(graph, largest_id_algorithm, "sum", use_bound=False)
        outcome = search.run_batched(incumbent=incumbent)
        assert outcome.certificate.incumbent_seeded
        reference = BranchAndBoundSearch(graph, largest_id_algorithm, "sum").run(
            incumbent=incumbent
        )
        assert outcome.value == reference.value
