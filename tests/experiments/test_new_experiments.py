"""Tests for the further-work experiments E10, E11 and E13."""

import math

from repro.experiments import characterization, distributions, general_graphs
from repro.experiments.harness import run_all_experiments


class TestE10Characterization:
    def test_runs_and_classifies_the_three_regimes(self):
        result = characterization.run(n=64, samples=3)
        assert result.experiment_id == "E10"
        rows = {row["algorithm"]: row for row in result.table.rows}
        assert rows["largest-id"]["classification"] == "collapses"
        assert rows["cole-vishkin"]["classification"] == "stable"
        assert rows["greedy-mis"]["classification"] == "stable"

    def test_cole_vishkin_gap_is_exactly_one(self):
        result = characterization.run(n=64, samples=2)
        rows = {row["algorithm"]: row for row in result.table.rows}
        assert rows["cole-vishkin"]["gap_max_over_avg"] == 1.0

    def test_small_mode_reduces_the_instance(self):
        result = characterization.run(n=512, samples=8, small=True)
        assert all(row["n"] <= 96 for row in result.table.rows)


class TestE11GeneralGraphs:
    def test_runs_and_covers_the_topology_families(self):
        result = general_graphs.run(n=64, samples=2)
        assert result.experiment_id == "E11"
        families = set(result.table.column("family"))
        assert {"cycle", "path", "grid", "torus", "random-tree", "gnp-dense"} <= families

    def test_no_radius_exceeds_the_diameter(self):
        result = general_graphs.run(n=64, samples=2)
        assert all(row["max_radius"] <= row["diameter"] for row in result.table.rows)

    def test_dense_graphs_have_small_gaps(self):
        result = general_graphs.run(n=100, samples=2)
        rows = {row["family"]: row for row in result.table.rows}
        assert rows["gnp-dense"]["gap_max_over_avg"] < rows["cycle"]["gap_max_over_avg"]


class TestE13Distributions:
    def test_exact_rows_cover_all_assignments(self):
        result = distributions.run(sizes=[5], samples=32)
        assert result.experiment_id == "E13"
        exact_rows = [row for row in result.table.rows if row["method"] == "exact"]
        assert exact_rows
        assert all(row["weight"] == math.factorial(row["n"]) for row in exact_rows)

    def test_cycle_max_is_a_point_mass_at_half_n(self):
        result = distributions.run(sizes=[6], samples=32)
        cycle_exact = [
            row
            for row in result.table.rows
            if row["family"] == "cycle" and row["method"] == "exact"
        ]
        assert all(row["max_std"] == 0.0 for row in cycle_exact)
        assert all(row["max_mean"] == row["n"] // 2 for row in cycle_exact)

    def test_sampled_rows_report_standard_errors(self):
        result = distributions.run(sizes=[5], samples=32)
        sampled = [row for row in result.table.rows if row["method"] == "sample"]
        assert all(row["avg_se"] > 0 for row in sampled)

    def test_small_mode_shrinks_the_sizes(self):
        result = distributions.run(small=True)
        assert all(row["n"] <= 6 for row in result.table.rows)


class TestRunAll:
    def test_run_all_experiments_includes_the_new_ones(self):
        results = run_all_experiments(small=True)
        ids = [result.experiment_id for result in results]
        assert ids == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11", "E12", "E13",
        ]
