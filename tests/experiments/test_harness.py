"""Tests for the experiment harness infrastructure."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult, default_ring_sizes
from repro.utils.tables import Table


def make_result():
    table = Table(columns=("n", "value"))
    table.add_row(n=4, value=1.0)
    return ExperimentResult(
        experiment_id="EX", title="example", claim="values exist", table=table
    )


class TestExperimentResult:
    def test_notes_accumulate(self):
        result = make_result()
        result.add_note("first")
        result.add_note("second")
        assert result.notes == ["first", "second"]

    def test_require_records_passing_checks(self):
        result = make_result()
        result.require(True, "sanity")
        assert any("sanity" in note for note in result.notes)

    def test_require_raises_on_failure_with_experiment_id(self):
        result = make_result()
        with pytest.raises(ExperimentError, match="EX"):
            result.require(False, "doomed check")

    def test_str_contains_id_claim_table_and_notes(self):
        result = make_result()
        result.add_note("observation")
        text = str(result)
        assert "EX" in text and "values exist" in text
        assert "observation" in text
        assert "4" in text


class TestDefaults:
    def test_small_sizes_are_a_prefix_of_the_full_sizes(self):
        small = default_ring_sizes(small=True)
        full = default_ring_sizes(small=False)
        assert small == full[: len(small)]
        assert all(b == 2 * a for a, b in zip(full, full[1:]))
