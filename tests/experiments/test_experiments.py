"""Smoke and shape tests for the experiment modules (E1-E9).

Each experiment module embeds its own shape checks (``ExperimentResult.require``)
that raise when the paper's qualitative claims stop reproducing, so running an
experiment is itself a meaningful test; the assertions below additionally pin
down the structure of the returned tables.
"""

import pytest

from repro.experiments import (
    coloring,
    dynamic,
    largest_id,
    lower_bound,
    parallel,
    random_ids,
    recurrence,
    regularity,
    simulators,
)
from repro.experiments.harness import ExperimentResult


class TestE1LargestId:
    def test_runs_and_reports_the_exponential_gap(self):
        result = largest_id.run(sizes=[16, 32, 64, 128])
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "E1"
        assert len(result.table) == 4
        gaps = result.table.column("gap_max_over_avg")
        assert gaps[-1] > gaps[0]  # the separation widens with n

    def test_measured_average_matches_the_recurrence_bound_exactly(self):
        result = largest_id.run(sizes=[16, 64])
        for row in result.table.rows:
            assert row["avg_worst_ids"] == pytest.approx(row["avg_bound"])


class TestE2Recurrence:
    def test_runs_with_custom_sizes(self):
        result = recurrence.run(sizes=[8, 32, 128], small=True)
        assert result.experiment_id == "E2"
        assert result.table.column("p") == [8, 32, 128]

    def test_ratio_column_hovers_around_one_half(self):
        result = recurrence.run(sizes=[256, 1024, 4096], small=True)
        ratios = result.table.column("a(p)/(p*log2(p))")
        assert all(0.45 < ratio < 0.55 for ratio in ratios)


class TestE3Coloring:
    def test_runs_and_certifies(self):
        result = coloring.run(sizes=[16, 32, 64])
        assert result.experiment_id == "E3"
        assert all(row["cv_avg_radius"] == row["cv_max_radius"] for row in result.table.rows)


class TestE4LowerBound:
    def test_runs_on_small_rings(self):
        result = lower_bound.run(sizes=[16, 32])
        assert result.experiment_id == "E4"
        assert all(row["slices"] >= 1 for row in result.table.rows)


class TestE5Regularity:
    def test_runs_and_contains_both_algorithms(self):
        result = regularity.run(sizes=[16, 32])
        algorithms = set(result.table.column("algorithm"))
        assert algorithms == {"cole-vishkin", "largest-id"}


class TestE6RandomIds:
    def test_runs_with_few_samples(self):
        result = random_ids.run(sizes=[16, 32, 64], samples=4)
        assert result.experiment_id == "E6"
        assert all(row["samples"] == 4 for row in result.table.rows)


class TestE7Dynamic:
    def test_runs_and_repair_cost_tracks_average(self):
        result = dynamic.run(sizes=[64], churn_events=8)
        row = result.table.rows[0]
        assert row["repair_from_avg_formula"] == pytest.approx(2 * row["avg_radius"] + 1)


class TestE8Parallel:
    def test_runs_and_reports_speedups(self):
        result = parallel.run(sizes=[128], processor_counts=(4, 8))
        assert len(result.table) == 2
        assert all(row["speedup"] >= 2 for row in result.table.rows)


class TestE9Simulators:
    def test_runs_and_radii_agree_within_one(self):
        result = simulators.run(sizes=[16])
        assert all(row["max_abs_radius_diff"] <= 1 for row in result.table.rows)
