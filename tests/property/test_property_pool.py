"""The warm pool never changes an answer: parallel ≡ serial, everywhere.

The persistent worker runtime (:mod:`repro.engine.pool`) re-routes three
very different consumers — sampled/exact distribution grids, sharded scale
cells and the service's cold query batches — through warm processes,
shared-memory payloads and worker-side caches.  None of that machinery may
change a single bit of any row.  This wall pins each consumer against its
serial reference across worker counts {1, 2, 4}.
"""

import pytest

from repro.api import Query, Session
from repro.api.results import strip_volatile
from repro.service import QueryService

WORKERS = [1, 2, 4]

DIST = Query(
    mode="distribution",
    topologies=("cycle", "random-tree"),
    sizes=(6, 8),
    algorithms="largest-id",
    methods=("exact", "sample"),
    samples=12,
    seed=5,
)

SCALE = Query(
    mode="scale",
    topologies=("cycle", "random-tree"),
    sizes=48,
    algorithms="largest-id",
    samples=4,
    seed=7,
    row_block=2,
    center_chunk=16,
)

#: Cold documents the service wall fans out (distinct, all computable cold).
SERVICE_DOCUMENTS = [
    Query(mode="simulate", topologies="cycle", sizes=16).to_dict(),
    Query(mode="simulate", topologies="path", sizes=16).to_dict(),
    Query(
        mode="sweep",
        topologies="cycle",
        sizes=(6, 8),
        adversaries="branch-and-bound",
        measure="average",
    ).to_dict(),
    Query(mode="simulate", topologies="complete", sizes=9, seed=2).to_dict(),
]


def _scale_comparable(rows):
    """Scale rows minus the fields that legitimately vary with fan-out.

    ``kernel`` describes the executor (including its worker count) and
    ``nodes_per_s`` is a wall-clock rate; everything else must be frozen.
    """
    return [
        {
            key: value
            for key, value in row.items()
            if key not in ("kernel", "nodes_per_s")
        }
        for row in strip_volatile(rows)
    ]


@pytest.fixture(scope="module")
def dist_reference():
    return Session().distribution(DIST.with_changes(workers=1))


@pytest.fixture(scope="module")
def scale_reference():
    return Session().scale(SCALE.with_changes(workers=1))


class TestDistributionWall:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_sampled_and_exact_rows_are_worker_invariant(self, dist_reference, workers):
        result = Session().distribution(DIST.with_changes(workers=workers))
        assert strip_volatile(result.rows) == strip_volatile(dist_reference.rows)
        assert result.as_dict()["measures"] == dist_reference.as_dict()["measures"]


class TestScaleWall:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_sharded_scale_rows_are_worker_invariant(self, scale_reference, workers):
        result = Session().scale(SCALE.with_changes(workers=workers))
        assert _scale_comparable(result.rows) == _scale_comparable(scale_reference.rows)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_compose_with_odd_shard_shapes(self, scale_reference, workers):
        shaped = SCALE.with_changes(workers=workers, row_block=1, center_chunk=7)
        result = Session().scale(shaped)
        assert _scale_comparable(result.rows) == _scale_comparable(scale_reference.rows)


class TestServiceWall:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_cold_batches_are_worker_invariant(self, tmp_path, workers):
        serial = QueryService(root=tmp_path / "serial")
        pooled = QueryService(root=tmp_path / f"pooled-{workers}", max_parallel=workers)
        reference = serial.execute_many(SERVICE_DOCUMENTS)
        outcomes = pooled.execute_many(SERVICE_DOCUMENTS)
        assert [o.tier for o in outcomes] == [o.tier for o in reference]
        for left, right in zip(outcomes, reference):
            assert left.digest == right.digest
            assert strip_volatile(left.document["rows"]) == strip_volatile(
                right.document["rows"]
            )
