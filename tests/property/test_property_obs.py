"""Instrumentation must observe, never perturb: on/off row parity.

The acceptance bar of the observability subsystem: running the same query
with ``REPRO_OBS=on`` returns rows bit-identical to the disabled run modulo
the volatile diagnostics (``wall_time_s``, ``cache``, ``profile`` — exactly
:data:`repro.api.results.VOLATILE_ROW_KEYS`), and the profile block exists
precisely when instrumentation was on.
"""

import pytest

from repro.api.query import Query
from repro.api.results import VOLATILE_ROW_KEYS, strip_volatile
from repro.api.session import Session
from repro.obs import metrics, spans

QUERIES = (
    Query(mode="simulate", topologies=("cycle", "path"), sizes=(6, 7), seed=5),
    Query(
        mode="worst-case",
        topologies=("cycle", "random-tree"),
        sizes=(6,),
        adversaries="branch-and-bound",
        measure="average",
        seed=3,
    ),
    Query(
        mode="sweep",
        topologies=("cycle",),
        sizes=(6, 7),
        adversaries=("rotation", "random-search"),
        measure="sum",
        samples=4,
        seed=11,
    ),
    Query(
        mode="distribution",
        topologies=("cycle", "gnp"),
        sizes=(6,),
        methods=("exact", "sample"),
        samples=32,
        seed=7,
    ),
)


@pytest.fixture(autouse=True)
def _obs_isolation():
    state = spans._state
    yield
    spans._state = state
    spans.reset_spans()
    metrics.reset_metrics()


def _run(query: Query, enabled: bool):
    if enabled:
        spans.enable()
        spans.reset_spans()
        metrics.reset_metrics()
    else:
        spans.disable()
    # Fresh sessions: the parity claim must not lean on shared caches.
    return Session().run(query)


class TestOnOffParity:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.mode)
    def test_rows_bit_identical_modulo_volatile_keys(self, query):
        off = _run(query, enabled=False)
        on = _run(query, enabled=True)
        assert strip_volatile(off.rows) == strip_volatile(on.rows)
        assert off.measures == on.measures
        assert off.exact == on.exact

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.mode)
    def test_profile_present_exactly_when_enabled(self, query):
        assert _run(query, enabled=False).profile is None
        profile = _run(query, enabled=True).profile
        assert profile is not None
        assert profile["spans"][0]["name"] == "api.query"
        assert profile["total_s"] >= 0.0
        assert profile["metrics"]["counters"]["api.queries"] >= 1

    def test_profile_wall_time_coheres_with_timing(self):
        # The span tree of one query must account for the measured wall
        # time: the api.query root encloses every instrumented cell, so its
        # duration is at least the summed per-row wall times and (with slack
        # for scheduling noise) within 10x of them on this tiny workload.
        query = QUERIES[0]
        result = _run(query, enabled=True)
        total = result.profile["total_s"]
        assert total >= 0.0
        assert result.timing["wall_time_s"] <= total * 10 + 0.05


class TestVolatileKeys:
    def test_profile_is_declared_volatile(self):
        assert "profile" in VOLATILE_ROW_KEYS

    def test_strip_volatile_removes_profile_from_rows(self):
        rows = [{"value": 1, "profile": {"spans": []}, "wall_time_s": 0.2}]
        assert strip_volatile(rows) == [{"value": 1}]
