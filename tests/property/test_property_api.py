"""Old-path-vs-new-path parity for the unified API.

The acceptance bar of the api redesign: for every mode — simulate,
worst-case, distribution, sweep — the Session path must return results
equal to the legacy path on cycles, paths, random trees and G(n, p) up to
``n <= 7``, and the legacy entry points must still work (returning their
historical shapes) while emitting ``DeprecationWarning``.
"""

import math

import pytest

from repro.algorithms.registry import make_algorithm
from repro.api.query import Query
from repro.api.results import strip_volatile
from repro.api.session import Session
from repro.core.measures import evaluate_assignment, worst_case_over_assignments
from repro.core.runner import run_ball_algorithm
from repro.engine.campaign import (
    build_topology,
    run_campaign,
    run_campaign_rows,
    run_dist_campaign,
    run_dist_campaign_rows,
)
from repro.model.identifiers import IdentifierAssignment

#: The four graph families of the acceptance criterion, at n <= 7.
TOPOLOGIES = ("cycle", "path", "random-tree", "gnp")
SIZES = (6, 7)


class TestSimulateParity:
    def test_session_rows_reproduce_under_the_legacy_runner(self):
        result = Session().simulate(
            Query(mode="simulate", topologies=TOPOLOGIES, sizes=SIZES, seed=5)
        )
        assert len(result.rows) == len(TOPOLOGIES) * len(SIZES)
        for row in result.rows:
            graph = build_topology(row["topology"], row["n"], row["graph_seed"])
            ids = IdentifierAssignment(row["identifiers"])
            trace = run_ball_algorithm(graph, ids, make_algorithm("largest-id", graph.n))
            assert trace.max_radius == row["classic"]
            assert math.isclose(trace.average_radius, row["average"])
            assert trace.sum_radius == row["sum"]


class TestWorstCaseParity:
    @pytest.mark.parametrize("adversary", ["rotation", "random-search", "branch-and-bound"])
    def test_session_equals_legacy_campaign_per_cell(self, adversary):
        query = Query(
            mode="worst-case",
            topologies=TOPOLOGIES,
            sizes=SIZES,
            adversaries=adversary,
            measure="average",
            samples=4,
            seed=3,
        )
        session_rows = Session().worst_case(query).rows
        legacy_rows = run_campaign_rows(query.to_campaign_spec())
        assert strip_volatile(session_rows) == strip_volatile(legacy_rows)


class TestSweepParity:
    def test_session_equals_legacy_campaign_rows(self):
        query = Query(
            mode="sweep",
            topologies=TOPOLOGIES,
            sizes=SIZES,
            adversaries=("rotation", "random-search"),
            measure="sum",
            samples=4,
            seed=11,
        )
        session_rows = Session().sweep(query).rows
        legacy_rows = run_campaign_rows(query.to_campaign_spec())
        assert strip_volatile(session_rows) == strip_volatile(legacy_rows)

    def test_parallel_session_sweep_matches_too(self):
        query = Query(
            mode="sweep", topologies=("cycle", "gnp"), sizes=6,
            adversaries="rotation", seed=2, workers=2,
        )
        session_rows = Session().sweep(query).rows
        legacy_rows = run_campaign_rows(query.to_campaign_spec(), workers=2)
        assert strip_volatile(session_rows) == strip_volatile(legacy_rows)


class TestDistributionParity:
    def test_session_equals_legacy_dist_rows(self):
        query = Query(
            mode="distribution",
            topologies=TOPOLOGIES,
            sizes=(5, 6),
            methods=("exact", "sample"),
            samples=8,
            seed=7,
        )
        session_rows = Session().distribution(query).rows
        legacy_rows = run_dist_campaign_rows(query.to_dist_spec())
        assert strip_volatile(session_rows) == strip_volatile(legacy_rows)


class TestDeprecatedShims:
    """Legacy entry points: historical shapes, plus a DeprecationWarning."""

    def test_run_campaign_warns_and_returns_rows(self):
        spec = Query(mode="sweep", topologies="cycle", sizes=6, adversaries="rotation").to_campaign_spec()
        with pytest.warns(DeprecationWarning, match="run_campaign is deprecated"):
            rows = run_campaign(spec)
        assert strip_volatile(rows) == strip_volatile(run_campaign_rows(spec))

    def test_run_dist_campaign_warns_and_returns_rows(self):
        spec = Query(mode="distribution", topologies="cycle", sizes=5).to_dist_spec()
        with pytest.warns(DeprecationWarning, match="run_dist_campaign is deprecated"):
            rows = run_dist_campaign(spec)
        assert strip_volatile(rows) == strip_volatile(run_dist_campaign_rows(spec))

    def test_worst_case_over_assignments_warns(self):
        from repro.search.adversaries import BranchAndBoundAdversary
        from repro.topology.cycle import cycle_graph

        algorithm = make_algorithm("largest-id", 6)
        with pytest.warns(DeprecationWarning, match="worst_case_over_assignments"):
            result = worst_case_over_assignments(
                cycle_graph(6), algorithm, BranchAndBoundAdversary(), objective="sum"
            )
        assert result.exact is True
        assert result.value == 10.0  # the recurrence value a(6)

    def test_evaluate_assignment_warns_and_matches_session_report(self):
        from repro.model.identifiers import random_assignment
        from repro.topology.cycle import cycle_graph

        graph = cycle_graph(6)
        ids = random_assignment(6, seed=1)
        algorithm = make_algorithm("largest-id", 6)
        with pytest.warns(DeprecationWarning, match="evaluate_assignment"):
            report = evaluate_assignment(graph, ids, algorithm)
        assert report == Session().report(graph, ids, algorithm)
