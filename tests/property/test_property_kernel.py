"""Kernel-vs-engine equivalence on randomised instances.

The acceptance bar for the batch kernel: on cycles, paths, trees, grids and
G(n, p) graphs (n <= 7) under random identifier assignments, the traces a
:class:`~repro.kernel.compile.CompiledInstance` produces — radii *and*
outputs — must be bit-identical to the single-assignment
:class:`~repro.engine.frontier.FrontierRunner` reference path, for every
registered algorithm and under **both** kernel backends (numpy legs are
skipped automatically on numpy-free installs, where the stdlib fallback is
the only backend).
"""

import pytest

from repro.algorithms.registry import algorithm_registry
from repro.core.algorithm import BallAlgorithm
from repro.engine.campaign import make_ball_algorithm
from repro.engine.frontier import FrontierRunner
from repro.kernel import compile_instance, numpy_available, simulate_batch
from repro.kernel.compile import BatchRequest, simulate_many
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import gnp_random_graph, random_tree

#: (label, graph) — every family from the tentpole checklist, n <= 7.
GRAPH_FAMILIES = [
    ("cycle-6", cycle_graph(6)),
    ("cycle-7", cycle_graph(7)),
    ("path-6", path_graph(6)),
    ("random-tree-7", random_tree(7, seed=5)),
    ("grid-2x3", grid_graph(2, 3)),
    ("gnp-7", gnp_random_graph(7, 0.45, seed=13)),
]

ASSIGNMENT_SEEDS = tuple(range(6))

BACKENDS = ("python",) + (("numpy",) if numpy_available() else ())

#: The vectorised rule every registry name must compile to (the coverage
#: gate in tests/kernel/test_rule_coverage.py asserts "not runner-table";
#: here the differential tests pin the exact rule class that produced the
#: matching traces, so a silent fallback cannot hide behind correctness).
EXPECTED_RULES = {
    "cole-vishkin": "cv-ring",
    "cole-vishkin-ball": "cv-ring",
    "greedy-coloring": "greedy-cone-coloring",
    "greedy-mis": "greedy-cone-mis",
    "largest-id": "max-scan",
    "ring-coloring-via-mis": "ring-mis-cone",
}


def _ball_algorithms(n: int):
    """Every registered algorithm in the ball view, instantiated for n.

    Round algorithms (the bare "cole-vishkin") are wrapped in
    :class:`BallSimulationOfRounds` by ``make_ball_algorithm``, exactly as
    the campaign engine and the Session do, so the wall covers every
    registry name rather than only the natively ball-shaped ones.
    """
    algorithms = []
    for name in sorted(algorithm_registry()):
        algorithm = make_ball_algorithm(name, n)
        assert isinstance(algorithm, BallAlgorithm)
        algorithms.append((name, algorithm))
    return algorithms


def _supported(name: str, algorithm: BallAlgorithm, graph) -> bool:
    if not algorithm.supports_graph(graph):
        return False
    if name in ("cole-vishkin", "cole-vishkin-ball"):
        from repro.algorithms.cole_vishkin import is_consistently_oriented_ring

        return is_consistently_oriented_ring(graph)
    return True


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "label,graph", GRAPH_FAMILIES, ids=[label for label, _ in GRAPH_FAMILIES]
)
def test_kernel_traces_match_runner_for_every_registered_algorithm(
    label, graph, backend
):
    assignments = [
        random_assignment(graph.n, seed=seed) for seed in ASSIGNMENT_SEEDS
    ]
    rows = [ids.identifiers() for ids in assignments]
    for name, algorithm in _ball_algorithms(graph.n):
        if not _supported(name, algorithm, graph):
            continue
        runner = FrontierRunner(graph, algorithm)
        instance = compile_instance(graph, algorithm, backend=backend)
        # The equality below must be produced by the vectorised rule, not
        # by a silent fall back to the decide-backed runner-table path.
        assert instance.vectorized, f"{label}/{name}/{backend}"
        assert (
            instance.describe()["rule"] == EXPECTED_RULES[name]
        ), f"{label}/{name}/{backend}"
        references = [runner.run(ids) for ids in assignments]
        for ids, reference, trace in zip(
            assignments, references, instance.batch_traces(rows)
        ):
            context = f"{label}/{name}/{backend}/{ids.identifiers()}"
            assert trace.radii() == reference.radii(), context
            assert (
                trace.outputs_by_position() == reference.outputs_by_position()
            ), context
        # simulate_batch is the radii projection of the same evaluation.
        expected = [
            tuple(reference.radii()[position] for position in range(graph.n))
            for reference in references
        ]
        assert simulate_batch(instance, rows) == expected, f"{label}/{name}/{backend}"


@pytest.mark.skipif(not numpy_available(), reason="numpy backend not installed")
def test_backends_agree_with_each_other():
    # Transitivity gives this from the runner tests already; asserting it
    # directly localises a failure to the backend pair.
    for label, graph in GRAPH_FAMILIES:
        for name, algorithm in _ball_algorithms(graph.n):
            if not _supported(name, algorithm, graph):
                continue
            rows = [
                random_assignment(graph.n, seed=seed).identifiers()
                for seed in ASSIGNMENT_SEEDS
            ]
            python_radii = simulate_batch(
                compile_instance(graph, algorithm, backend="python"), rows
            )
            numpy_radii = simulate_batch(
                compile_instance(graph, algorithm, backend="numpy"), rows
            )
            assert python_radii == numpy_radii, f"{label}/{name}"


def test_repeated_batches_reuse_one_instance():
    # A compiled instance is a session: repeated batches (and shuffled row
    # order) must reproduce the cold results bit for bit.
    graph = cycle_graph(7)
    for name, algorithm in _ball_algorithms(7):
        if not _supported(name, algorithm, graph):
            continue
        instance = compile_instance(graph, algorithm)
        rows = [random_assignment(7, seed=seed).identifiers() for seed in range(8)]
        cold = simulate_batch(instance, rows)
        assert simulate_batch(instance, rows) == cold, name
        assert simulate_batch(instance, rows[::-1]) == cold[::-1], name


def test_kernel_matches_runner_under_identifier_assignment_inputs():
    # IdentifierAssignment objects are accepted directly as matrix rows.
    graph = random_tree(6, seed=9)
    from repro.algorithms.largest_id import LargestIdAlgorithm

    algorithm = LargestIdAlgorithm()
    assignments = [random_assignment(6, seed=seed) for seed in range(4)]
    instance = compile_instance(graph, algorithm)
    runner = FrontierRunner(graph, algorithm)
    for ids, radii in zip(assignments, simulate_batch(instance, assignments)):
        reference = runner.run(IdentifierAssignment(ids.identifiers()))
        assert tuple(reference.radii()[p] for p in range(6)) == radii


@pytest.mark.parametrize("backend", BACKENDS)
def test_simulate_many_matches_per_instance_batches(backend):
    # Multi-instance batching (the Session's cross-cell submission path):
    # heterogeneous instances — different graphs, widths and algorithms,
    # with repeated instances interleaved — through one simulate_many call
    # must return, per request, exactly the rows simulate_batch produces
    # on that request's instance alone.
    from repro.algorithms.greedy_coloring import GreedyColoringByID
    from repro.algorithms.largest_id import LargestIdAlgorithm

    cycle = compile_instance(cycle_graph(7), LargestIdAlgorithm(), backend=backend)
    tree = compile_instance(
        random_tree(5, seed=3), GreedyColoringByID(), backend=backend
    )
    ring = compile_instance(
        cycle_graph(6), make_ball_algorithm("cole-vishkin", 6), backend=backend
    )
    requests = [
        BatchRequest(cycle, [random_assignment(7, seed=s).identifiers() for s in range(5)]),
        BatchRequest(tree, [random_assignment(5, seed=s).identifiers() for s in range(3)]),
        BatchRequest(cycle, [random_assignment(7, seed=s).identifiers() for s in range(5, 9)]),
        BatchRequest(ring, [random_assignment(6, seed=s).identifiers() for s in range(4)]),
        BatchRequest(tree, []),  # empty requests keep their slot
    ]
    batched = simulate_many(requests)
    assert len(batched) == len(requests)
    for request, rows in zip(requests, batched):
        assert rows == simulate_batch(request.instance, list(request.rows))


@pytest.mark.parametrize("backend", BACKENDS)
def test_padded_batching_is_bit_identical_for_every_algorithm(backend):
    # The padded same-shape fast path (numpy + MaxScanRule groups) and the
    # sequential path must agree bit for bit; algorithms and backends the
    # fast path does not cover must fall through to sequential untouched.
    # Separately-compiled same-shape instances make eligible groups.
    for name in sorted(algorithm_registry()):
        instances = [
            compile_instance(
                cycle_graph(6), make_ball_algorithm(name, 6), backend=backend
            )
            for _ in range(3)
        ]
        requests = [
            BatchRequest(
                instance,
                [
                    tuple(random_assignment(6, seed=17 * index + s).identifiers())
                    for s in range(4)
                ],
            )
            for index, instance in enumerate(instances)
        ]
        padded = simulate_many(requests)
        sequential = simulate_many(requests, pad_same_shape=False)
        assert padded == sequential, f"{name}/{backend} padded path diverges"
        for request, rows in zip(requests, padded):
            assert rows == request.instance.batch_radii(list(request.rows))


@pytest.mark.parametrize("shape", [(5, 3), (6, 2), (7, 4)])
def test_padded_groups_match_mixed_shape_sequential(shape):
    # Same-shape groups inside a heterogeneous request list: the group runs
    # padded (when numpy is available) while the rest run sequentially, and
    # every request still gets exactly its own rows.
    from repro.algorithms.largest_id import LargestIdAlgorithm

    n, group_size = shape
    group = [
        compile_instance(cycle_graph(n), LargestIdAlgorithm())
        for _ in range(group_size)
    ]
    odd = compile_instance(random_tree(n, seed=2), LargestIdAlgorithm())
    requests = [
        BatchRequest(
            instance, [random_assignment(n, seed=s).identifiers() for s in range(3)]
        )
        for instance in group
    ] + [BatchRequest(odd, [random_assignment(n, seed=9).identifiers()])]
    assert simulate_many(requests) == simulate_many(requests, pad_same_shape=False)


def test_simulate_many_validates_untrusted_rows():
    from repro.algorithms.largest_id import LargestIdAlgorithm
    from repro.errors import IdentifierError, TopologyError

    instance = compile_instance(cycle_graph(5), LargestIdAlgorithm())
    with pytest.raises(TopologyError, match="covers 4 positions"):
        simulate_many([BatchRequest(instance, [(0, 1, 2, 3)])])
    with pytest.raises(IdentifierError, match="distinct"):
        simulate_many([BatchRequest(instance, [(0, 1, 1, 2, 3)])])
