"""Property-based tests for the algorithms: correctness on arbitrary inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cole_vishkin import ColeVishkinRing, cv_rounds_needed
from repro.algorithms.color_reduction import cv_step
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm, predicted_largest_id_radii
from repro.algorithms.mis import GreedyMISByID
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import IdentifierAssignment
from repro.model.rounds import run_round_algorithm
from repro.topology.cycle import cycle_graph

ring_with_ids = st.integers(min_value=3, max_value=20).flatmap(
    lambda n: st.permutations(list(range(n)))
)


@given(ring_with_ids)
@settings(max_examples=40, deadline=None)
def test_largest_id_is_correct_on_every_ring_and_assignment(ids):
    n = len(ids)
    graph = cycle_graph(n)
    assignment = IdentifierAssignment(ids)
    trace = run_ball_algorithm(graph, assignment, LargestIdAlgorithm())
    assert certify("largest-id", graph, assignment, trace)
    assert trace.radii() == predicted_largest_id_radii(graph, assignment)


@given(ring_with_ids)
@settings(max_examples=40, deadline=None)
def test_largest_id_average_never_exceeds_the_classic_measure(ids):
    graph = cycle_graph(len(ids))
    assignment = IdentifierAssignment(ids)
    trace = run_ball_algorithm(graph, assignment, LargestIdAlgorithm())
    assert trace.average_radius <= trace.max_radius
    assert trace.max_radius == len(ids) // 2  # the maximum always sees everything


@given(ring_with_ids)
@settings(max_examples=30, deadline=None)
def test_cole_vishkin_colours_properly_for_every_assignment(ids):
    n = len(ids)
    graph = cycle_graph(n)
    assignment = IdentifierAssignment(ids)
    trace = run_round_algorithm(graph, assignment, ColeVishkinRing(n))
    assert certify("3-coloring", graph, assignment, trace)
    assert set(trace.radii().values()) == {cv_rounds_needed(n)}


@given(ring_with_ids)
@settings(max_examples=30, deadline=None)
def test_greedy_coloring_and_mis_are_valid_for_every_assignment(ids):
    n = len(ids)
    graph = cycle_graph(n)
    assignment = IdentifierAssignment(ids)
    coloring = run_ball_algorithm(graph, assignment, GreedyColoringByID())
    mis = run_ball_algorithm(graph, assignment, GreedyMISByID())
    assert certify("coloring", graph, assignment, coloring)
    assert certify("mis", graph, assignment, mis)
    # Both algorithms resolve the same dependency cone, hence equal radii.
    assert coloring.radii() == mis.radii()


@given(
    st.integers(min_value=0, max_value=2**20),
    st.integers(min_value=0, max_value=2**20),
    st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=200, deadline=None)
def test_cv_step_preserves_properness_along_any_chain(x, y, z):
    if x == y or y == z:
        return
    assert cv_step(x, y) != cv_step(y, z)
