"""Property-based tests for the application layer (scheduling, repair)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.parallel_sim import list_schedule, naive_makespan

durations_strategy = st.lists(
    st.integers(min_value=1, max_value=50), min_size=1, max_size=40
)


@given(durations_strategy, st.integers(min_value=1, max_value=10))
@settings(max_examples=150, deadline=None)
def test_list_schedule_respects_the_classical_bounds(durations, processors):
    result = list_schedule(durations, processors)
    total = sum(durations)
    longest = max(durations)
    # Lower bounds: no schedule can beat the critical path or perfect balance.
    assert result.makespan >= longest
    assert result.makespan >= total / processors - 1e-9
    # Upper bound: Graham's list-scheduling guarantee.
    assert result.makespan <= total / processors + longest + 1e-9
    # Utilisation is a fraction of the processor-time rectangle.
    assert 0 < result.utilisation <= 1 + 1e-9


@given(durations_strategy, st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_lpt_stays_within_grahams_factor_of_any_list_schedule(durations, processors):
    # LPT does *not* dominate every submission order pointwise (e.g.
    # [1, 5, 9, 9, 8, 6, 10, 8] on 2 processors: LPT 29 vs 28), but Graham's
    # bound guarantees LPT <= (4/3 - 1/(3p)) * OPT, and any list schedule is
    # itself >= OPT.
    arbitrary = list_schedule(durations, processors).makespan
    lpt = list_schedule(durations, processors, longest_first=True).makespan
    assert lpt <= (4 / 3 - 1 / (3 * processors)) * arbitrary + 1e-9


@given(durations_strategy, st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_naive_lock_step_simulation_wastes_at_least_the_greedy_slack(durations, processors):
    # The lock-step simulator pays ceil(n/p) full worst-case rounds, which is
    # never better than the greedy makespan minus one critical job: the last
    # greedy job starts while every processor is busy, so the greedy makespan
    # is at most (total - d_last)/p + d_last <= ceil(n/p) * max + d_last.
    greedy = list_schedule(durations, processors).makespan
    assert naive_makespan(durations, processors) >= greedy - max(durations) - 1e-9


@given(durations_strategy, st.integers(min_value=1, max_value=10))
@settings(max_examples=100, deadline=None)
def test_every_job_finishes_no_earlier_than_its_own_duration(durations, processors):
    result = list_schedule(durations, processors)
    for duration, finish in zip(durations, result.finish_times):
        assert finish >= duration - 1e-9
