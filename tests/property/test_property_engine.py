"""Engine-vs-legacy equivalence on randomised instances.

The acceptance bar for the engine subsystem: on random trees, cycles, grids
and G(n, p) graphs under random identifier assignments, the
:class:`~repro.engine.frontier.FrontierRunner` must produce traces
*identical* to the legacy from-scratch runner for every registered ball
algorithm — with and without a decision cache, and across the cache's
id-relabeling modes.
"""

import pytest

from repro.algorithms.registry import algorithm_registry
from repro.core.algorithm import BallAlgorithm
from repro.core.runner import reference_run_ball_algorithm
from repro.engine.batch import run_simulation_batch
from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.random_graphs import gnp_random_graph, random_tree

#: (label, graph) — every family from the satellite checklist.
GRAPH_FAMILIES = [
    ("cycle-9", cycle_graph(9)),
    ("cycle-12", cycle_graph(12)),
    ("grid-3x4", grid_graph(3, 4)),
    ("random-tree-11", random_tree(11, seed=7)),
    ("gnp-12", gnp_random_graph(12, 0.4, seed=11)),
]

ASSIGNMENT_SEEDS = (0, 1, 2)


def _ball_algorithms(n: int):
    """Every registered algorithm usable in the ball view, instantiated for n."""
    algorithms = []
    for name, factory in sorted(algorithm_registry().items()):
        algorithm = factory(n)
        if isinstance(algorithm, BallAlgorithm):
            algorithms.append((name, algorithm))
    return algorithms


def _supported(name: str, algorithm: BallAlgorithm, graph) -> bool:
    if not algorithm.supports_graph(graph):
        return False
    # The compiled Cole–Vishkin needs the consistently oriented ring that
    # only cycle_graph provides (its initialize rejects other degrees).
    if name == "cole-vishkin-ball":
        from repro.algorithms.cole_vishkin import is_consistently_oriented_ring

        return is_consistently_oriented_ring(graph)
    return True


def _assert_traces_equal(reference, candidate, context):
    assert candidate.radii() == reference.radii(), context
    assert candidate.outputs_by_position() == reference.outputs_by_position(), context


@pytest.mark.parametrize(
    "label,graph", GRAPH_FAMILIES, ids=[label for label, _ in GRAPH_FAMILIES]
)
def test_frontier_runner_matches_legacy_for_every_registered_algorithm(label, graph):
    for name, algorithm in _ball_algorithms(graph.n):
        if not _supported(name, algorithm, graph):
            continue
        plain = FrontierRunner(graph, algorithm)
        cached = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        exact = FrontierRunner(
            graph, algorithm, cache=DecisionCache(algorithm, relabel_ids=False)
        )
        for seed in ASSIGNMENT_SEEDS:
            ids = random_assignment(graph.n, seed=seed)
            reference = reference_run_ball_algorithm(graph, ids, algorithm)
            context = f"{label}/{name}/seed={seed}"
            _assert_traces_equal(reference, plain.run(ids), context + "/no-cache")
            _assert_traces_equal(reference, cached.run(ids), context + "/cache")
            _assert_traces_equal(reference, exact.run(ids), context + "/exact-cache")


def test_cached_session_is_consistent_across_repeated_assignments():
    # Re-running earlier assignments against a warm cache must reproduce the
    # cold traces bit for bit (memoisation must not leak between patterns).
    graph = cycle_graph(16)
    for name, algorithm in _ball_algorithms(graph.n):
        if not _supported(name, algorithm, graph):
            continue
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        assignments = [random_assignment(16, seed=seed) for seed in range(6)]
        cold = [runner.run(ids) for ids in assignments]
        warm = [runner.run(ids) for ids in assignments]
        for ids, before, after in zip(assignments, cold, warm):
            _assert_traces_equal(before, after, f"{name}/{ids.identifiers()}")


def test_batch_executor_matches_serial_runs():
    graph = random_tree(12, seed=3)
    from repro.algorithms.largest_id import LargestIdAlgorithm

    algorithm = LargestIdAlgorithm()
    assignments = [random_assignment(12, seed=seed) for seed in range(8)]
    serial = [reference_run_ball_algorithm(graph, ids, algorithm) for ids in assignments]
    for workers in (1, 3):
        batched = run_simulation_batch(graph, assignments, algorithm, workers=workers)
        assert len(batched) == len(serial)
        for reference, candidate in zip(serial, batched):
            _assert_traces_equal(reference, candidate, f"workers={workers}")


def test_node_radius_matches_full_run_on_random_instances():
    for label, graph in GRAPH_FAMILIES:
        from repro.algorithms.largest_id import LargestIdAlgorithm

        algorithm = LargestIdAlgorithm()
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        ids = random_assignment(graph.n, seed=5)
        trace = runner.run(ids)
        for position in graph.positions():
            assert runner.node_radius(ids, position) == trace.radii()[position], label
