"""Property-based tests for the theory toolkit."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.oeis import A000788, A000788_closed_form, popcount
from repro.theory.recurrence import (
    segment_radii,
    segment_radius_sum,
    worst_case_segment_arrangement,
    worst_case_segment_sum,
)
from repro.utils.math_functions import log_star

segment_orders = st.integers(min_value=1, max_value=10).flatmap(
    lambda p: st.permutations(list(range(p)))
)


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=200, deadline=None)
def test_closed_form_digit_count_matches_the_naive_sum(n):
    assert A000788_closed_form(n) == A000788(n)


@given(st.integers(min_value=0, max_value=4000))
@settings(max_examples=100, deadline=None)
def test_recurrence_coincides_with_A000788(p):
    assert worst_case_segment_sum(p) == A000788_closed_form(p)


@given(st.integers(min_value=1, max_value=3000))
@settings(max_examples=100, deadline=None)
def test_recurrence_increments_are_the_binary_digit_counts(p):
    # a(p) - a(p-1) == popcount(p): the recurrence adds exactly the number of
    # ones of p at each step, which is what ties it to A000788.
    assert worst_case_segment_sum(p) - worst_case_segment_sum(p - 1) == popcount(p)


@given(segment_orders)
@settings(max_examples=100, deadline=None)
def test_no_identifier_order_beats_the_recurrence(order):
    assert segment_radius_sum(order) <= worst_case_segment_sum(len(order))


@given(segment_orders)
@settings(max_examples=100, deadline=None)
def test_segment_radii_are_positive_and_bounded_by_geometry(order):
    p = len(order)
    for index, radius in enumerate(segment_radii(order)):
        assert 1 <= radius <= min(index + 1, p - index)


@given(st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_worst_case_arrangement_is_always_optimal(p):
    arrangement = worst_case_segment_arrangement(range(p))
    assert segment_radius_sum(arrangement) == worst_case_segment_sum(p)


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
@settings(max_examples=100, deadline=None)
def test_log_star_is_monotone_and_tiny(a, b):
    low, high = sorted((a, b))
    assert log_star(low) <= log_star(high)
    assert log_star(high) <= 5
