"""Property-based tests for the model layer (graphs, identifiers, balls)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.ball import extract_ball
from repro.model.identifiers import IdentifierAssignment
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import random_tree


permutations = st.integers(min_value=3, max_value=24).flatmap(
    lambda n: st.permutations(list(range(n)))
)


@given(permutations)
@settings(max_examples=60, deadline=None)
def test_identifier_assignment_round_trips_positions(ids):
    assignment = IdentifierAssignment(ids)
    for position in range(len(ids)):
        assert assignment.position_of(assignment[position]) == position


@given(permutations, st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_rotation_preserves_the_identifier_multiset(ids, shift):
    assignment = IdentifierAssignment(ids)
    rotated = assignment.rotated(shift)
    assert sorted(rotated.identifiers()) == sorted(assignment.identifiers())
    assert rotated.max_identifier() == assignment.max_identifier()


@given(st.integers(min_value=3, max_value=30), st.integers(min_value=0, max_value=40))
@settings(max_examples=80, deadline=None)
def test_cycle_distances_respect_ring_geometry(n, raw_pair):
    graph = cycle_graph(n)
    u = raw_pair % n
    v = (raw_pair * 7 + 1) % n
    expected = min((u - v) % n, (v - u) % n)
    assert graph.distance(u, v) == expected


@given(st.integers(min_value=3, max_value=20), st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_ball_sizes_on_cycles_follow_the_closed_form(n, radius):
    graph = cycle_graph(n)
    ball = graph.ball_positions(0, radius)
    assert len(ball) == min(2 * radius + 1, n)


@given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=6))
@settings(max_examples=50, deadline=None)
def test_ball_views_are_internally_consistent_on_paths(n, radius):
    graph = path_graph(n)
    ids = IdentifierAssignment(range(n))
    center = n // 2
    ball = extract_ball(graph, ids, center, radius)
    # Every ball member's distance is at most the radius and matches BFS.
    for identifier, distance in ball.distance_by_id.items():
        assert distance <= radius
        assert graph.distance(center, ids.position_of(identifier)) == distance
    # The inside-degree never exceeds the full degree.
    for identifier in ball.ids():
        assert ball.degree_inside(identifier) <= ball.degree(identifier)


@given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_covers_whole_graph_exactly_when_radius_reaches_eccentricity(n, radius, seed):
    graph = random_tree(n, seed=seed)
    ids = IdentifierAssignment(range(graph.n))
    center = seed % graph.n
    ball = extract_ball(graph, ids, center, radius)
    assert ball.covers_whole_graph() == (radius >= graph.eccentricity(center))
