"""Equivalence properties of the second-generation search layer.

Two guarantees are exercised here, as demanded by the search subsystem's
acceptance criteria:

* **pruned exhaustive == legacy exhaustive** — for every registered
  algorithm, on cycles, paths and random trees with ``n <= 7``, the
  symmetry-pruned canonical enumeration and the branch-and-bound search
  report exactly the optimum of the legacy full ``n!`` enumeration, and
  their witnesses reproduce that value on re-evaluation;
* **SwapEvaluator == full re-simulation** — under random swap sequences the
  incrementally maintained objective always equals the objective of a
  fresh, from-scratch run of the current assignment.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import algorithm_registry
from repro.core.adversary import ExhaustiveAdversary, trace_objective
from repro.core.algorithm import BallAlgorithm
from repro.engine.campaign import make_ball_algorithm
from repro.engine.frontier import FrontierRunner
from repro.model.identifiers import random_assignment
from repro.search.adversaries import (
    BranchAndBoundAdversary,
    PrunedExhaustiveAdversary,
)
from repro.search.incremental import SwapEvaluator
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import random_tree

#: (label, builder) for the graph families of the equivalence suite.
FAMILIES = (
    ("cycle", lambda n: cycle_graph(n)),
    ("path", lambda n: path_graph(n)),
    ("tree", lambda n: random_tree(n, seed=1234 + n)),
)

#: Sizes: every registered algorithm runs at n <= 6; the cheap ring pair
#: additionally runs the full n = 7 comparison (5040 legacy evaluations).
SMALL_SIZES = (5, 6)


def _supported_instances():
    for name in sorted(algorithm_registry()):
        for family, build in FAMILIES:
            for n in SMALL_SIZES:
                graph = build(n)
                algorithm = make_ball_algorithm(name, graph.n)
                assert isinstance(algorithm, BallAlgorithm)
                if not algorithm.supports_graph(graph):
                    continue
                yield pytest.param(
                    name, family, n, id=f"{name}-{family}-{n}"
                )


@pytest.mark.parametrize("name,family,n", list(_supported_instances()))
@pytest.mark.parametrize("objective", ["average", "max"])
def test_pruned_exhaustive_matches_legacy_enumeration(name, family, n, objective):
    build = dict(FAMILIES)[family]
    graph = build(n)
    algorithm = make_ball_algorithm(name, graph.n)
    legacy = ExhaustiveAdversary().maximise(graph, algorithm, objective)
    pruned = PrunedExhaustiveAdversary().maximise(graph, algorithm, objective)
    bounded = BranchAndBoundAdversary().maximise(graph, algorithm, objective)
    assert pruned.exact and bounded.exact
    assert pruned.value == legacy.value
    assert bounded.value == legacy.value
    # The witnesses must reproduce the optimum on independent re-evaluation.
    runner = FrontierRunner(graph, algorithm)
    for result in (pruned, bounded):
        replay = trace_objective(runner.run(result.assignment), objective)
        assert replay == result.value
    # Canonical enumeration covers one representative per orbit: never more
    # than the full space, never fewer than space / group order.
    certificate = pruned.certificate
    legacy_evaluations = legacy.evaluations
    assert certificate.canonical_leaves <= legacy_evaluations
    assert (
        certificate.canonical_leaves * certificate.group_order >= legacy_evaluations
    )


def test_full_n7_cycle_comparison_for_the_paper_algorithm(largest_id_algorithm):
    graph = cycle_graph(7)
    legacy = ExhaustiveAdversary().maximise(graph, largest_id_algorithm, "average")
    pruned = PrunedExhaustiveAdversary().maximise(graph, largest_id_algorithm, "average")
    assert legacy.evaluations == 5040
    assert pruned.value == legacy.value
    assert pruned.certificate.canonical_leaves == 5040 // 14  # dihedral order 14


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    family=st.sampled_from(["cycle", "path", "tree", "grid"]),
    objective=st.sampled_from(["average", "max", "sum"]),
)
def test_swap_evaluator_matches_full_resimulation(seed, family, objective):
    rng = random.Random(seed)
    if family == "cycle":
        graph = cycle_graph(rng.randint(4, 14))
    elif family == "path":
        graph = path_graph(rng.randint(2, 14))
    elif family == "tree":
        graph = random_tree(rng.randint(2, 12), seed=seed)
    else:
        graph = grid_graph(rng.randint(2, 4), rng.randint(2, 4))
    name = rng.choice(["largest-id", "greedy-coloring", "greedy-mis"])
    algorithm = make_ball_algorithm(name, graph.n)
    evaluator = SwapEvaluator(
        graph, algorithm, objective, ids=random_assignment(graph.n, seed=seed)
    )
    reference = FrontierRunner(graph, algorithm)
    for _ in range(12):
        if graph.n < 2:
            break
        a, b = rng.sample(range(graph.n), 2)
        if rng.random() < 0.5:
            delta = evaluator.peek(a, b)
            expected = trace_objective(
                reference.run(evaluator.assignment().with_swap(a, b)), objective
            )
            assert delta.value == pytest.approx(expected)
        else:
            evaluator.apply_swap(a, b)
            expected = trace_objective(
                reference.run(evaluator.assignment()), objective
            )
            assert evaluator.value == pytest.approx(expected)
