"""Equivalence properties of the distribution layer.

The acceptance criteria of the distribution subsystem:

* **exact == brute force** — for every registered algorithm, on cycles,
  paths and random trees with ``n <= 6``, the orbit-weighted canonical
  enumeration reproduces the all-``n!`` brute-force distribution exactly:
  same joint, same per-node marginals, total weight exactly ``n!`` (which
  subsumes the mean/max equality of both measures);
* **sampled converges to exact** — under a fixed seed, the streaming
  Monte-Carlo estimates of both measure means land within their own
  normal confidence intervals of the exact values.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.registry import algorithm_registry
from repro.core.algorithm import BallAlgorithm
from repro.dist.exact import brute_force_round_distribution, exact_round_distribution
from repro.dist.sampling import sample_round_distribution
from repro.engine.campaign import make_ball_algorithm
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import random_tree

#: (label, builder) for the graph families of the equivalence suite —
#: the same families as the search-layer property tests.
FAMILIES = (
    ("cycle", lambda n: cycle_graph(n)),
    ("path", lambda n: path_graph(n)),
    ("tree", lambda n: random_tree(n, seed=1234 + n)),
)

SMALL_SIZES = (5, 6)


def _supported_instances():
    for name in sorted(algorithm_registry()):
        for family, build in FAMILIES:
            for n in SMALL_SIZES:
                graph = build(n)
                algorithm = make_ball_algorithm(name, graph.n)
                assert isinstance(algorithm, BallAlgorithm)
                if not algorithm.supports_graph(graph):
                    continue
                yield pytest.param(name, family, n, id=f"{name}-{family}-{n}")


@pytest.mark.parametrize("name,family,n", list(_supported_instances()))
def test_exact_distribution_matches_brute_force(name, family, n):
    build = dict(FAMILIES)[family]
    graph = build(n)
    algorithm = make_ball_algorithm(name, graph.n)
    exact = exact_round_distribution(graph, algorithm)
    brute = brute_force_round_distribution(graph, algorithm)
    # Full distribution equality: joint and per-node marginals, not just moments.
    assert exact.distribution == brute
    assert exact.distribution.total_weight == math.factorial(n)
    # Means and maxima of both measures follow from the equality, but assert
    # them explicitly — they are the quantities the acceptance criteria name.
    assert exact.distribution.mean_average() == pytest.approx(brute.mean_average())
    assert exact.distribution.mean_max() == pytest.approx(brute.mean_max())
    assert (
        exact.distribution.max_distribution().max()
        == brute.max_distribution().max()
    )
    certificate = exact.certificate
    assert certificate.canonical_leaves * certificate.class_weight == math.factorial(n)


@pytest.mark.parametrize("family", [family for family, _ in FAMILIES])
def test_sampled_moments_converge_to_exact_under_fixed_seed(
    family, largest_id_algorithm
):
    build = dict(FAMILIES)[family]
    graph = build(6)
    exact = exact_round_distribution(graph, largest_id_algorithm).distribution
    sampled = sample_round_distribution(
        graph, largest_id_algorithm, samples=600, seed=20260729
    )
    for estimate, true_mean in (
        (sampled.average, exact.mean_average()),
        (sampled.maximum, exact.mean_max()),
    ):
        # 4 standard errors: a deterministic test must not sit at the 95%
        # boundary; a constant measure (std_error == 0) must match exactly.
        tolerance = max(4.0 * estimate.std_error, 1e-12)
        assert abs(estimate.mean - true_mean) <= tolerance
