"""Sharded scale execution is bit-identical at every decomposition.

The scale path's determinism contract: the task grid is fixed by
``row_block`` and ``center_chunk`` alone, rows derive from
``derive_task_seed`` per row index, and the folded partials are associative
— so ``workers`` and the shard shape can never change a single bit of the
measures.  This wall pins that across worker counts {1, 2, 4}, row-block
and centre-chunk sizes, and every streamed topology family, against the
serial single-shard reference.
"""

import pytest

from repro.engine.campaign import make_ball_algorithm
from repro.kernel import ShardedKernelExecutor, compile_instance
from repro.kernel.shard import scale_row_ids
from repro.topology.stream import STREAM_TOPOLOGIES, build_csr

SAMPLES = 3
N = 26
SEED = 13


def _executor(csr, **kwargs):
    return ShardedKernelExecutor(
        csr, make_ball_algorithm("largest-id", csr.n), **kwargs
    )


@pytest.fixture(scope="module", params=STREAM_TOPOLOGIES)
def csr(request):
    return build_csr(request.param, N, seed=SEED)


@pytest.fixture(scope="module")
def reference(csr):
    """The single-task decomposition: one row block, one centre chunk."""
    return _executor(csr, workers=1, row_block=SAMPLES, center_chunk=N).sample_measures(
        SAMPLES, seed=SEED
    )


class TestDecompositionInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_never_changes_the_measures(self, csr, reference, workers):
        stats = _executor(csr, workers=workers).sample_measures(SAMPLES, seed=SEED)
        assert stats == reference

    @pytest.mark.parametrize("row_block", [1, 2, 5])
    @pytest.mark.parametrize("center_chunk", [1, 7, 26, 1000])
    def test_shard_shape_never_changes_the_measures(
        self, csr, reference, row_block, center_chunk
    ):
        stats = _executor(
            csr, row_block=row_block, center_chunk=center_chunk
        ).sample_measures(SAMPLES, seed=SEED)
        assert stats == reference

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_and_odd_chunks_compose(self, csr, reference, workers):
        stats = _executor(
            csr, workers=workers, row_block=2, center_chunk=9
        ).sample_measures(SAMPLES, seed=SEED)
        assert stats == reference


class TestAgainstTheCompiledKernel:
    def test_sampled_rows_match_the_plan_table_kernel(self, csr):
        """Shard measures equal folding the eager kernel's radii directly."""
        instance = compile_instance(
            csr.to_graph(), make_ball_algorithm("largest-id", csr.n)
        )
        executor = _executor(csr, row_block=2, center_chunk=8)
        stats = executor.sample_measures(SAMPLES, seed=SEED)
        for row_stats in stats:
            ids = scale_row_ids(csr.n, SEED, row_stats.row)
            radii = instance.batch_radii([tuple(ids)])[0]
            assert row_stats.sum_radius == sum(radii)
            assert row_stats.max_radius == max(radii)
