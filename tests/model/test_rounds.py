"""Tests for the synchronous round-based simulator."""

import pytest

from repro.errors import AlgorithmError, TopologyError
from repro.model.identifiers import IdentifierAssignment, identity_assignment
from repro.model.rounds import RoundAlgorithm, SynchronousExecution, run_round_algorithm
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


class DecideImmediately(RoundAlgorithm):
    """Every node outputs its identifier before any communication."""

    name = "decide-immediately"

    def initialize(self, identifier, degree):
        return identifier

    def decide_initially(self, memory):
        return memory

    def send(self, memory, round_number):
        return {}

    def receive(self, memory, inbox, round_number):
        return memory, memory


class WaitKRounds(RoundAlgorithm):
    """Every node outputs at exactly round ``k`` (tests radius accounting)."""

    name = "wait-k"

    def __init__(self, k):
        self.k = k

    def initialize(self, identifier, degree):
        return identifier

    def send(self, memory, round_number):
        return {}

    def receive(self, memory, inbox, round_number):
        return memory, memory if round_number >= self.k else None


class NeighborSum(RoundAlgorithm):
    """After one exchange, outputs the sum of the neighbours' identifiers."""

    name = "neighbor-sum"

    def initialize(self, identifier, degree):
        return {"id": identifier, "degree": degree}

    def send(self, memory, round_number):
        return {port: memory["id"] for port in range(memory["degree"])}

    def receive(self, memory, inbox, round_number):
        return memory, sum(inbox.values())


class NeverDecides(RoundAlgorithm):
    """Pathological algorithm that never outputs (tests the round cap)."""

    name = "never-decides"

    def initialize(self, identifier, degree):
        return None

    def send(self, memory, round_number):
        return {}

    def receive(self, memory, inbox, round_number):
        return memory, None


class BadPortSender(RoundAlgorithm):
    """Sends through a port that does not exist."""

    name = "bad-port"

    def initialize(self, identifier, degree):
        return degree

    def send(self, memory, round_number):
        return {memory + 5: "oops"}

    def receive(self, memory, inbox, round_number):
        return memory, True


class TestExecution:
    def test_radius_zero_when_deciding_initially(self, ring12, ring12_random_ids):
        trace = run_round_algorithm(ring12, ring12_random_ids, DecideImmediately())
        assert trace.max_radius == 0
        assert trace.outputs_by_position() == {
            p: ring12_random_ids[p] for p in ring12.positions()
        }

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_output_round_is_recorded_as_radius(self, ring12, ring12_random_ids, k):
        trace = run_round_algorithm(ring12, ring12_random_ids, WaitKRounds(k))
        assert set(trace.radii().values()) == {k}

    def test_messages_are_routed_to_the_correct_neighbours(self):
        graph = path_graph(4)
        ids = IdentifierAssignment([10, 20, 30, 40])
        trace = run_round_algorithm(graph, ids, NeighborSum())
        outputs = trace.outputs_by_position()
        assert outputs == {0: 20, 1: 40, 2: 60, 3: 30}

    def test_neighbor_sum_on_cycle_uses_both_ports(self):
        graph = cycle_graph(5)
        ids = identity_assignment(5)
        outputs = run_round_algorithm(graph, ids, NeighborSum()).outputs_by_position()
        assert outputs[0] == 1 + 4
        assert outputs[3] == 2 + 4

    def test_non_terminating_algorithm_hits_the_cap(self, ring12, ring12_random_ids):
        with pytest.raises(AlgorithmError, match="did not terminate"):
            run_round_algorithm(ring12, ring12_random_ids, NeverDecides(), max_rounds=5)

    def test_sending_through_invalid_port_is_reported(self, ring12, ring12_random_ids):
        with pytest.raises(AlgorithmError, match="invalid port"):
            run_round_algorithm(ring12, ring12_random_ids, BadPortSender())

    def test_mismatched_identifier_count_rejected(self, ring12):
        with pytest.raises(TopologyError):
            SynchronousExecution(ring12, identity_assignment(5), DecideImmediately())

    def test_default_round_cap_scales_with_graph_size(self, ring12, ring12_random_ids):
        execution = SynchronousExecution(ring12, ring12_random_ids, DecideImmediately())
        assert execution.max_rounds == 2 * ring12.n + 2

    def test_committed_nodes_keep_relaying(self):
        # NeighborSum nodes all decide at round 1; running with a later
        # decider mixed in would need their messages at round 2.  Here we
        # check the state objects survive past their commitment round.
        graph = cycle_graph(4)
        ids = identity_assignment(4)
        execution = SynchronousExecution(graph, ids, WaitKRounds(3))
        trace = execution.run()
        assert trace.max_radius == 3
        assert all(state.has_output for state in execution.states.values())
