"""Tests for per-node state bookkeeping."""

import pytest

from repro.model.node import NodeState


class TestNodeState:
    def test_starts_undecided(self):
        state = NodeState(identifier=7, degree=2)
        assert not state.has_output
        assert state.output is None
        assert state.output_round is None

    def test_commit_records_output_and_round(self):
        state = NodeState(identifier=7, degree=2)
        state.commit("blue", round_number=3)
        assert state.has_output
        assert state.output == "blue"
        assert state.output_round == 3

    def test_commit_twice_is_an_error(self):
        state = NodeState(identifier=7, degree=2)
        state.commit(True, round_number=1)
        with pytest.raises(ValueError, match="twice"):
            state.commit(False, round_number=2)

    def test_committing_falsy_output_counts_as_decided(self):
        state = NodeState(identifier=1, degree=2)
        state.commit(False, round_number=0)
        assert state.has_output
        assert state.output is False

    def test_memory_is_free_form(self):
        state = NodeState(identifier=1, degree=3, memory={"colors": [1, 2]})
        state.memory["colors"].append(3)
        assert state.memory == {"colors": [1, 2, 3]}
