"""Tests for the message value object."""

from repro.model.messages import Message


class TestMessage:
    def test_fields_are_preserved(self):
        message = Message(payload={"color": 3}, sender_port=0, receiver_port=1)
        assert message.payload == {"color": 3}
        assert message.sender_port == 0
        assert message.receiver_port == 1

    def test_equality_is_structural(self):
        assert Message("x", 0, 1) == Message("x", 0, 1)
        assert Message("x", 0, 1) != Message("x", 1, 0)

    def test_repr_shows_payload_and_ports(self):
        text = repr(Message("hello", 0, 1))
        assert "hello" in text and "sender_port=0" in text
