"""Tests for ball views."""

import pytest

from repro.errors import TopologyError
from repro.model.ball import extract_ball
from repro.model.identifiers import IdentifierAssignment, identity_assignment, random_assignment
from repro.topology.complete import complete_graph, star_graph
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


class TestExtraction:
    def test_radius_zero_contains_only_the_center(self):
        graph = cycle_graph(8)
        ids = identity_assignment(8)
        ball = extract_ball(graph, ids, 3, 0)
        assert ball.center_id == 3
        assert ball.ids() == frozenset({3})
        assert ball.size == 1
        assert ball.edges == frozenset()

    def test_radius_one_on_cycle_is_a_three_node_path(self):
        graph = cycle_graph(8)
        ids = identity_assignment(8)
        ball = extract_ball(graph, ids, 3, 1)
        assert ball.ids() == frozenset({2, 3, 4})
        assert ball.distance(2) == 1 and ball.distance(3) == 0
        assert ball.as_path_sequence() in ((2, 3, 4), (4, 3, 2))

    def test_distances_match_graph_distances(self):
        graph = cycle_graph(11)
        ids = random_assignment(11, seed=4)
        ball = extract_ball(graph, ids, 5, 3)
        for position in graph.positions():
            if graph.distance(5, position) <= 3:
                assert ball.distance(ids[position]) == graph.distance(5, position)

    def test_degrees_are_full_graph_degrees(self):
        graph = star_graph(5)
        ids = identity_assignment(6)
        ball = extract_ball(graph, ids, 1, 1)  # a leaf sees itself and the centre
        assert ball.degree(ids[0]) == 5
        assert ball.degree(ids[1]) == 1

    def test_ports_are_recorded_both_ways(self):
        graph = cycle_graph(6)
        ids = identity_assignment(6)
        ball = extract_ball(graph, ids, 0, 1)
        assert ball.port(0, 1) == graph.port_to(0, 1)
        assert ball.port(1, 0) == graph.port_to(1, 0)
        assert ball.neighbor_by_port(0, graph.port_to(0, 1)) == 1

    def test_mismatched_assignment_size_rejected(self):
        with pytest.raises(TopologyError):
            extract_ball(cycle_graph(5), identity_assignment(4), 0, 1)

    def test_position_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            extract_ball(cycle_graph(5), identity_assignment(5), 9, 1)


class TestQueries:
    def test_contains_id_larger_than(self):
        graph = cycle_graph(7)
        ids = IdentifierAssignment([3, 9, 1, 0, 5, 2, 8])
        ball = extract_ball(graph, ids, 0, 1)  # sees ids {8, 3, 9}
        assert ball.contains_id_larger_than(3)
        assert ball.contains_id_larger_than(8)
        assert not ball.contains_id_larger_than(9)
        assert ball.max_id() == 9

    def test_degree_inside_versus_full_degree(self):
        graph = cycle_graph(9)
        ids = identity_assignment(9)
        ball = extract_ball(graph, ids, 0, 2)
        assert ball.degree_inside(0) == 2  # centre has both neighbours visible
        assert ball.degree_inside(2) == 1  # frontier node has one edge leaving the ball
        assert ball.degree(2) == 2

    def test_covers_whole_graph_on_cycle_thresholds(self):
        graph = cycle_graph(9)
        ids = identity_assignment(9)
        assert not extract_ball(graph, ids, 0, 3).covers_whole_graph()
        assert extract_ball(graph, ids, 0, 4).covers_whole_graph()

    def test_covers_whole_graph_on_complete_graph_at_radius_one(self):
        graph = complete_graph(5)
        ids = identity_assignment(5)
        assert not extract_ball(graph, ids, 0, 0).covers_whole_graph()
        assert extract_ball(graph, ids, 0, 1).covers_whole_graph()

    def test_neighbors_in_ball(self):
        graph = path_graph(5)
        ids = identity_assignment(5)
        ball = extract_ball(graph, ids, 2, 1)
        assert ball.neighbors_in_ball(2) == frozenset({1, 3})
        assert ball.neighbors_in_ball(1) == frozenset({2})


class TestShapeHelpers:
    def test_path_sequence_none_when_ball_wraps_cycle(self):
        graph = cycle_graph(5)
        ids = identity_assignment(5)
        ball = extract_ball(graph, ids, 0, 2)  # whole cycle
        assert ball.as_path_sequence() is None
        assert ball.as_cycle_sequence() is not None

    def test_cycle_sequence_lists_every_node_once(self):
        graph = cycle_graph(6)
        ids = identity_assignment(6)
        sequence = extract_ball(graph, ids, 2, 3).as_cycle_sequence()
        assert sequence is not None
        assert sorted(sequence) == list(range(6))
        assert sequence[0] == 2  # starts at the centre

    def test_cycle_sequence_none_on_path_shaped_ball(self):
        graph = cycle_graph(10)
        ids = identity_assignment(10)
        assert extract_ball(graph, ids, 0, 2).as_cycle_sequence() is None

    def test_path_sequence_none_on_branching_ball(self):
        graph = star_graph(3)
        ids = identity_assignment(4)
        ball = extract_ball(graph, ids, 0, 1)
        assert ball.as_path_sequence() is None

    def test_single_node_ball_is_a_trivial_path(self):
        graph = cycle_graph(4)
        ids = identity_assignment(4)
        assert extract_ball(graph, ids, 1, 0).as_path_sequence() == (1,)


class TestCanonicalKey:
    def test_identical_views_share_a_key(self):
        graph = cycle_graph(8)
        ids = identity_assignment(8)
        assert (
            extract_ball(graph, ids, 2, 2).canonical_key()
            == extract_ball(graph, ids, 2, 2).canonical_key()
        )

    def test_key_distinguishes_different_centres(self):
        graph = cycle_graph(8)
        ids = identity_assignment(8)
        assert (
            extract_ball(graph, ids, 2, 1).canonical_key()
            != extract_ball(graph, ids, 3, 1).canonical_key()
        )

    def test_key_is_independent_of_global_positions(self):
        # The same local identifier pattern at two different places on the
        # ring yields the same canonical key once distances and identifiers match.
        graph = cycle_graph(8)
        ids_a = IdentifierAssignment([10, 1, 2, 3, 11, 12, 13, 14])
        ids_b = IdentifierAssignment([14, 10, 1, 2, 3, 11, 12, 13])
        key_a = extract_ball(graph, ids_a, 2, 1).canonical_key()
        key_b = extract_ball(graph, ids_b, 3, 1).canonical_key()
        assert key_a == key_b


class TestSignatureAndHashing:
    def test_relabeled_signature_unifies_order_isomorphic_balls(self):
        # Different identifier values, same relative order: one signature.
        graph = cycle_graph(8)
        ids_a = IdentifierAssignment([1, 5, 9, 0, 2, 3, 4, 6])
        ids_b = IdentifierAssignment([10, 50, 90, 0, 20, 30, 40, 60])
        sig_a = extract_ball(graph, ids_a, 1, 1).signature()
        sig_b = extract_ball(graph, ids_b, 1, 1).signature()
        assert sig_a == sig_b

    def test_relabeled_signature_separates_different_orders(self):
        graph = cycle_graph(8)
        ids_a = IdentifierAssignment([1, 5, 9, 0, 2, 3, 4, 6])  # centre is middle
        ids_b = IdentifierAssignment([5, 9, 1, 0, 2, 3, 4, 6])  # centre is largest
        sig_a = extract_ball(graph, ids_a, 1, 1).signature()
        sig_b = extract_ball(graph, ids_b, 1, 1).signature()
        assert sig_a != sig_b

    def test_exact_signature_equals_canonical_key(self):
        graph = cycle_graph(6)
        ids = identity_assignment(6)
        ball = extract_ball(graph, ids, 2, 2)
        assert ball.signature(relabel_ids=False) == ball.canonical_key()

    def test_signature_distinguishes_radii_of_saturated_balls(self):
        graph = cycle_graph(5)
        ids = identity_assignment(5)
        assert (
            extract_ball(graph, ids, 0, 2).signature()
            != extract_ball(graph, ids, 0, 3).signature()
        )

    def test_equal_balls_are_equal_and_hash_equal(self):
        graph = cycle_graph(8)
        ids = identity_assignment(8)
        ball_a = extract_ball(graph, ids, 2, 2)
        ball_b = extract_ball(graph, ids, 2, 2)
        assert ball_a == ball_b
        assert hash(ball_a) == hash(ball_b)

    def test_balls_deduplicate_in_sets(self):
        graph = cycle_graph(8)
        ids = identity_assignment(8)
        balls = {
            extract_ball(graph, ids, position, 1) for position in (1, 1, 2, 3)
        }
        assert len(balls) == 3

    def test_different_identifiers_compare_unequal(self):
        graph = cycle_graph(8)
        ball_a = extract_ball(graph, identity_assignment(8), 2, 1)
        ball_b = extract_ball(graph, IdentifierAssignment([7, 6, 5, 4, 3, 2, 1, 0]), 2, 1)
        assert ball_a != ball_b
        assert ball_a != "not a ball"
