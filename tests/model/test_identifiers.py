"""Tests for identifier assignments and their generators."""

import pytest

from repro.errors import IdentifierError
from repro.model.identifiers import (
    IdentifierAssignment,
    adversarial_block_assignment,
    bit_reversal_assignment,
    identity_assignment,
    random_assignment,
    reversed_assignment,
)


class TestIdentifierAssignment:
    def test_mapping_interface(self):
        ids = IdentifierAssignment([5, 2, 9])
        assert ids[0] == 5 and ids[2] == 9
        assert len(ids) == 3
        assert list(ids) == [0, 1, 2]

    def test_rejects_duplicates(self):
        with pytest.raises(IdentifierError, match="distinct"):
            IdentifierAssignment([1, 1, 2])

    @pytest.mark.parametrize("bad", [[-1, 0], [0.5, 1], [True, 2]])
    def test_rejects_invalid_identifier_values(self, bad):
        with pytest.raises(IdentifierError):
            IdentifierAssignment(bad)

    def test_position_of_and_max(self):
        ids = IdentifierAssignment([5, 2, 9])
        assert ids.position_of(9) == 2
        assert ids.max_identifier() == 9
        assert ids.argmax_position() == 2

    def test_position_of_unknown_identifier_raises(self):
        with pytest.raises(IdentifierError):
            IdentifierAssignment([0, 1]).position_of(7)

    def test_with_swap_exchanges_two_positions(self):
        ids = IdentifierAssignment([0, 1, 2]).with_swap(0, 2)
        assert ids.identifiers() == (2, 1, 0)

    def test_permuted_rearranges(self):
        ids = IdentifierAssignment([10, 20, 30]).permuted([2, 0, 1])
        assert ids.identifiers() == (30, 10, 20)

    def test_permuted_rejects_non_permutation(self):
        with pytest.raises(IdentifierError):
            IdentifierAssignment([1, 2, 3]).permuted([0, 0, 1])

    def test_rotated_wraps_around(self):
        ids = IdentifierAssignment([0, 1, 2, 3]).rotated(1)
        assert ids.identifiers() == (1, 2, 3, 0)
        assert IdentifierAssignment([0, 1, 2]).rotated(3).identifiers() == (0, 1, 2)

    def test_equality_and_hash(self):
        assert IdentifierAssignment([1, 2]) == IdentifierAssignment([1, 2])
        assert hash(IdentifierAssignment([1, 2])) == hash(IdentifierAssignment([1, 2]))
        assert IdentifierAssignment([1, 2]) != IdentifierAssignment([2, 1])


class TestGenerators:
    def test_identity_and_reversed(self):
        assert identity_assignment(4).identifiers() == (0, 1, 2, 3)
        assert reversed_assignment(4).identifiers() == (3, 2, 1, 0)

    def test_random_assignment_is_a_permutation(self):
        ids = random_assignment(50, seed=3)
        assert sorted(ids.identifiers()) == list(range(50))

    def test_random_assignment_deterministic_per_seed(self):
        assert random_assignment(20, seed=5) == random_assignment(20, seed=5)
        assert random_assignment(20, seed=5) != random_assignment(20, seed=6)

    @pytest.mark.parametrize("n", [1, 2, 7, 16, 33])
    def test_bit_reversal_is_a_permutation(self, n):
        assert sorted(bit_reversal_assignment(n).identifiers()) == list(range(n))

    def test_bit_reversal_known_small_case(self):
        # positions 0..3 have bit reversals 0,2,1,3 so identifiers follow that rank order
        assert bit_reversal_assignment(4).identifiers() == (0, 2, 1, 3)

    @pytest.mark.parametrize(("n", "block"), [(6, 1), (7, 2), (12, 3), (5, 10)])
    def test_adversarial_block_is_a_permutation(self, n, block):
        assert sorted(adversarial_block_assignment(n, block).identifiers()) == list(range(n))

    def test_adversarial_block_alternates_low_and_high(self):
        ids = adversarial_block_assignment(6, block=2).identifiers()
        assert ids == (0, 1, 5, 4, 2, 3)

    @pytest.mark.parametrize("builder", [identity_assignment, reversed_assignment, random_assignment])
    def test_generators_reject_non_positive_sizes(self, builder):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            builder(0)
