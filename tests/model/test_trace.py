"""Tests for execution traces and the two measures they expose."""

import pytest

from repro.errors import AlgorithmError
from repro.model.trace import ExecutionTrace, NodeRecord


def make_trace(radii, outputs=None):
    outputs = outputs if outputs is not None else {p: None for p in radii}
    return ExecutionTrace(
        {
            position: NodeRecord(
                position=position, identifier=position + 100, radius=radius, output=outputs[position]
            )
            for position, radius in radii.items()
        }
    )


class TestConstruction:
    def test_rejects_empty_trace(self):
        with pytest.raises(AlgorithmError):
            ExecutionTrace({})

    def test_rejects_gaps_in_positions(self):
        records = {
            0: NodeRecord(0, 100, 1, None),
            2: NodeRecord(2, 102, 1, None),
        }
        with pytest.raises(AlgorithmError, match="0..n-1"):
            ExecutionTrace(records)


class TestMeasures:
    def test_max_sum_and_average(self):
        trace = make_trace({0: 1, 1: 3, 2: 2})
        assert trace.max_radius == 3
        assert trace.sum_radius == 6
        assert trace.average_radius == pytest.approx(2.0)

    def test_single_node_trace(self):
        trace = make_trace({0: 0})
        assert trace.max_radius == 0
        assert trace.average_radius == 0.0

    def test_average_is_strictly_below_max_for_skewed_profiles(self):
        trace = make_trace({0: 10, 1: 1, 2: 1, 3: 1})
        assert trace.average_radius < trace.max_radius

    def test_radius_histogram(self):
        trace = make_trace({0: 1, 1: 1, 2: 2, 3: 0})
        assert trace.radius_histogram() == {0: 1, 1: 2, 2: 1}


class TestAccess:
    def test_radii_and_outputs_by_position(self):
        trace = make_trace({0: 1, 1: 2}, outputs={0: "a", 1: "b"})
        assert trace.radii() == {0: 1, 1: 2}
        assert trace.outputs_by_position() == {0: "a", 1: "b"}
        assert trace.outputs_by_identifier() == {100: "a", 101: "b"}

    def test_radius_of_identifier(self):
        trace = make_trace({0: 4, 1: 7})
        assert trace.radius_of_identifier(101) == 7
        with pytest.raises(AlgorithmError):
            trace.radius_of_identifier(999)

    def test_iteration_and_record_access(self):
        trace = make_trace({0: 1, 1: 2})
        assert [record.position for record in trace] == [0, 1]
        assert trace.record(1).radius == 2
        assert trace.n == 2

    def test_repr_mentions_both_measures(self):
        text = repr(make_trace({0: 1, 1: 3}))
        assert "max_radius=3" in text and "average_radius=2.0" in text
