"""Tests for the port-numbered graph structure."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.model.graph import Graph
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


def triangle() -> Graph:
    return Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)], name="triangle")


class TestConstruction:
    def test_from_edges_builds_symmetric_adjacency(self):
        graph = triangle()
        assert graph.n == 3
        assert graph.m == 3
        for u, v in graph.edges():
            assert graph.has_edge(u, v)
            assert graph.has_edge(v, u)

    def test_ports_follow_edge_insertion_order(self):
        graph = Graph.from_edges(3, [(0, 1), (0, 2)])
        assert graph.neighbors(0) == (1, 2)
        assert graph.port_to(0, 1) == 0
        assert graph.port_to(0, 2) == 1

    def test_rejects_self_loops(self):
        with pytest.raises(TopologyError, match="self-loop"):
            Graph.from_edges(2, [(0, 0)])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(TopologyError, match="duplicate"):
            Graph.from_edges(2, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(TopologyError, match="outside"):
            Graph.from_edges(2, [(0, 5)])

    def test_rejects_asymmetric_adjacency(self):
        with pytest.raises(TopologyError, match="asymmetric"):
            Graph([(1,), ()])

    def test_rejects_repeated_neighbour_in_adjacency(self):
        with pytest.raises(TopologyError, match="twice"):
            Graph([(1, 1), (0, 0)])


class TestNetworkxConversion:
    def test_round_trip_preserves_edge_set(self):
        original = cycle_graph(8)
        converted = Graph.from_networkx(original.to_networkx())
        assert set(original.edges()) == set(converted.edges())

    def test_from_networkx_requires_contiguous_labels(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(TopologyError, match="0..n-1"):
            Graph.from_networkx(graph)


class TestQueries:
    def test_degree_and_max_degree(self):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert star.degree(0) == 3
        assert star.degree(1) == 1
        assert star.max_degree() == 3

    def test_port_to_unknown_neighbour_raises(self):
        graph = path_graph(3)
        with pytest.raises(TopologyError):
            graph.port_to(0, 2)

    def test_distances_from_on_path(self):
        graph = path_graph(5)
        assert graph.distances_from(0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distance_symmetry_on_cycle(self):
        graph = cycle_graph(9)
        for u in graph.positions():
            for v in graph.positions():
                assert graph.distance(u, v) == graph.distance(v, u)

    def test_distance_unreachable_raises(self):
        disconnected = Graph([(), ()])
        with pytest.raises(TopologyError, match="unreachable"):
            disconnected.distance(0, 1)

    def test_ball_positions_radius_zero_is_self(self):
        graph = cycle_graph(6)
        assert graph.ball_positions(2, 0) == {2: 0}

    def test_ball_positions_grow_with_radius(self):
        graph = cycle_graph(10)
        sizes = [len(graph.ball_positions(0, r)) for r in range(6)]
        assert sizes == [1, 3, 5, 7, 9, 10]

    def test_eccentricity_and_diameter_of_cycle(self):
        assert cycle_graph(10).diameter() == 5
        assert cycle_graph(11).diameter() == 5
        assert cycle_graph(10).eccentricity(3) == 5

    def test_diameter_of_path(self):
        assert path_graph(7).diameter() == 6

    def test_diameter_rejects_disconnected_graph(self):
        with pytest.raises(TopologyError):
            Graph([(), ()]).diameter()

    def test_is_connected(self):
        assert cycle_graph(5).is_connected()
        assert not Graph([(), ()]).is_connected()
        assert Graph([()]).is_connected()


class TestStructuralPredicates:
    def test_cycle_detection(self):
        assert cycle_graph(5).is_cycle()
        assert not path_graph(5).is_cycle()
        assert not triangle().is_path()

    def test_path_detection(self):
        assert path_graph(5).is_path()
        assert path_graph(1).is_path()
        assert not cycle_graph(5).is_path()

    def test_two_disjoint_triangles_are_not_a_cycle(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not graph.is_cycle()


class TestDunder:
    def test_equality_and_hash_depend_on_structure(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())
        assert triangle() != cycle_graph(4)

    def test_repr_mentions_name_and_size(self):
        text = repr(cycle_graph(6))
        assert "cycle-6" in text and "n=6" in text
