"""Tests for the Session execution layer and the repro.query front door."""

import math

import pytest

import repro
from repro.api.query import Query
from repro.api.results import strip_volatile
from repro.api.session import Session, default_session, query, reset_default_session
from repro.errors import ConfigurationError


class TestSimulate:
    def test_row_shape_and_measures(self):
        result = Session().simulate(topologies="cycle", sizes=8, seed=1)
        assert result.mode == "simulate"
        row = result.rows[0]
        assert row["graph_n"] == 8
        assert row["certified"] is True
        assert row["classic"] == 4  # floor(n/2) for largest-id on the cycle
        assert math.isclose(row["sum"], row["average"] * 8)
        assert result.measures["classic"] == 4
        assert result.exact is None
        assert result.timing["wall_time_s"] >= 0.0

    def test_grid_expansion_is_ordered(self):
        result = Session().simulate(topologies=("cycle", "path"), sizes=(6, 8))
        coordinates = [(row["topology"], row["n"]) for row in result.rows]
        assert coordinates == [("cycle", 6), ("cycle", 8), ("path", 6), ("path", 8)]

    def test_identifiers_are_recorded_and_reproducible(self):
        session = Session()
        first = session.simulate(topologies="cycle", sizes=8, seed=3)
        second = session.simulate(topologies="cycle", sizes=8, seed=3)
        assert first.rows[0]["identifiers"] == second.rows[0]["identifiers"]

    def test_warm_session_reuses_runner_and_graph(self):
        session = Session()
        session.simulate(topologies="cycle", sizes=8, seed=0)
        graphs_before = len(session._graphs)
        runners_before = len(session._runners)
        result = session.simulate(topologies="cycle", sizes=8, seed=1)
        assert len(session._graphs) == graphs_before
        assert len(session._runners) == runners_before
        # The warm decision cache answers most balls of the repeat query.
        assert result.cache["hit_rate"] > 0.5

    def test_worker_fanout_returns_identical_rows(self):
        base = Query(mode="simulate", topologies=("cycle", "path"), sizes=(6, 8), seed=2)
        serial = Session().simulate(base)
        parallel = Session().simulate(base.with_changes(workers=2))
        assert strip_volatile(serial.rows) == strip_volatile(parallel.rows)


class TestWorstCase:
    def test_exact_search_with_certificate(self):
        result = Session().worst_case(
            topologies="cycle", sizes=7, adversaries="branch-and-bound", measure="average"
        )
        row = result.rows[0]
        assert result.exact is True
        assert row["certificate"]["group_order"] == 14
        assert math.isclose(result.measures["average"], 12 / 7)

    def test_matches_direct_adversary_call(self):
        from repro.search.adversaries import BranchAndBoundAdversary
        from repro.topology.cycle import cycle_graph
        from repro.algorithms.largest_id import LargestIdAlgorithm

        direct = BranchAndBoundAdversary().maximise(
            cycle_graph(7), LargestIdAlgorithm(), objective="sum"
        )
        result = Session().worst_case(
            topologies="cycle", sizes=7, adversaries="branch-and-bound", measure="sum"
        )
        assert result.rows[0]["value"] == direct.value


class TestSweepAndDistribution:
    def test_sweep_rows_are_grid_ordered(self):
        result = Session().sweep(
            topologies=("cycle", "path"), sizes=6, adversaries=("rotation",), seed=1
        )
        assert [row["topology"] for row in result.rows] == ["cycle", "path"]
        assert all(row["objective"] == "average" for row in result.rows)

    def test_distribution_total_weight_is_n_factorial(self):
        result = Session().distribution(topologies="cycle", sizes=5)
        assert result.rows[0]["total_weight"] == math.factorial(5)
        assert result.exact is True

    def test_distribution_worker_fanout_identical(self):
        base = Query(
            mode="distribution", topologies=("cycle", "path"), sizes=5,
            methods=("exact", "sample"), samples=8, seed=4,
        )
        serial = Session().distribution(base)
        parallel = Session().distribution(base.with_changes(workers=2))
        assert strip_volatile(serial.rows) == strip_volatile(parallel.rows)


class TestDispatchAndCoercion:
    def test_run_dispatches_on_mode(self):
        session = Session()
        assert session.run(Query(mode="simulate", sizes=6)).mode == "simulate"
        assert session.run(Query(mode="distribution", sizes=5)).mode == "distribution"

    def test_mode_methods_reject_a_contradicting_query_mode(self):
        with pytest.raises(ConfigurationError, match="declares mode 'simulate'"):
            Session().distribution(Query(mode="simulate", topologies="cycle", sizes=5))

    def test_kwargs_overlay_an_explicit_query(self):
        base = Query(mode="simulate", sizes=6)
        result = Session().simulate(base, sizes=8)
        assert result.rows[0]["n"] == 8

    def test_rejects_non_query_objects(self):
        with pytest.raises(ConfigurationError, match="expected a Query"):
            Session().simulate({"mode": "simulate"})

    def test_session_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Session(workers=0)


class TestObjectLevelHelpers:
    def test_trace_and_report_share_the_runner(self):
        from repro.algorithms.largest_id import LargestIdAlgorithm
        from repro.model.identifiers import random_assignment
        from repro.topology.cycle import cycle_graph

        session = Session()
        graph = cycle_graph(9)
        algorithm = LargestIdAlgorithm()
        ids = random_assignment(9, seed=4)
        trace = session.trace(graph, ids, algorithm)
        report = session.report(graph, ids, algorithm)
        assert report.max_radius == trace.max_radius
        assert len(session._runners) == 1

    def test_trace_equals_run_ball_algorithm(self):
        from repro.algorithms.largest_id import LargestIdAlgorithm
        from repro.core.runner import run_ball_algorithm
        from repro.model.identifiers import random_assignment
        from repro.topology.random_graphs import random_tree

        graph = random_tree(9, seed=5)
        ids = random_assignment(9, seed=6)
        algorithm = LargestIdAlgorithm()
        session_trace = Session().trace(graph, ids, algorithm)
        legacy_trace = run_ball_algorithm(graph, ids, algorithm)
        assert session_trace.radii() == legacy_trace.radii()
        assert session_trace.outputs_by_position() == legacy_trace.outputs_by_position()


class TestSessionCaches:
    def test_hot_graph_survives_a_cold_sweep(self):
        # The LRU regression scenario: one instance stays hot while a sweep
        # of one-shot instances streams through a tiny cache.  Under the old
        # oldest-insertion eviction the hot graph (oldest insertion, most
        # recent use) would be evicted; under LRU it must survive.
        session = Session(max_graphs=3)
        hot = session.graph("cycle", 8)
        for n in (10, 12, 14, 16, 18, 20):
            session.graph("cycle", n)   # the cold sweep
            assert session.graph("cycle", 8) is hot   # the hot instance, re-hit
        assert session._graphs.evictions > 0

    def test_eviction_drops_the_least_recently_used(self):
        session = Session(max_graphs=2)
        first = session.graph("cycle", 6)
        session.graph("cycle", 8)
        session.graph("cycle", 6)        # refresh first
        session.graph("cycle", 10)       # evicts the 8-cycle, not the 6-cycle
        assert session.graph("cycle", 6) is first
        assert ("cycle", 8, 0) not in session._graphs

    def test_cache_info_counts_hits_misses_and_evictions(self):
        session = Session(max_graphs=2)
        info = session.cache_info()
        assert info == {"hits": 0, "misses": 0, "evictions": 0}
        session.graph("cycle", 6)
        session.graph("cycle", 6)
        session.graph("cycle", 8)
        session.graph("cycle", 10)
        info = session.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 3
        assert info["evictions"] == 1

    def test_results_surface_the_session_cache_counters(self):
        session = Session()
        first = session.simulate(topologies="cycle", sizes=8, seed=0)
        assert first.cache["session"]["misses"] > 0
        second = session.simulate(topologies="cycle", sizes=8, seed=1)
        assert second.cache["session"]["hits"] > first.cache["session"]["hits"]
        assert second.cache["session"]["evictions"] == 0

    def test_distribution_reuses_the_session_kernel(self):
        session = Session()
        session.distribution(topologies="cycle", sizes=6, methods="sample", samples=8)
        kernels_after_first = len(session._kernels)
        result = session.distribution(
            topologies="cycle", sizes=6, methods="sample", samples=8, seed=1
        )
        assert len(session._kernels) == kernels_after_first == 1
        assert result.rows[0]["kernel"]["rule"] in ("max-scan", "runner-table")
        assert result.kernel["rows"] == 1

    def test_cache_limits_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Session(max_graphs=0)


class TestDefaultSession:
    def test_query_uses_one_shared_session(self):
        reset_default_session()
        query(mode="simulate", topologies="cycle", sizes=6)
        session = default_session()
        assert session.queries == 1
        query("simulate", topologies="cycle", sizes=6)
        assert session.queries == 2
        reset_default_session()
        assert default_session() is not session

    def test_repro_query_accepts_query_objects(self):
        result = repro.query(Query(mode="simulate", sizes=6), seed=2)
        assert result.mode == "simulate"
        assert result.query["seed"] == 2

    def test_repro_query_rejects_other_types(self):
        with pytest.raises(ConfigurationError, match="repro.query expects"):
            repro.query(42)
