"""Tests for the declarative Query spec (validation, builder, JSON, interop)."""

import json

import pytest

from repro.api.query import MODES, Query, QueryBuilder
from repro.engine.campaign import CampaignSpec, DistSpec
from repro.errors import ConfigurationError


class TestConstruction:
    def test_scalars_are_promoted_to_tuples(self):
        query = Query(topologies="cycle", sizes=8, algorithms="largest-id")
        assert query.topologies == ("cycle",)
        assert query.sizes == (8,)
        assert query.algorithms == ("largest-id",)

    def test_sequences_are_frozen_to_tuples(self):
        query = Query(topologies=["cycle", "path"], sizes=[6, 8])
        assert query.topologies == ("cycle", "path")
        assert query.sizes == (6, 8)

    def test_defaults_are_valid_for_every_mode(self):
        for mode in MODES:
            assert Query(mode=mode).mode == mode

    def test_objective_resolves_the_measure(self):
        assert Query(measure="classic").objective == "max"
        assert Query(measure="average").objective == "average"
        assert Query(measure="max").objective == "max"

    def test_with_changes_revalidates(self):
        query = Query(sizes=8)
        assert query.with_changes(sizes=16).sizes == (16,)
        with pytest.raises(ConfigurationError):
            query.with_changes(topologies="hypercube")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"mode": "oracle"}, "unknown mode"),
            ({"topologies": "hypercube"}, "unknown topology"),
            ({"algorithms": "quantum"}, "unknown algorithm"),
            ({"adversaries": "oracle"}, "unknown adversary"),
            ({"methods": "oracle"}, "unknown distribution method"),
            ({"ids": "oracle"}, "unknown identifier family"),
            ({"measure": "median"}, "unknown measure"),
            ({"sizes": 0}, "sizes must be positive"),
            ({"samples": 0}, "samples must be positive"),
            ({"workers": 0}, "workers must be"),
        ],
    )
    def test_bad_fields_rejected_eagerly(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            Query(**kwargs)


class TestBuilder:
    def test_fluent_chain_builds_the_query(self):
        query = (
            Query.builder()
            .sweep()
            .on("cycle", "path")
            .sizes(6, 8)
            .algorithms("largest-id")
            .adversaries("rotation")
            .measure("sum")
            .identifiers("sorted")
            .budget(seed=3, samples=5, workers=2)
            .build()
        )
        assert query.mode == "sweep"
        assert query.topologies == ("cycle", "path")
        assert query.sizes == (6, 8)
        assert query.adversaries == ("rotation",)
        assert query.measure == "sum"
        assert query.ids == "sorted"
        assert (query.seed, query.samples, query.workers) == (3, 5, 2)

    def test_every_mode_selector(self):
        assert QueryBuilder().simulate().build().mode == "simulate"
        assert QueryBuilder().worst_case().build().mode == "worst-case"
        assert QueryBuilder().distribution().build().mode == "distribution"
        assert QueryBuilder().sweep().build().mode == "sweep"

    def test_builder_validates_on_build(self):
        with pytest.raises(ConfigurationError):
            Query.builder().on("hypercube").build()


class TestJson:
    def test_round_trip(self):
        query = Query(mode="distribution", topologies=("cycle", "path"), sizes=(5, 6), methods=("exact", "sample"), samples=32)
        assert Query.from_json(query.to_json()) == query

    def test_document_is_versioned(self):
        document = json.loads(Query().to_json())
        assert document["kind"] == "repro-query"
        assert document["version"] == 1

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="not a repro-query"):
            Query.from_dict({"kind": "repro-sweep", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ConfigurationError, match="version"):
            Query.from_dict({"kind": "repro-query", "version": 99})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown query field"):
            Query.from_dict({"kind": "repro-query", "version": 1, "topolgies": ["cycle"]})

    def test_load_reads_the_example_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(Query(mode="sweep", sizes=6).to_json(), encoding="utf-8")
        assert Query.load(str(path)).mode == "sweep"


class TestSpecInterop:
    def test_campaign_spec_round_trip(self):
        spec = CampaignSpec(
            topologies=("cycle", "path"),
            sizes=(6, 8),
            algorithms=("largest-id",),
            adversaries=("rotation", "random-search"),
            objective="sum",
            seed=5,
            samples=7,
            restarts=3,
        )
        query = Query.from_campaign_spec(spec)
        assert query.mode == "sweep"
        assert query.to_campaign_spec() == spec

    def test_dist_spec_round_trip(self):
        spec = DistSpec(
            topologies=("cycle",),
            sizes=(5,),
            algorithms=("largest-id",),
            methods=("exact", "sample"),
            seed=2,
            samples=64,
        )
        query = Query.from_dist_spec(spec)
        assert query.mode == "distribution"
        assert query.to_dist_spec() == spec

    def test_query_cells_match_campaign_cells(self):
        query = Query(mode="sweep", topologies=("cycle",), sizes=(6, 8), adversaries=("rotation",), seed=9)
        assert query.to_campaign_spec().cells() == CampaignSpec(
            topologies=("cycle",), sizes=(6, 8), adversaries=("rotation",),
            samples=query.samples, seed=9,
        ).cells()
