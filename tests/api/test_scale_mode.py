"""The ``scale`` query mode: validation, execution, results, CLI surface."""

import json

import pytest

from repro.api import MODES, Query, Result, Session
from repro.errors import ConfigurationError


class TestScaleQueryValidation:
    def test_scale_is_a_registered_mode(self):
        assert "scale" in MODES

    def test_builder_sets_the_mode(self):
        built = (
            Query.builder().scale().on("cycle").sizes(32).algorithms("largest-id").build()
        )
        assert built.mode == "scale"

    def test_non_streamed_topologies_are_rejected(self):
        with pytest.raises(ConfigurationError, match="does not stream"):
            Query(mode="scale", topologies="complete", sizes=16, algorithms="largest-id")

    def test_non_scale_algorithms_are_rejected(self):
        with pytest.raises(ConfigurationError, match="has no scale rule"):
            Query(mode="scale", topologies="cycle", sizes=16, algorithms="cole-vishkin")

    @pytest.mark.parametrize("knob", ["row_block", "center_chunk"])
    @pytest.mark.parametrize("bad", [0, -1, True, 2.5])
    def test_shard_knobs_must_be_positive_ints(self, knob, bad):
        with pytest.raises(ConfigurationError, match=knob):
            Query(
                mode="scale",
                topologies="cycle",
                sizes=16,
                algorithms="largest-id",
                **{knob: bad},
            )

    def test_other_modes_ignore_the_stream_restriction(self):
        # grid does not stream, but simulate mode must keep accepting it.
        built = Query(mode="simulate", topologies="cycle", sizes=8)
        assert built.row_block == 4
        assert built.center_chunk == 65536


class TestSessionScale:
    @pytest.fixture(scope="class")
    def result(self):
        return Session().scale(
            topologies="cycle", sizes=64, algorithms="largest-id", samples=4, seed=7
        )

    def test_rows_carry_the_measure_estimates(self, result):
        (row,) = result.rows
        assert row["topology"] == "cycle"
        assert row["n"] == 64
        assert row["samples"] == 4
        assert row["max"]["mean"] == 32.0  # the cycle's eccentricity
        assert row["average"]["mean"] < 8.0  # O(log n) average measure
        assert row["exact"] is False
        assert row["nodes_per_s"] > 0
        # The cycle engages the vectorised ring sweep (the BFS rule's
        # bit-identical specialisation for the paper's own topology).
        assert row["kernel"]["rule"] == "ring-scan-stream"

    def test_measures_headline_average_and_classic(self, result):
        assert result.measures["classic"] == 32.0
        assert result.measures["average"] == result.rows[0]["average"]["mean"]

    def test_table_has_the_scale_columns(self, result):
        table = result.table()
        assert "nodes_per_s" in table.columns
        assert "avg_mean" in table.columns

    def test_run_dispatches_scale(self):
        session = Session()
        built = Query(
            mode="scale", topologies="cycle", sizes=64, algorithms="largest-id",
            samples=4, seed=7,
        )
        assert session.run(built).rows[0]["max"]["mean"] == 32.0

    def test_json_round_trip(self, result):
        restored = Result.from_json(result.to_json())
        assert restored.mode == "scale"
        assert restored.rows[0]["average"] == result.rows[0]["average"]

    def test_worker_count_is_bit_invariant_through_the_api(self, result):
        shard = Session().scale(
            topologies="cycle", sizes=64, algorithms="largest-id", samples=4,
            seed=7, workers=2, center_chunk=16,
        )
        assert shard.rows[0]["average"] == result.rows[0]["average"]
        assert shard.rows[0]["max"] == result.rows[0]["max"]

    def test_multi_cell_grids_expand(self):
        result = Session().scale(
            topologies=("cycle", "random-tree"), sizes=(24, 32), samples=2, seed=3
        )
        assert len(result.rows) == 4
        assert {(row["topology"], row["n"]) for row in result.rows} == {
            ("cycle", 24),
            ("cycle", 32),
            ("random-tree", 24),
            ("random-tree", 32),
        }

    def test_csr_cache_is_reused_across_queries(self):
        session = Session()
        session.scale(topologies="cycle", sizes=48, samples=2)
        before = session.cache_info()
        session.scale(topologies="cycle", sizes=48, samples=2)
        after = session.cache_info()
        assert after["hits"] > before["hits"]


class TestScaleCLI:
    def test_scale_subcommand_prints_the_measures(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "scale.json"
        assert (
            main(
                [
                    "scale",
                    "--topology",
                    "cycle",
                    "--n",
                    "64",
                    "--samples",
                    "3",
                    "--seed",
                    "5",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "classic (max)    : 32.0" in printed
        assert "nodes/s" in printed
        document = json.loads(output.read_text())
        assert document["mode"] == "scale"
