"""Tests for the versioned Result type (aggregation, tables, JSON, adoption)."""

import json

import pytest

from repro.api.query import Query
from repro.api.results import RESULT_KIND, RESULT_VERSION, Result, strip_volatile
from repro.api.session import Session
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def sweep_result():
    return Session().sweep(
        Query(mode="sweep", topologies=("cycle", "path"), sizes=6, adversaries="rotation", seed=1)
    )


@pytest.fixture(scope="module")
def dist_result():
    return Session().distribution(
        Query(mode="distribution", topologies="cycle", sizes=5, methods=("exact", "sample"), samples=8)
    )


class TestAggregation:
    def test_sweep_measures_take_the_worst_cell(self, sweep_result):
        assert sweep_result.measures["average"] == max(
            row["value"] for row in sweep_result.rows
        )

    def test_cache_counters_are_summed(self, sweep_result):
        assert sweep_result.cache["hits"] == sum(
            row["cache"]["hits"] for row in sweep_result.rows
        )
        assert 0.0 <= sweep_result.cache["hit_rate"] <= 1.0

    def test_exact_requires_every_row(self, sweep_result):
        assert sweep_result.exact is False  # rotation is a heuristic

    def test_timing_sums_cell_wall_times(self, sweep_result):
        assert sweep_result.timing["wall_time_s"] == pytest.approx(
            sum(row["wall_time_s"] for row in sweep_result.rows)
        )


class TestTable:
    def test_sweep_table_has_the_cli_columns(self, sweep_result):
        rendered = str(sweep_result.table())
        for column in ("topology", "value", "evaluations", "cache_hit_rate"):
            assert column in rendered

    def test_distribution_table_flattens_marginals(self, dist_result):
        rendered = str(dist_result.table())
        assert "avg_mean" in rendered and "max_std" in rendered
        # Sampled rows expose a standard error, exact rows a dash.
        assert "-" in rendered

    def test_simulate_table(self):
        result = Session().simulate(topologies="cycle", sizes=6)
        rendered = str(result.table())
        assert "classic" in rendered and "average" in rendered


class TestJsonRoundTrip:
    def test_round_trip_is_lossless(self, sweep_result):
        reread = Result.from_json(sweep_result.to_json())
        assert reread.as_dict() == sweep_result.as_dict()

    def test_document_is_versioned(self, dist_result):
        document = json.loads(dist_result.to_json())
        assert document["kind"] == RESULT_KIND
        assert document["version"] == RESULT_VERSION

    def test_save_and_load(self, sweep_result, tmp_path):
        path = tmp_path / "result.json"
        sweep_result.save(str(path))
        assert Result.load(str(path)).as_dict() == sweep_result.as_dict()

    def test_wrong_kind_rejected(self):
        with pytest.raises(AnalysisError, match="not a result document"):
            Result.from_dict({"kind": "repro-query", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(AnalysisError, match="version"):
            Result.from_dict({"kind": RESULT_KIND, "version": 99})


class TestLegacyAdoption:
    def test_adopts_repro_sweep_documents(self, sweep_result):
        legacy = {"kind": "repro-sweep", "version": 1, "rows": list(sweep_result.rows)}
        adopted = Result.from_json(json.dumps(legacy))
        assert adopted.mode == "sweep"
        assert strip_volatile(adopted.rows) == strip_volatile(sweep_result.rows)
        assert adopted.measures == sweep_result.measures

    def test_adopts_repro_dist_documents(self, dist_result):
        legacy = {"kind": "repro-dist", "version": 1, "rows": list(dist_result.rows)}
        adopted = Result.from_json(json.dumps(legacy))
        assert adopted.mode == "distribution"
        assert adopted.measures == dist_result.measures
