"""Canonical query hashing: the store's content addresses are semantic.

The service keys persisted results by ``Query.canonical_hash()``, so the
hash must identify the *meaning* of a query, not its spelling: scalar vs
tuple promotion, JSON key order and defaulted-vs-explicit fields must all
collapse to one address, distinct specs must not collide, and the address
must be identical in every process (no ``PYTHONHASHSEED`` dependence).
"""

import itertools
import json
import os
import subprocess
import sys

from repro.api import Query
from repro.api.query import FAMILY_EXCLUDED_FIELDS


def test_scalar_and_tuple_spellings_hash_identically():
    assert (
        Query(mode="sweep", topologies="cycle", sizes=8).canonical_hash()
        == Query(mode="sweep", topologies=("cycle",), sizes=(8,)).canonical_hash()
    )


def test_defaulted_and_explicit_fields_hash_identically():
    defaulted = Query(mode="simulate", topologies="cycle")
    explicit = Query(
        mode="simulate",
        topologies="cycle",
        sizes=(8,),
        algorithms=("largest-id",),
        measure="average",
        ids="random",
        seed=0,
        samples=64,
        workers=1,
    )
    assert defaulted.canonical_hash() == explicit.canonical_hash()


def test_document_key_order_does_not_matter():
    document = Query(mode="sweep", topologies=("cycle", "path"), sizes=(6, 8)).to_dict()
    shuffled = dict(reversed(list(document.items())))
    assert json.dumps(document) != json.dumps(shuffled)  # orders really differ
    assert (
        Query.from_dict(document).canonical_hash()
        == Query.from_dict(shuffled).canonical_hash()
    )


def test_preimage_is_canonical_json_with_kind_and_version():
    query = Query(mode="sweep", topologies="cycle")
    preimage = json.loads(query.canonical_preimage())
    assert preimage["kind"] == "repro-query"
    assert preimage["version"] == 1
    compact = json.dumps(preimage, sort_keys=True, separators=(",", ":"))
    assert query.canonical_preimage() == compact


def test_distinct_specs_do_not_collide_across_a_grid():
    seen = {}
    grid = itertools.product(
        ("simulate", "sweep", "distribution"),
        ("cycle", "path"),
        ((6,), (8,), (6, 8)),
        (0, 1),
        (16, 64),
    )
    for mode, topology, sizes, seed, samples in grid:
        query = Query(mode=mode, topologies=topology, sizes=sizes, seed=seed, samples=samples)
        digest = query.canonical_hash()
        assert digest not in seen, f"collision: {query} vs {seen[digest]}"
        seen[digest] = query
    assert len(seen) == 3 * 2 * 3 * 2 * 2


def test_every_field_change_changes_the_hash():
    base = Query(mode="distribution", methods=("exact", "sample"))
    for changes in (
        {"mode": "sweep"},
        {"topologies": ("path",)},
        {"sizes": (9,)},
        {"algorithms": ("greedy-mis",)},
        {"measure": "sum"},
        {"seed": 17},
        {"samples": 128},
        {"workers": 4},
        {"methods": ("sample",)},
        {"max_classes": 99},
    ):
        assert base.with_changes(**changes).canonical_hash() != base.canonical_hash(), changes


def test_hash_is_stable_across_processes_regardless_of_pythonhashseed():
    query = Query(mode="sweep", topologies=("cycle", "path"), sizes=(6, 8), seed=7)
    script = (
        "import sys\n"
        "from repro.api import Query\n"
        "query = Query(mode='sweep', topologies=('cycle', 'path'), sizes=(6, 8), seed=7)\n"
        "print(query.canonical_hash())\n"
        "print(query.family_hash())\n"
    )
    digests = set()
    families = set()
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        completed = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
        )
        digest, family = completed.stdout.split()
        digests.add(digest)
        families.add(family)
    assert digests == {query.canonical_hash()}
    assert families == {query.family_hash()}


def test_family_hash_ignores_exactly_the_resumable_budgets():
    base = Query(mode="distribution", methods="sample", samples=16)
    assert FAMILY_EXCLUDED_FIELDS == ("samples", "workers")
    assert base.with_changes(samples=64).family_hash() == base.family_hash()
    assert base.with_changes(workers=3).family_hash() == base.family_hash()
    assert base.with_changes(seed=1).family_hash() != base.family_hash()
    assert base.with_changes(sizes=(9,)).family_hash() != base.family_hash()


def test_family_hash_never_equals_a_canonical_hash():
    base = Query(mode="distribution", methods="sample")
    assert base.family_hash() != base.canonical_hash()
