"""The HTTP front door, end to end over a live (threaded) server."""

import json
import subprocess
import sys
import urllib.error
import urllib.request
from threading import Thread

import pytest

from repro.api import Query
from repro.obs import enable, metrics_snapshot, reset_metrics
from repro.service import make_server

SWEEP = {
    "kind": "repro-query",
    "version": 1,
    "mode": "sweep",
    "topologies": ["cycle"],
    "sizes": [6],
    "algorithms": ["largest-id"],
    "adversaries": ["branch-and-bound"],
}

SAMPLED = {
    "kind": "repro-query",
    "version": 1,
    "mode": "distribution",
    "topologies": ["cycle"],
    "sizes": [10],
    "algorithms": ["greedy-mis"],
    "methods": ["sample"],
    "samples": 24,
    "seed": 5,
}


@pytest.fixture
def server(store_root):
    instance = make_server(root=store_root)
    thread = Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


def _post(url: str, document: dict):
    request = urllib.request.Request(
        url, data=json.dumps(document).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response), dict(response.headers)


def test_healthz(server):
    with urllib.request.urlopen(f"{server.url}/v1/healthz") as response:
        payload = json.load(response)
    assert payload["status"] == "ok"
    assert "store" in payload


def test_post_query_miss_then_hit_bit_identical(server):
    first, headers1 = _post(f"{server.url}/v1/query", SWEEP)
    second, headers2 = _post(f"{server.url}/v1/query", SWEEP)
    assert headers1["X-Repro-Cache"] == "miss"
    assert headers2["X-Repro-Cache"] == "hit"
    assert headers1["X-Repro-Hash"] == headers2["X-Repro-Hash"]
    assert first["kind"] == "repro-result" and first["version"] == 1
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_second_post_recomputes_nothing(server):
    """The acceptance check: a store hit leaves every compute counter flat."""
    enable()
    reset_metrics()
    _post(f"{server.url}/v1/query", SAMPLED)  # cold: kernel counters move
    before = metrics_snapshot()["counters"]
    assert before.get("kernel.batches", 0) > 0
    assert before.get("kernel.rows", 0) > 0
    _, headers = _post(f"{server.url}/v1/query", SAMPLED)
    after = metrics_snapshot()["counters"]
    assert headers["X-Repro-Cache"] == "hit"
    for name in ("kernel.batches", "kernel.rows", "engine.runs"):
        assert after.get(name, 0) == before.get(name, 0), name
    assert after["service.cache.l1_hits"] == before.get("service.cache.l1_hits", 0) + 1


def test_get_result_by_hash(server):
    document, headers = _post(f"{server.url}/v1/query", SWEEP)
    digest = headers["X-Repro-Hash"]
    assert digest == Query.from_dict(SWEEP).canonical_hash()
    with urllib.request.urlopen(f"{server.url}/v1/result/{digest}") as response:
        assert json.load(response) == document


def test_get_missing_result_404(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(f"{server.url}/v1/result/{'0' * 64}")
    assert info.value.code == 404


def test_get_malformed_hash_400(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(f"{server.url}/v1/result/not-a-hash")
    assert info.value.code == 400


def test_post_invalid_json_400(server):
    request = urllib.request.Request(f"{server.url}/v1/query", data=b"{nope")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request)
    assert info.value.code == 400


def test_post_unknown_field_400(server):
    bad = dict(SWEEP, cromulence=3)
    request = urllib.request.Request(f"{server.url}/v1/query", data=json.dumps(bad).encode())
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request)
    assert info.value.code == 400
    assert "cromulence" in json.load(info.value)["error"]


def test_unknown_path_404(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(f"{server.url}/v1/nope")
    assert info.value.code == 404


def test_streamed_query_sends_progress_then_result(server):
    request = urllib.request.Request(
        f"{server.url}/v1/query?stream=1", data=json.dumps(SAMPLED).encode()
    )
    with urllib.request.urlopen(request) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        events = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    kinds = [event["type"] for event in events]
    assert kinds[-1] == "result"
    assert kinds.count("progress") >= 2
    errors = [
        event["cells"][0]["std_error"] for event in events if event["type"] == "progress"
    ]
    assert errors[-1] < errors[0]
    # The streamed final document equals the plain-POST answer (a store hit now).
    document, headers = _post(f"{server.url}/v1/query", SAMPLED)
    assert headers["X-Repro-Cache"] == "hit"
    assert document == events[-1]["document"]


def test_store_survives_a_process_restart(server, store_root):
    """The acceptance check: a hit across a *fresh subprocess* on the store."""
    document, headers = _post(f"{server.url}/v1/query", SWEEP)
    digest = headers["X-Repro-Hash"]
    script = (
        "import json, sys\n"
        "from repro.api import Query\n"
        "from repro.service import QueryService\n"
        "service = QueryService(root=sys.argv[1])\n"
        "query = Query.from_dict(json.loads(sys.argv[2]))\n"
        "outcome = service.execute(query)\n"
        "print(json.dumps({'tier': outcome.tier, 'digest': outcome.digest,\n"
        "                  'document': outcome.document}))\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script, str(store_root), json.dumps(SWEEP)],
        capture_output=True,
        text=True,
        check=True,
    )
    answer = json.loads(completed.stdout)
    assert answer["tier"] == "l2"
    assert answer["digest"] == digest
    assert answer["document"] == document
