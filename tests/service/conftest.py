"""Shared fixtures of the service tests: obs isolation + throwaway stores."""

import pytest

from repro.obs import metrics, spans
from repro.service import QueryService


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Restore the process-global obs switch and registries around every test."""
    state = spans._state
    yield
    spans._state = state
    spans.reset_spans()
    metrics.reset_metrics()


@pytest.fixture
def store_root(tmp_path):
    """A throwaway store directory."""
    return tmp_path / "store"


@pytest.fixture
def service(store_root):
    """A fresh single-process service over a throwaway store."""
    return QueryService(root=store_root)
