"""The content-addressed result store: tiers, sharding, atomicity, states."""

import json

import pytest

from repro.api import Query
from repro.errors import ConfigurationError
from repro.service import ResultStore

DOC = {"kind": "repro-result", "version": 1, "mode": "sweep", "rows": []}


def _digest(**fields) -> str:
    return Query(**fields).canonical_hash()


def test_miss_then_put_then_tiered_hits(store_root):
    store = ResultStore(store_root)
    digest = _digest(mode="sweep")
    assert store.get(digest) == (None, "miss")
    store.put(digest, DOC, meta={"mode": "sweep"})
    document, tier = store.get(digest)
    assert document == DOC and tier == "l1"
    # A fresh instance over the same root has a cold L1: the disk answers.
    fresh = ResultStore(store_root)
    document, tier = fresh.get(digest)
    assert document == DOC and tier == "l2"
    # ... and the L2 hit promoted the document into L1.
    assert fresh.get(digest)[1] == "l1"


def test_objects_are_sharded_by_hash_prefix(store_root):
    store = ResultStore(store_root)
    digest = _digest(mode="sweep")
    path = store.put(digest, DOC)
    assert path.parent.name == digest[:2]
    assert path.name == f"{digest}.json"
    assert json.loads(path.read_text()) == DOC


def test_manifest_records_entries(store_root):
    store = ResultStore(store_root)
    first, second = _digest(mode="sweep"), _digest(mode="simulate")
    store.put(first, DOC, meta={"mode": "sweep"})
    store.put(second, dict(DOC, mode="simulate"), meta={"mode": "simulate"})
    manifest = json.loads((store_root / "manifest.json").read_text())
    assert manifest["kind"] == "repro-store-manifest"
    assert set(manifest["entries"]) == {first, second}
    assert manifest["entries"][first]["mode"] == "sweep"
    assert len(ResultStore(store_root)) == 2


@pytest.mark.parametrize(
    "bad",
    ["", "abc", "../../etc/passwd", "Z" * 64, "0" * 63, "0" * 65, None, 7],
)
def test_digest_validation_rejects_non_hashes(store_root, bad):
    store = ResultStore(store_root)
    with pytest.raises(ConfigurationError):
        store.get(bad)


def test_l1_is_bounded(store_root):
    store = ResultStore(store_root, l1_limit=2)
    digests = [_digest(mode="simulate", seed=seed) for seed in range(3)]
    for digest in digests:
        store.put(digest, DOC)
    assert store._l1.evictions == 1
    # The evicted entry still answers from disk.
    assert store.get(digests[0])[1] == "l2"


def test_state_round_trip_and_monotonicity(store_root):
    store = ResultStore(store_root)
    family = Query(mode="distribution", methods="sample").family_hash()
    assert store.get_state(family) is None
    assert store.put_state(family, 32, {"cycle|8|largest-id": {"draws": 32}}) is not None
    stored = store.get_state(family)
    assert stored["samples"] == 32
    assert stored["states"]["cycle|8|largest-id"]["draws"] == 32
    # A smaller budget never overwrites a larger one.
    assert store.put_state(family, 16, {"cycle|8|largest-id": {"draws": 16}}) is None
    assert store.get_state(family)["samples"] == 32
    # A larger one does.
    assert store.put_state(family, 64, {"cycle|8|largest-id": {"draws": 64}}) is not None
    assert store.get_state(family)["samples"] == 64


def test_contains_and_stats(store_root):
    store = ResultStore(store_root)
    digest = _digest(mode="sweep")
    assert digest not in store
    store.put(digest, DOC)
    assert digest in store
    stats = store.stats()
    assert stats["objects"] == 1
    assert stats["l1"]["entries"] == 1
