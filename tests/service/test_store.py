"""The content-addressed result store: tiers, sharding, atomicity, states."""

import json

import pytest

from repro.api import Query
from repro.errors import ConfigurationError
from repro.service import ResultStore

DOC = {"kind": "repro-result", "version": 1, "mode": "sweep", "rows": []}


def _digest(**fields) -> str:
    return Query(**fields).canonical_hash()


def test_miss_then_put_then_tiered_hits(store_root):
    store = ResultStore(store_root)
    digest = _digest(mode="sweep")
    assert store.get(digest) == (None, "miss")
    store.put(digest, DOC, meta={"mode": "sweep"})
    document, tier = store.get(digest)
    assert document == DOC and tier == "l1"
    # A fresh instance over the same root has a cold L1: the disk answers.
    fresh = ResultStore(store_root)
    document, tier = fresh.get(digest)
    assert document == DOC and tier == "l2"
    # ... and the L2 hit promoted the document into L1.
    assert fresh.get(digest)[1] == "l1"


def test_objects_are_sharded_by_hash_prefix(store_root):
    store = ResultStore(store_root)
    digest = _digest(mode="sweep")
    path = store.put(digest, DOC)
    assert path.parent.name == digest[:2]
    assert path.name == f"{digest}.json"
    assert json.loads(path.read_text()) == DOC


def test_manifest_records_entries(store_root):
    store = ResultStore(store_root)
    first, second = _digest(mode="sweep"), _digest(mode="simulate")
    store.put(first, DOC, meta={"mode": "sweep"})
    store.put(second, dict(DOC, mode="simulate"), meta={"mode": "simulate"})
    manifest = json.loads((store_root / "manifest.json").read_text())
    assert manifest["kind"] == "repro-store-manifest"
    assert set(manifest["entries"]) == {first, second}
    assert manifest["entries"][first]["mode"] == "sweep"
    assert len(ResultStore(store_root)) == 2


@pytest.mark.parametrize(
    "bad",
    ["", "abc", "../../etc/passwd", "Z" * 64, "0" * 63, "0" * 65, None, 7],
)
def test_digest_validation_rejects_non_hashes(store_root, bad):
    store = ResultStore(store_root)
    with pytest.raises(ConfigurationError):
        store.get(bad)


def test_l1_is_bounded(store_root):
    store = ResultStore(store_root, l1_limit=2)
    digests = [_digest(mode="simulate", seed=seed) for seed in range(3)]
    for digest in digests:
        store.put(digest, DOC)
    assert store._l1.evictions == 1
    # The evicted entry still answers from disk.
    assert store.get(digests[0])[1] == "l2"


def test_state_round_trip_and_monotonicity(store_root):
    store = ResultStore(store_root)
    family = Query(mode="distribution", methods="sample").family_hash()
    assert store.get_state(family) is None
    assert store.put_state(family, 32, {"cycle|8|largest-id": {"draws": 32}}) is not None
    stored = store.get_state(family)
    assert stored["samples"] == 32
    assert stored["states"]["cycle|8|largest-id"]["draws"] == 32
    # A smaller budget never overwrites a larger one.
    assert store.put_state(family, 16, {"cycle|8|largest-id": {"draws": 16}}) is None
    assert store.get_state(family)["samples"] == 32
    # A larger one does.
    assert store.put_state(family, 64, {"cycle|8|largest-id": {"draws": 64}}) is not None
    assert store.get_state(family)["samples"] == 64


def test_contains_and_stats(store_root):
    store = ResultStore(store_root)
    digest = _digest(mode="sweep")
    assert digest not in store
    store.put(digest, DOC)
    assert digest in store
    stats = store.stats()
    assert stats["objects"] == 1
    assert stats["bytes"] > 0
    assert stats["l1"]["entries"] == 1


class TestGc:
    def _fill(self, store, count):
        digests = [_digest(mode="simulate", seed=seed) for seed in range(count)]
        for digest in digests:
            store.put(digest, DOC)
        return digests

    def test_unbounded_gc_is_a_no_op(self, store_root):
        store = ResultStore(store_root)
        digests = self._fill(store, 3)
        summary = store.gc()
        assert summary == {"evicted": 0, "objects": 3, "bytes": store.total_bytes()}
        assert all(digest in store for digest in digests)

    def test_max_objects_evicts_least_recently_used_first(self, store_root):
        store = ResultStore(store_root)
        digests = self._fill(store, 4)
        summary = store.gc(max_objects=2)
        assert summary["evicted"] == 2 and summary["objects"] == 2
        # The two oldest writes went; the two newest survive.
        assert store.get(digests[0]) == (None, "miss")
        assert store.get(digests[1]) == (None, "miss")
        assert store.get(digests[2])[0] == DOC
        assert store.get(digests[3])[0] == DOC
        # Their object files are really gone and the manifest agrees.
        assert not store.object_path(digests[0]).exists()
        manifest = json.loads((store_root / "manifest.json").read_text())
        assert set(manifest["entries"]) == {digests[2], digests[3]}

    def test_l2_read_refreshes_recency(self, store_root):
        store = ResultStore(store_root)
        digests = self._fill(store, 3)
        # Re-read the oldest entry through a cold L1 (an L2 hit).
        fresh = ResultStore(store_root)
        assert fresh.get(digests[0])[1] == "l2"
        fresh.gc(max_objects=2)
        # The touched oldest entry survived; the untouched next-oldest went.
        assert fresh.get(digests[0])[0] == DOC
        assert fresh.get(digests[1]) == (None, "miss")

    def test_max_bytes_bound(self, store_root):
        store = ResultStore(store_root)
        digests = self._fill(store, 4)
        per_object = store.total_bytes() // 4
        summary = store.gc(max_bytes=2 * per_object)
        assert summary["bytes"] <= 2 * per_object
        assert digests[3] in store

    def test_eviction_drops_the_l1_copy(self, store_root):
        store = ResultStore(store_root, l1_limit=8)
        digests = self._fill(store, 2)
        store.gc(max_objects=1)
        # A pure-L1 answer for the evicted digest would be a stale hit.
        assert store.get(digests[0]) == (None, "miss")

    def test_orphaned_family_state_is_removed(self, store_root):
        store = ResultStore(store_root)
        keep = Query(mode="distribution", methods="sample", seed=1)
        drop = Query(mode="distribution", methods="sample", seed=2)
        store.put(drop.canonical_hash(), DOC, meta={"family": drop.family_hash()})
        store.put_state(drop.family_hash(), 16, {"cycle|8|largest-id": {"draws": 16}})
        store.put(keep.canonical_hash(), DOC, meta={"family": keep.family_hash()})
        store.put_state(keep.family_hash(), 16, {"cycle|8|largest-id": {"draws": 16}})
        store.gc(max_objects=1)
        # The evicted result's family lost its estimator state; the
        # surviving result's family kept it.
        assert store.get_state(drop.family_hash()) is None
        assert store.get_state(keep.family_hash()) is not None

    def test_pre_gc_manifest_entries_are_sized_lazily(self, store_root):
        store = ResultStore(store_root)
        digest = _digest(mode="sweep")
        store.put(digest, DOC)
        # Strip the new bookkeeping fields, as a manifest from an older
        # version would have them.
        manifest = store.manifest()
        manifest["entries"][digest].pop("bytes")
        manifest["entries"][digest].pop("stamp")
        manifest.pop("clock")
        assert store.total_bytes() == store.object_path(digest).stat().st_size
        assert store.gc(max_objects=1)["evicted"] == 0
