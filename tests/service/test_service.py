"""QueryService: cache tiers, resume semantics, crash recovery, dispatch."""

import json

from repro.api import Query, Session
from repro.api.results import strip_volatile
from repro.service import QueryService
from repro.service.workers import pending_jobs, write_job

EXACT = Query(
    mode="sweep",
    topologies="cycle",
    sizes=(6, 8),
    algorithms="largest-id",
    adversaries="branch-and-bound",
    measure="average",
)

SAMPLED = Query(
    mode="distribution",
    topologies="cycle",
    sizes=12,
    algorithms="greedy-mis",
    methods="sample",
    samples=16,
    seed=3,
)


def test_exact_query_miss_then_hit_bit_identical(service):
    first = service.execute(EXACT)
    second = service.execute(EXACT)
    assert first.tier == "miss" and first.cached == "miss"
    assert second.tier == "l1" and second.cached == "hit"
    # The stored document is returned verbatim: bit-identical.
    assert json.dumps(first.document, sort_keys=True) == json.dumps(
        second.document, sort_keys=True
    )
    assert first.document["kind"] == "repro-result"


def test_store_survives_service_restart(service, store_root):
    first = service.execute(EXACT)
    fresh = QueryService(root=store_root)
    again = fresh.execute(EXACT)
    assert again.tier == "l2"
    assert again.document == first.document


def test_semantically_equal_spellings_share_the_store_entry(service):
    scalar = Query(mode="sweep", topologies="cycle", sizes=6, adversaries="branch-and-bound")
    tupled = Query(mode="sweep", topologies=("cycle",), sizes=(6,), adversaries=("branch-and-bound",))
    assert service.execute(scalar).tier == "miss"
    assert service.execute(tupled).tier == "l1"


def test_sampling_resume_matches_fresh_combined_run(service, tmp_path):
    small = service.execute(SAMPLED)
    assert small.tier == "miss"
    larger = SAMPLED.with_changes(samples=48)
    resumed = service.execute(larger)
    assert resumed.tier == "resume"
    # Total draws are the combined budget...
    assert all(row["samples"] == 48 for row in resumed.document["rows"])
    # ... and the estimate is bit-for-bit the fresh single-run answer.
    fresh = QueryService(root=tmp_path / "fresh").execute(larger)
    assert strip_volatile(resumed.document["rows"]) == strip_volatile(
        fresh.document["rows"]
    )
    assert resumed.document["measures"] == fresh.document["measures"]


def test_resume_is_chainable(service, tmp_path):
    service.execute(SAMPLED)
    service.execute(SAMPLED.with_changes(samples=32))
    final = service.execute(SAMPLED.with_changes(samples=64))
    assert final.tier == "resume"
    fresh = QueryService(root=tmp_path / "fresh").execute(SAMPLED.with_changes(samples=64))
    assert strip_volatile(final.document["rows"]) == strip_volatile(fresh.document["rows"])


def test_smaller_budget_after_larger_computes_cold(service):
    service.execute(SAMPLED.with_changes(samples=48))
    smaller = service.execute(SAMPLED)  # 16 < 48: estimators cannot run backwards
    assert smaller.tier == "miss"


def test_worker_count_is_volatile_for_the_family_but_not_the_hash(service):
    service.execute(SAMPLED)
    other_workers = SAMPLED.with_changes(samples=48, workers=2)
    # Different canonical hash (workers differs) but the same family: resume.
    assert other_workers.canonical_hash() != SAMPLED.canonical_hash()
    assert other_workers.family_hash() == SAMPLED.family_hash()
    assert service.execute(other_workers).tier == "resume"


def test_execute_many_fans_out_and_preserves_order(service):
    queries = [
        EXACT.to_dict(),
        Query(mode="simulate", topologies="cycle", sizes=16).to_dict(),
        EXACT.to_dict(),
    ]
    outcomes = service.execute_many(queries)
    assert [outcome.tier for outcome in outcomes] == ["miss", "miss", "l1"]
    assert outcomes[0].document == outcomes[2].document
    assert outcomes[1].document["mode"] == "simulate"


def test_execute_many_multiprocess_matches_serial(tmp_path):
    serial = QueryService(root=tmp_path / "serial")
    parallel = QueryService(root=tmp_path / "parallel", max_parallel=2)
    documents = [
        Query(mode="simulate", topologies="cycle", sizes=16).to_dict(),
        Query(mode="simulate", topologies="path", sizes=16).to_dict(),
    ]
    rows_serial = [o.document["rows"] for o in serial.execute_many(documents)]
    rows_parallel = [o.document["rows"] for o in parallel.execute_many(documents)]
    for left, right in zip(rows_serial, rows_parallel):
        assert strip_volatile(left) == strip_volatile(right)


def test_recover_reruns_abandoned_jobs(service, store_root):
    # Simulate a crash: a job file exists, but no result reached the store.
    digest = EXACT.canonical_hash()
    write_job(service.config, digest, EXACT.to_dict())
    assert pending_jobs(service.config)
    recovered = QueryService(root=store_root)
    assert recovered.recover() == [digest]
    assert not pending_jobs(recovered.config)
    # The recovered result now serves as a store hit.
    assert recovered.execute(EXACT).tier in ("l1", "l2")


def test_jobs_clear_after_successful_compute(service):
    service.execute(EXACT)
    assert pending_jobs(service.config) == []


def test_streaming_progress_tightens_and_final_matches(service, tmp_path):
    query = SAMPLED.with_changes(samples=64)
    events = list(service.execute_stream(query))
    progress = [event for event in events if event["type"] == "progress"]
    assert len(progress) >= 2
    draws = [event["draws"] for event in progress]
    assert draws == sorted(draws) and draws[-1] == 64
    errors = [event["cells"][0]["std_error"] for event in progress]
    assert errors[-1] < errors[0]  # the CI tightens as draws accumulate
    for event in progress:
        cell = event["cells"][0]
        low, high = cell["ci95"]
        assert low <= cell["mean"] <= high
    final = events[-1]
    assert final["type"] == "result" and final["cache"] == "miss"
    fresh = QueryService(root=tmp_path / "fresh").execute(query)
    assert strip_volatile(final["document"]["rows"]) == strip_volatile(
        fresh.document["rows"]
    )


def test_streaming_persists_the_result_and_the_state(service):
    query = SAMPLED.with_changes(samples=64)
    list(service.execute_stream(query))
    assert service.execute(query).tier == "l1"
    # The streamed run's estimator state resumes a later, larger budget.
    assert service.execute(query.with_changes(samples=96)).tier == "resume"


def test_streaming_a_store_hit_emits_only_the_result(service):
    service.execute(EXACT)
    events = list(service.execute_stream(EXACT))
    assert [event["type"] for event in events] == ["result"]
    assert events[0]["cache"] == "hit"


def test_shared_session_is_used(store_root):
    session = Session()
    service = QueryService(root=store_root, session=session)
    service.execute(EXACT)
    assert session.queries > 0


def test_store_bounds_run_gc_after_writes(store_root):
    service = QueryService(root=store_root, store_max_objects=2)
    queries = [
        Query(mode="simulate", topologies="cycle", sizes=16, seed=seed)
        for seed in range(4)
    ]
    for query in queries:
        service.execute(query)
    assert len(service.store) <= 2
    # The newest answers survived and still serve as hits.
    assert service.execute(queries[-1]).tier in ("l1", "l2")


def test_store_bounds_run_gc_at_startup(store_root):
    unbounded = QueryService(root=store_root)
    for seed in range(4):
        unbounded.execute(Query(mode="simulate", topologies="cycle", sizes=16, seed=seed))
    assert len(unbounded.store) == 4
    bounded = QueryService(root=store_root, store_max_objects=1)
    assert len(bounded.store) == 1


def test_gc_drops_evicted_familys_estimator_state(store_root):
    service = QueryService(root=store_root, store_max_objects=1)
    service.execute(SAMPLED)
    family_state = service.store.get_state(SAMPLED.family_hash())
    assert family_state is not None
    # An unrelated query evicts the sampled result: its state goes too.
    service.execute(Query(mode="simulate", topologies="cycle", sizes=16))
    assert service.store.get_state(SAMPLED.family_hash()) is None
    # ... so the sampled query now recomputes cold rather than resuming.
    assert service.execute(SAMPLED.with_changes(samples=32)).tier == "miss"
