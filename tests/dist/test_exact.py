"""Tests for the exact orbit-weighted distribution."""

import math

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.dist.exact import (
    brute_force_round_distribution,
    exact_round_distribution,
)
from repro.errors import ConfigurationError
from repro.topology.complete import complete_graph
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import random_tree


class TestExactEqualsBruteForce:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(5), cycle_graph(6), path_graph(5), random_tree(6, seed=99)],
        ids=lambda graph: graph.name,
    )
    def test_joint_and_marginals_match(self, graph, largest_id_algorithm):
        exact = exact_round_distribution(graph, largest_id_algorithm)
        brute = brute_force_round_distribution(graph, largest_id_algorithm)
        assert exact.distribution == brute
        assert exact.distribution.total_weight == math.factorial(graph.n)


class TestCertificate:
    def test_class_count_times_weight_covers_the_space(self, largest_id_algorithm):
        result = exact_round_distribution(cycle_graph(6), largest_id_algorithm)
        certificate = result.certificate
        assert certificate.exact
        assert certificate.space_size == 720
        assert certificate.group_order == 12  # dihedral group of C6
        assert certificate.class_weight == certificate.group_order
        assert certificate.canonical_leaves * certificate.class_weight == 720
        assert certificate.total_weight == 720

    def test_certificate_serialises_to_plain_json(self, largest_id_algorithm):
        result = exact_round_distribution(cycle_graph(5), largest_id_algorithm)
        document = result.certificate.as_dict()
        assert document["exact"] is True
        assert document["space_size"] == 120
        assert document["canonical_leaves"] * document["class_weight"] == 120

    def test_full_symmetry_collapses_to_one_class(self, largest_id_algorithm):
        result = exact_round_distribution(complete_graph(5), largest_id_algorithm)
        certificate = result.certificate
        assert certificate.canonical_leaves == 1
        assert certificate.class_weight == math.factorial(5)
        assert result.distribution.total_weight == math.factorial(5)
        # On K5 every node stops at radius 1.
        assert result.distribution.max_distribution().support() == (1,)


class TestNodeMarginals:
    def test_marginals_carry_the_full_weight_per_position(self, largest_id_algorithm):
        graph = cycle_graph(6)
        result = exact_round_distribution(graph, largest_id_algorithm)
        for position in range(graph.n):
            marginal = result.distribution.node_marginal(position)
            assert marginal.total_weight == math.factorial(graph.n)

    def test_vertex_transitive_graphs_have_identical_marginals(
        self, largest_id_algorithm
    ):
        result = exact_round_distribution(cycle_graph(6), largest_id_algorithm)
        marginals = [
            result.distribution.node_marginal(v).weights() for v in range(6)
        ]
        assert all(marginal == marginals[0] for marginal in marginals)

    def test_asymmetric_positions_may_differ(self, largest_id_algorithm):
        # On a path the endpoints and the centre see very different worlds.
        result = exact_round_distribution(path_graph(5), largest_id_algorithm)
        endpoint = result.distribution.node_marginal(0)
        centre = result.distribution.node_marginal(2)
        assert endpoint.weights() != centre.weights()


class TestFeasibilityGuards:
    def test_node_cap(self, largest_id_algorithm):
        with pytest.raises(ConfigurationError, match="limited to"):
            exact_round_distribution(
                cycle_graph(8), largest_id_algorithm, max_nodes=6
            )

    def test_class_budget(self, largest_id_algorithm):
        with pytest.raises(ConfigurationError, match="canonical"):
            exact_round_distribution(
                path_graph(8), largest_id_algorithm, max_classes=100
            )

    def test_brute_force_node_cap(self, largest_id_algorithm):
        with pytest.raises(ConfigurationError, match="limited to"):
            brute_force_round_distribution(
                cycle_graph(10), largest_id_algorithm
            )
