"""Tests for the streaming estimators."""

import random
import statistics

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.dist.exact import exact_round_distribution
from repro.dist.sampling import (
    ExpectedMeasures,
    P2Quantile,
    StreamingMoments,
    estimate_expected_measures,
    sample_round_distribution,
)
from repro.errors import AnalysisError
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph


class TestStreamingMoments:
    def test_matches_the_statistics_module(self):
        rng = random.Random(11)
        values = [rng.uniform(-5, 5) for _ in range(500)]
        moments = StreamingMoments()
        for value in values:
            moments.update(value)
        assert moments.count == 500
        assert moments.mean == pytest.approx(statistics.fmean(values))
        assert moments.variance == pytest.approx(statistics.variance(values))
        assert moments.std_error == pytest.approx(
            statistics.stdev(values) / 500**0.5
        )

    def test_degenerate_counts(self):
        moments = StreamingMoments()
        assert moments.variance == 0.0 and moments.std_error == 0.0
        moments.update(3.0)
        assert moments.mean == 3.0 and moments.variance == 0.0

    def test_ci95_brackets_the_mean(self):
        moments = StreamingMoments()
        for value in (1.0, 2.0, 3.0):
            moments.update(value)
        low, high = moments.ci95()
        assert low < moments.mean < high


class TestP2Quantile:
    def test_small_samples_are_exact(self):
        sketch = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sketch.update(value)
        assert sketch.value == 3.0

    def test_tracks_the_true_quantile_of_a_uniform_stream(self):
        rng = random.Random(7)
        values = [rng.random() for _ in range(4000)]
        for p in (0.5, 0.9):
            sketch = P2Quantile(p)
            for value in values:
                sketch.update(value)
            exact = statistics.quantiles(values, n=100)[round(p * 100) - 1]
            assert sketch.value == pytest.approx(exact, abs=0.05)

    def test_constant_stream(self):
        sketch = P2Quantile(0.9)
        for _ in range(50):
            sketch.update(2.0)
        assert sketch.value == 2.0

    def test_validates_the_level_and_empty_reads(self):
        with pytest.raises(AnalysisError, match="quantile level"):
            P2Quantile(1.0)
        with pytest.raises(AnalysisError, match="no observations"):
            _ = P2Quantile(0.5).value


class TestSampleRoundDistribution:
    def test_same_seed_same_result(self, largest_id_algorithm):
        graph = cycle_graph(10)
        first = sample_round_distribution(graph, largest_id_algorithm, samples=32, seed=5)
        second = sample_round_distribution(graph, largest_id_algorithm, samples=32, seed=5)
        assert first == second

    def test_different_seeds_differ(self, largest_id_algorithm):
        graph = cycle_graph(10)
        first = sample_round_distribution(graph, largest_id_algorithm, samples=32, seed=5)
        second = sample_round_distribution(graph, largest_id_algorithm, samples=32, seed=6)
        assert first.distribution != second.distribution

    def test_distribution_counts_the_samples(self, largest_id_algorithm):
        result = sample_round_distribution(
            cycle_graph(8), largest_id_algorithm, samples=40, seed=1
        )
        assert result.samples == 40
        assert result.distribution.total_weight == 40
        assert result.average.count == 40
        # On the cycle the max node always sees half the ring.
        assert result.maximum.mean == 4.0
        assert result.maximum.std == 0.0

    def test_estimates_agree_with_exact_within_ci(self, largest_id_algorithm):
        graph = cycle_graph(7)
        exact = exact_round_distribution(graph, largest_id_algorithm)
        sampled = sample_round_distribution(
            graph, largest_id_algorithm, samples=400, seed=2
        )
        true_mean = exact.distribution.mean_average()
        assert abs(sampled.average.mean - true_mean) <= 4 * sampled.average.std_error

    def test_explicit_assignments_override_drawing(self, largest_id_algorithm):
        graph = cycle_graph(8)
        assignments = [random_assignment(8, seed=s) for s in range(6)]
        result = sample_round_distribution(
            graph, largest_id_algorithm, assignments=assignments
        )
        assert result.samples == 6
        assert result.seed is None

    def test_rejects_empty_inputs(self, largest_id_algorithm):
        graph = cycle_graph(6)
        with pytest.raises(AnalysisError, match="at least one assignment"):
            sample_round_distribution(graph, largest_id_algorithm, assignments=[])
        with pytest.raises(AnalysisError, match="samples must be positive"):
            sample_round_distribution(graph, largest_id_algorithm, samples=0)

    def test_as_dict_is_json_friendly(self, largest_id_algorithm):
        import json

        result = sample_round_distribution(
            cycle_graph(6), largest_id_algorithm, samples=8, seed=3
        )
        document = result.as_dict()
        assert json.loads(json.dumps(document)) == document
        assert document["distribution"]["kind"] == "round-distribution"
        assert document["average"]["count"] == 8


class TestExpectedMeasures:
    def test_unpacks_like_the_legacy_two_tuple(self, largest_id_algorithm):
        graph = cycle_graph(8)
        result = estimate_expected_measures(
            graph, largest_id_algorithm, samples=16, seed=1
        )
        assert isinstance(result, ExpectedMeasures)
        expected_avg, expected_max = result
        assert expected_avg == result.average.mean
        assert expected_max == result.maximum.mean
        assert len(result) == 2

    def test_carries_standard_errors(self, largest_id_algorithm):
        result = estimate_expected_measures(
            cycle_graph(8), largest_id_algorithm, samples=16, seed=1
        )
        assert result.average.std_error > 0
        assert result.average.ci95_low < result.average.mean < result.average.ci95_high

    def test_survives_copy_and_pickle(self, largest_id_algorithm):
        import copy
        import pickle

        result = estimate_expected_measures(
            cycle_graph(8), largest_id_algorithm, samples=8, seed=1
        )
        for clone in (copy.copy(result), pickle.loads(pickle.dumps(result))):
            assert tuple(clone) == tuple(result)
            assert clone.average == result.average
            assert clone.maximum == result.maximum
