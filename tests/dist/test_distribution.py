"""Tests for the distribution value types."""

import math

import pytest

from repro.dist.distribution import DiscreteDistribution, RoundDistribution, ascii_pmf
from repro.errors import AnalysisError


class TestDiscreteDistribution:
    def test_moments_match_the_definition(self):
        d = DiscreteDistribution.from_weights({0: 1, 1: 2, 2: 1})
        assert d.total_weight == 4
        assert d.mean() == 1.0
        assert d.variance() == pytest.approx(0.5)
        assert d.std() == pytest.approx(0.5**0.5)
        assert d.min() == 0 and d.max() == 2

    def test_pmf_sums_to_one(self):
        d = DiscreteDistribution.from_weights({1: 3, 2: 5, 7: 2})
        assert sum(d.pmf().values()) == pytest.approx(1.0)
        assert d.pmf()[2] == 0.5

    def test_quantiles_walk_the_cdf(self):
        d = DiscreteDistribution.from_weights({1: 1, 2: 1, 3: 1, 4: 1})
        assert d.quantile(0.25) == 1
        assert d.quantile(0.5) == 2
        assert d.quantile(0.75) == 3
        assert d.quantile(1.0) == 4
        assert d.cdf(2) == 0.5

    def test_quantile_exact_boundary_at_factorial_weights(self):
        # 0.55 * 9! rounds up in float; the boundary support value must
        # still win (cdf(1) == 0.55 exactly).
        d = DiscreteDistribution.from_weights({1: 199584, 2: 163296})
        assert d.total_weight == 362880  # 9!
        assert d.cdf(1) == 0.55
        assert d.quantile(0.55) == 1

    def test_quantile_level_validated(self):
        d = DiscreteDistribution.from_weights({1: 1})
        with pytest.raises(AnalysisError, match="quantile level"):
            d.quantile(0.0)
        with pytest.raises(AnalysisError, match="quantile level"):
            d.quantile(1.5)

    def test_rejects_empty_and_nonpositive_weights(self):
        with pytest.raises(AnalysisError, match="at least one"):
            DiscreteDistribution.from_weights({})
        with pytest.raises(AnalysisError, match="positive"):
            DiscreteDistribution.from_weights({1: 0})

    def test_pooled_sums_weights(self):
        a = DiscreteDistribution.from_weights({1: 2, 2: 2})
        b = DiscreteDistribution.from_weights({2: 4})
        pooled = DiscreteDistribution.pooled([a, b])
        assert pooled.weights() == {1: 2, 2: 6}
        assert pooled.total_weight == a.total_weight + b.total_weight

    def test_scaled_multiplies_weights_but_not_statistics(self):
        d = DiscreteDistribution.from_weights({1: 1, 3: 1})
        scaled = d.scaled(7)
        assert scaled.total_weight == 14
        assert scaled.mean() == d.mean()
        assert scaled.quantile(0.5) == d.quantile(0.5)

    def test_pairs_round_trip(self):
        d = DiscreteDistribution.from_weights({1.25: 3, 2.5: 1})
        assert DiscreteDistribution.from_pairs(d.as_pairs()) == d

    def test_summary_contains_the_headline_statistics(self):
        summary = DiscreteDistribution.from_weights({2: 1, 4: 3}).summary()
        assert set(summary) == {"mean", "std", "min", "median", "q90", "max"}
        assert summary["mean"] == 3.5
        assert summary["max"] == 4.0

    def test_ascii_pmf_draws_one_bar_per_support_point(self):
        art = ascii_pmf(DiscreteDistribution.from_weights({0: 1, 1: 3}), width=8)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[1].endswith("#" * 8)


class TestRoundDistribution:
    def _example(self):
        return RoundDistribution.from_counts(
            n=2,
            joint={(1, 2): 3, (2, 3): 1},
            node_marginals=[{1: 3, 2: 1}, {1: 4}],
        )

    def test_total_weight_and_means(self):
        d = self._example()
        assert d.total_weight == 4
        assert d.mean_max() == pytest.approx((1 * 3 + 2 * 1) / 4)
        assert d.mean_average() == pytest.approx((2 * 3 + 3 * 1) / (4 * 2))

    def test_scalar_marginals(self):
        d = self._example()
        assert d.max_distribution().weights() == {1: 3, 2: 1}
        assert d.sum_distribution().weights() == {2: 3, 3: 1}
        assert d.average_distribution().weights() == {1.0: 3, 1.5: 1}

    def test_node_marginals(self):
        d = self._example()
        assert d.node_marginal(0).weights() == {1: 3, 2: 1}
        assert d.node_marginal(1).weights() == {1: 4}
        with pytest.raises(AnalysisError, match="out of range"):
            d.node_marginal(2)

    def test_marginal_totals_must_match_the_joint(self):
        with pytest.raises(AnalysisError, match="different total weight"):
            RoundDistribution.from_counts(
                n=1, joint={(1, 1): 2}, node_marginals=[{1: 1}]
            )

    def test_inconsistent_joint_outcomes_rejected(self):
        # sum < max is impossible.
        with pytest.raises(AnalysisError, match="inconsistent joint outcome"):
            RoundDistribution.from_counts(n=3, joint={(2, 1): 1})
        # sum > n * max is impossible.
        with pytest.raises(AnalysisError, match="inconsistent joint outcome"):
            RoundDistribution.from_counts(n=2, joint={(1, 3): 1})

    def test_json_round_trip_preserves_everything(self):
        d = self._example()
        assert RoundDistribution.from_json(d.to_json()) == d
        document = d.as_dict()
        assert document["kind"] == "round-distribution"
        assert document["total_weight"] == 4

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(AnalysisError, match="not a round-distribution"):
            RoundDistribution.from_dict({"kind": "something-else"})

    def test_pooled_requires_matching_n(self):
        d = self._example()
        other = RoundDistribution.from_counts(n=3, joint={(1, 3): 1})
        with pytest.raises(AnalysisError, match="different n"):
            RoundDistribution.pooled([d, other])

    def test_pooled_sums_joint_and_marginals(self):
        d = self._example()
        pooled = RoundDistribution.pooled([d, d])
        assert pooled.total_weight == 8
        assert pooled.mean_average() == pytest.approx(d.mean_average())
        assert pooled.node_marginal(1).weights() == {1: 8}

    def test_scaled_keeps_statistics(self):
        d = self._example()
        scaled = d.scaled(math.factorial(4))
        assert scaled.total_weight == 4 * 24
        assert scaled.mean_max() == pytest.approx(d.mean_max())
