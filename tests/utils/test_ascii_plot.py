"""Tests for the ASCII plotting helper."""

import pytest

from repro.errors import AnalysisError
from repro.utils.ascii_plot import ascii_plot, plot_experiment_column


class TestAsciiPlot:
    def test_contains_markers_title_and_legend(self):
        text = ascii_plot([1, 2, 3, 4], {"avg": [1, 2, 3, 4]}, title="growth")
        assert text.splitlines()[0] == "growth"
        assert "*" in text
        assert "* avg" in text

    def test_multiple_series_use_distinct_markers(self):
        text = ascii_plot([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "* a" in text and "o b" in text
        assert "*" in text and "o" in text

    def test_monotone_series_places_extremes_in_corners(self):
        text = ascii_plot([0, 10], {"s": [0.0, 100.0]}, width=20, height=6)
        lines = [line for line in text.splitlines() if "|" in line]
        assert lines[0].rstrip().endswith("*")  # maximum at top right
        assert "*" in lines[-1][:14 + 1]  # minimum at bottom left

    def test_axis_labels_show_the_value_range(self):
        text = ascii_plot([2, 4, 8], {"s": [5.0, 7.0, 11.0]})
        assert "11" in text and "5" in text
        assert "2" in text and "8" in text

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([1, 2, 3], {"flat": [4.0, 4.0, 4.0]})
        assert "flat" in text

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot([1, 2], {})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot([1, 2, 3], {"s": [1, 2]})

    def test_tiny_grid_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot([1], {"s": [1]}, width=5, height=2)


class TestPlotExperimentColumn:
    def test_plots_columns_of_table_rows(self):
        rows = [{"n": 16, "avg": 2.5}, {"n": 32, "avg": 3.0}, {"n": 64, "avg": 3.5}]
        text = plot_experiment_column(rows, "n", ["avg"], title="E1")
        assert "E1" in text and "* avg" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(AnalysisError):
            plot_experiment_column([], "n", ["avg"])
