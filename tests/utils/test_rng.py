"""Tests for deterministic RNG management."""

import random

import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_none_seed_is_deterministic(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_same_int_seed_gives_same_stream(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_give_different_streams(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_existing_random_instance_is_passed_through(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    @pytest.mark.parametrize("bad", ["seed", 1.5, True])
    def test_rejects_invalid_seed_types(self, bad):
        with pytest.raises(TypeError):
            make_rng(bad)


class TestSpawnRngs:
    def test_spawns_requested_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawned_streams_are_deterministic(self):
        first = [rng.random() for rng in spawn_rngs(3, 4)]
        second = [rng.random() for rng in spawn_rngs(3, 4)]
        assert first == second

    def test_spawned_streams_are_mutually_distinct(self):
        values = [rng.random() for rng in spawn_rngs(3, 8)]
        assert len(set(values)) == 8

    def test_adding_repetitions_does_not_change_earlier_streams(self):
        short = [rng.random() for rng in spawn_rngs(9, 3)]
        long = [rng.random() for rng in spawn_rngs(9, 6)]
        assert long[:3] == short

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
