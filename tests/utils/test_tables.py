"""Tests for the plain-text table renderer."""

import pytest

from repro.utils.tables import Table, format_table


class TestFormatTable:
    def test_renders_header_and_rows_aligned(self):
        text = format_table([{"n": 1, "value": 10}, {"n": 200, "value": 3}])
        lines = text.splitlines()
        assert lines[0].startswith("n")
        assert "value" in lines[0]
        assert len(lines) == 4  # header, separator, two rows
        assert len({len(line) for line in lines}) == 1  # all lines same width

    def test_title_is_prepended(self):
        text = format_table([{"a": 1}], title="my table")
        assert text.splitlines()[0] == "my table"

    def test_empty_rows_render_placeholder(self):
        assert "(no rows)" in format_table([])

    def test_column_order_can_be_forced(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_floats_are_rounded_and_booleans_humanised(self):
        text = format_table([{"x": 0.123456, "ok": True}])
        assert "0.1235" in text
        assert "yes" in text

    def test_missing_values_render_empty(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"])
        assert text.splitlines()[-1].split("|")[1].strip() == ""


class TestTable:
    def test_add_row_and_len(self):
        table = Table(columns=("n", "avg"))
        table.add_row(n=4, avg=1.5)
        table.add_row(n=8, avg=2.0)
        assert len(table) == 2

    def test_add_row_rejects_unknown_columns(self):
        table = Table(columns=("n",))
        with pytest.raises(KeyError, match="unknown columns"):
            table.add_row(n=1, bogus=2)

    def test_column_extraction_preserves_order(self):
        table = Table(columns=("n", "avg"))
        table.add_row(n=4, avg=1.5)
        table.add_row(n=8, avg=2.0)
        assert table.column("n") == [4, 8]

    def test_column_rejects_unknown_name(self):
        table = Table(columns=("n",))
        with pytest.raises(KeyError):
            table.column("avg")

    def test_extend_validates_each_row(self):
        table = Table(columns=("n",))
        table.extend([{"n": 1}, {"n": 2}])
        assert len(table) == 2
        with pytest.raises(KeyError):
            table.extend([{"m": 3}])

    def test_str_contains_title_and_data(self):
        table = Table(columns=("n",), title="sizes")
        table.add_row(n=42)
        assert "sizes" in str(table)
        assert "42" in str(table)
