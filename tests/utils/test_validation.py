"""Tests for the argument-validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    require,
    require_non_negative_int,
    require_positive_int,
    require_probability,
)


class TestRequire:
    def test_passes_silently_when_condition_holds(self):
        require(True, "never raised")

    def test_raises_configuration_error_with_message(self):
        with pytest.raises(ConfigurationError, match="broken invariant"):
            require(False, "broken invariant")


class TestRequirePositiveInt:
    def test_accepts_and_returns_positive_integers(self):
        assert require_positive_int(3, "n") == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, "3", None, True])
    def test_rejects_non_positive_or_non_int(self, value):
        with pytest.raises(ConfigurationError, match="n must be"):
            require_positive_int(value, "n")


class TestRequireNonNegativeInt:
    @pytest.mark.parametrize("value", [0, 1, 10])
    def test_accepts_non_negative_integers(self, value):
        assert require_non_negative_int(value, "k") == value

    @pytest.mark.parametrize("value", [-1, 2.0, "0", False])
    def test_rejects_negatives_floats_strings_and_bools(self, value):
        with pytest.raises(ConfigurationError):
            require_non_negative_int(value, "k")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0, 0.5, 1, 0.999])
    def test_accepts_values_in_unit_interval(self, value):
        assert require_probability(value, "p") == pytest.approx(float(value))

    @pytest.mark.parametrize("value", [-0.1, 1.1, "high", None])
    def test_rejects_values_outside_unit_interval(self, value):
        with pytest.raises(ConfigurationError):
            require_probability(value, "p")
