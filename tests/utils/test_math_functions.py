"""Tests for the shared mathematical helpers."""

import math

import pytest

from repro.utils.math_functions import harmonic_number, log_star, power_tower


class TestLogStar:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (16, 3), (17, 4), (65536, 4), (65537, 5)],
    )
    def test_known_values_base_two(self, value, expected):
        assert log_star(value) == expected

    def test_monotone_over_wide_range(self):
        values = [log_star(n) for n in range(1, 3000)]
        assert values == sorted(values)

    def test_other_base(self):
        assert log_star(math.e, base=math.e) == 1
        assert log_star(math.e**math.e, base=math.e) == 2

    def test_rejects_base_at_most_one(self):
        with pytest.raises(ValueError):
            log_star(10, base=1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            log_star(float("nan"))


class TestPowerTower:
    def test_height_zero_is_one(self):
        assert power_tower(0) == 1.0

    @pytest.mark.parametrize(("height", "expected"), [(1, 2.0), (2, 4.0), (3, 16.0), (4, 65536.0)])
    def test_small_towers(self, height, expected):
        assert power_tower(height) == expected

    def test_inverse_of_log_star(self):
        for height in range(0, 5):
            assert log_star(power_tower(height)) == height

    def test_large_height_overflows_to_infinity(self):
        assert power_tower(10) == math.inf

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            power_tower(-1)


class TestHarmonicNumber:
    def test_first_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(25 / 12)

    def test_grows_like_log(self):
        assert harmonic_number(10_000) == pytest.approx(math.log(10_000) + 0.5772, abs=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)
