"""Run the doctest examples of the public core modules in tier-1.

The examples in :mod:`repro.core.measures` and :mod:`repro.core.adversary`
double as executable documentation (the docs build renders them verbatim),
so they must keep passing like any other test.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.adversary
import repro.core.measures

MODULES = (repro.core.adversary, repro.core.measures)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
