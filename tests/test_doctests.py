"""Run the doctest examples of the public core and dist modules in tier-1.

The examples in :mod:`repro.core.measures`, :mod:`repro.core.adversary` and
the :mod:`repro.dist` modules double as executable documentation (the docs
build renders them verbatim), so they must keep passing like any other test.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.adversary
import repro.core.measures
import repro.dist.distribution
import repro.dist.exact
import repro.dist.sampling

MODULES = (
    repro.core.adversary,
    repro.core.measures,
    repro.dist.distribution,
    repro.dist.exact,
    repro.dist.sampling,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
