"""Tests for the command-line interface."""

import pytest

from repro.cli import ID_FAMILIES, TOPOLOGIES, build_parser, main
from repro.errors import ConfigurationError


class TestParser:
    def test_no_arguments_prints_the_summary_and_exits_zero(self, capsys):
        assert main([]) == 0
        output = capsys.readouterr().out
        assert "usage: repro" in output
        for subcommand in ("simulate", "search", "sweep", "dist", "query"):
            assert subcommand in output

    def test_version_flag_prints_the_library_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.algorithm == "largest-id"
        assert args.n == 64
        assert args.topology == "cycle"
        assert args.ids == "random"

    def test_unknown_topology_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--topology", "hypercube"])


class TestListCommands:
    def test_list_algorithms_prints_registered_names(self, capsys):
        assert main(["list-algorithms"]) == 0
        output = capsys.readouterr().out
        assert "largest-id" in output
        assert "cole-vishkin" in output

    def test_list_experiments_prints_the_index(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "E1:" in output and "E12:" in output and "E13:" in output


class TestSimulate:
    def test_simulate_largest_id_on_a_cycle(self, capsys):
        assert main(["simulate", "--algorithm", "largest-id", "--n", "32", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "classic measure  : 16" in output
        assert "output certified : yes" in output

    def test_simulate_round_algorithm(self, capsys):
        assert main(["simulate", "--algorithm", "cole-vishkin", "--n", "16"]) == 0
        output = capsys.readouterr().out
        assert "average measure" in output

    def test_simulate_on_other_topologies(self, capsys):
        assert main(["simulate", "--topology", "random-tree", "--n", "20"]) == 0
        assert "classic measure" in capsys.readouterr().out

    def test_simulate_with_worst_case_ids(self, capsys):
        assert main(["simulate", "--ids", "worst-largest-id", "--n", "32"]) == 0
        output = capsys.readouterr().out
        assert "classic measure  : 16" in output

    def test_every_registered_id_family_builds_valid_assignments(self):
        for family, builder in ID_FAMILIES.items():
            ids = builder(12, 1)
            assert len(set(ids.identifiers())) == 12, family

    def test_every_registered_topology_builds_connected_graphs(self):
        for name, builder in TOPOLOGIES.items():
            graph = builder(12, 1)
            assert graph.is_connected(), name


class TestRunExperiment:
    def test_runs_a_small_experiment_and_prints_its_table(self, capsys):
        assert main(["run-experiment", "E2", "--small"]) == 0
        output = capsys.readouterr().out
        assert "E2" in output and "A000788" in output

    def test_experiment_id_is_case_insensitive(self, capsys):
        assert main(["run-experiment", "e2", "--small"]) == 0
        assert "A000788" in capsys.readouterr().out

    def test_plot_option_adds_an_ascii_plot(self, capsys):
        assert main(["run-experiment", "E2", "--small", "--plot", "p", "a(p)"]) == 0
        output = capsys.readouterr().out
        assert "a(p)" in output
        assert "+---" in output  # the plot's x-axis

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            main(["run-experiment", "E99"])


class TestSearch:
    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.adversary == "branch-and-bound"
        assert args.objective == "average"
        assert args.n == 8

    def test_exact_search_prints_a_certificate(self, capsys):
        assert main(["search", "--topology", "cycle", "--n", "7"]) == 0
        output = capsys.readouterr().out
        assert "exact            : True" in output
        assert "'group_order': 14" in output
        assert "witness ids" in output

    def test_portfolio_search_reports_strategies(self, capsys):
        assert (
            main(["search", "--n", "10", "--adversary", "portfolio", "--seed", "2"])
            == 0
        )
        output = capsys.readouterr().out
        assert "exact            : False" in output
        assert "hill-climb" in output

    def test_legacy_adversaries_remain_available(self, capsys):
        assert main(["search", "--n", "6", "--adversary", "exhaustive"]) == 0
        assert "exact            : True" in capsys.readouterr().out

    def test_unknown_adversary_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--adversary", "oracle"])


class TestGap:
    def test_prints_the_headline_numbers(self, capsys):
        assert main(["gap", "--n", "128"]) == 0
        output = capsys.readouterr().out
        assert "classic measure 64" in output
        assert "gap" in output


class TestDist:
    def test_dist_defaults(self):
        args = build_parser().parse_args(["dist"])
        assert args.topologies == "cycle"
        assert args.methods == "exact"
        assert args.samples == 256

    def test_exact_dist_covers_n_factorial(self, capsys):
        assert main(["dist", "--topologies", "cycle", "--sizes", "6"]) == 0
        output = capsys.readouterr().out
        assert "720" in output  # total weight 6!
        assert "avg_mean" in output

    def test_exact_and_sampled_methods_share_the_table(self, capsys):
        assert (
            main(
                [
                    "dist",
                    "--topologies", "cycle",
                    "--sizes", "6",
                    "--methods", "exact,sample",
                    "--samples", "16",
                    "--seed", "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "exact" in output and "sample" in output

    def test_plot_prints_a_pmf(self, capsys):
        assert main(["dist", "--sizes", "5", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "pmf of the average measure" in output
        assert "#" in output

    def test_dist_writes_a_json_document(self, capsys, tmp_path):
        out = tmp_path / "dist.json"
        assert (
            main(["dist", "--sizes", "6", "--output", str(out)])
            == 0
        )
        import json

        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["kind"] == "repro-dist"
        assert document["version"] == 1
        assert document["rows"][0]["total_weight"] == 720
        assert document["aggregates"][0]["method"] == "exact"

    def test_dist_output_round_trips_through_both_loaders(self, capsys, tmp_path):
        out = tmp_path / "dist.json"
        assert main(["dist", "--sizes", "5", "--output", str(out)]) == 0
        from repro.api.results import Result
        from repro.engine.campaign import load_dist_rows

        rows = load_dist_rows(str(out))
        adopted = Result.load(str(out))
        assert adopted.mode == "distribution"
        assert list(adopted.rows) == rows
        assert adopted.rows[0]["total_weight"] == 120

    def test_dist_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError, match="--sizes"):
            main(["dist", "--sizes", "six"])

    def test_dist_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError, match="unknown distribution method"):
            main(["dist", "--methods", "oracle"])


class TestSweep:
    def test_sweep_prints_rows_for_the_full_grid(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--topologies", "cycle,path",
                    "--sizes", "6,8",
                    "--algorithms", "largest-id",
                    "--adversaries", "random-search",
                    "--samples", "3",
                    "--seed", "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "cache_hit_rate" in output
        assert output.count("largest-id") == 4

    def test_sweep_writes_json_rows(self, capsys, tmp_path):
        out = tmp_path / "rows.json"
        assert (
            main(
                [
                    "sweep",
                    "--topologies", "cycle",
                    "--sizes", "6",
                    "--adversaries", "rotation",
                    "--output", str(out),
                ]
            )
            == 0
        )
        from repro.engine.campaign import load_rows

        rows = load_rows(str(out))
        assert len(rows) == 1
        assert rows[0]["adversary"] == "rotation"

    def test_sweep_output_round_trips_through_both_loaders(self, capsys, tmp_path):
        out = tmp_path / "rows.json"
        assert (
            main(["sweep", "--sizes", "6", "--adversaries", "rotation", "--output", str(out)])
            == 0
        )
        import json

        from repro.api.results import Result
        from repro.engine.campaign import load_rows

        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["kind"] == "repro-sweep"
        assert document["version"] == 1
        rows = load_rows(str(out))
        adopted = Result.load(str(out))
        assert adopted.mode == "sweep"
        assert list(adopted.rows) == rows

    def test_sweep_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError, match="--sizes"):
            main(["sweep", "--sizes", "six"])

    def test_sweep_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            main(["sweep", "--topologies", "hypercube"])


class TestQueryCommand:
    def test_runs_the_example_spec_end_to_end(self, capsys, tmp_path):
        from pathlib import Path

        spec = Path(__file__).resolve().parent.parent / "examples" / "spec.json"
        out = tmp_path / "out.json"
        assert main(["query", "--spec", str(spec), "--output", str(out)]) == 0
        output = capsys.readouterr().out
        assert "mode     : sweep" in output
        assert "exact    : True" in output
        import json

        from repro.api.results import Result

        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["kind"] == "repro-result"
        assert document["version"] == 1
        result = Result.load(str(out))
        assert result.mode == "sweep"
        assert result.exact is True
        assert len(result.rows) == 4
        assert result.query["kind"] == "repro-query"

    def test_simulate_spec_from_disk(self, capsys, tmp_path):
        from repro.api.query import Query

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            Query(mode="simulate", topologies="cycle", sizes=6).to_json(),
            encoding="utf-8",
        )
        assert main(["query", "--spec", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "mode     : simulate" in output
        assert "classic" in output

    def test_rejects_a_non_query_document(self, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a repro-query"):
            main(["query", "--spec", str(spec_path)])


class TestQueryProfiling:
    @pytest.fixture(autouse=True)
    def _obs_isolation(self):
        from repro.obs import metrics, spans

        state = spans._state
        yield
        spans._state = state
        spans.reset_spans()
        metrics.reset_metrics()

    def test_profile_and_trace_end_to_end(self, capsys, tmp_path):
        import json
        from pathlib import Path

        spec = Path(__file__).resolve().parent.parent / "examples" / "spec.json"
        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "query",
                    "--spec",
                    str(spec),
                    "--profile",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "per-query span profile" in output
        assert "api.query" in output
        assert "search.branch_bound" in output
        assert f"trace events to {trace_path}" in output
        document = json.loads(trace_path.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert events, "trace must carry events"
        names = {event["name"] for event in events}
        assert "api.query" in names
        assert "engine.search_cell" in names
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

    def test_profile_wall_time_coheres_with_span_tree(self, capsys, tmp_path):
        # Acceptance check: the span-tree total accounts for the summed
        # wall time within 10% — the root span encloses every cell, so it
        # can only exceed the per-row sum (by scheduling noise), never
        # undershoot it by more than the tolerance.
        import json
        from pathlib import Path

        from repro.api.results import Result

        spec = Path(__file__).resolve().parent.parent / "examples" / "spec.json"
        out = tmp_path / "result.json"
        assert (
            main(["query", "--spec", str(spec), "--profile", "--output", str(out)])
            == 0
        )
        capsys.readouterr()
        result = Result.load(str(out))
        assert result.profile is not None
        wall = result.timing["wall_time_s"]
        total = result.profile["total_s"]
        assert wall <= total * 1.10 + 1e-6
        tree_total = sum(node["total_s"] for node in result.profile["spans"])
        assert tree_total == pytest.approx(total, rel=1e-9)
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["profile"]["spans"][0]["name"] == "api.query"

    def test_plain_query_prints_timing_without_spans(self, capsys, tmp_path):
        from repro.api.query import Query
        from repro.obs import spans

        spans.disable()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            Query(mode="simulate", topologies="cycle", sizes=6).to_json(),
            encoding="utf-8",
        )
        assert main(["query", "--spec", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "wall time:" in output
        assert "per-query span profile" not in output


class TestWorkerResolution:
    def test_explicit_flag_beats_the_environment(self, monkeypatch):
        from repro.cli import _resolve_workers_flag

        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert _resolve_workers_flag(3) == 3

    def test_environment_beats_the_default(self, monkeypatch):
        from repro.cli import _resolve_workers_flag

        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert _resolve_workers_flag(None) == 2
        monkeypatch.delenv("REPRO_WORKERS")
        assert _resolve_workers_flag(None) == 1

    def test_invalid_environment_value_is_rejected(self, monkeypatch):
        from repro.cli import _resolve_workers_flag

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            _resolve_workers_flag(None)

    def test_workers_flags_default_to_unset(self):
        parser = build_parser()
        assert parser.parse_args(["dist"]).workers is None
        assert parser.parse_args(["sweep"]).workers is None
        assert parser.parse_args(["serve"]).max_parallel is None
        assert parser.parse_args(["serve"]).store_max_objects is None
        assert parser.parse_args(["serve"]).store_max_bytes is None

    def test_dist_honours_repro_workers_end_to_end(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert (
            main(
                [
                    "dist",
                    "--topologies",
                    "cycle",
                    "--sizes",
                    "10,12",
                    "--methods",
                    "sample",
                    "--samples",
                    "8",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        assert "cycle" in capsys.readouterr().out
