"""Tests for the dynamic-network label-repair application."""

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.applications.dynamic_networks import (
    DynamicRepairSimulator,
    average_repair_cost,
    expected_repair_cost,
)
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError, IdentifierError
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph


@pytest.fixture
def simulator():
    graph = cycle_graph(24)
    ids = random_assignment(24, seed=3)
    return DynamicRepairSimulator(graph, ids, LargestIdAlgorithm())


class TestApplyChange:
    def test_change_updates_the_assignment_and_trace(self, simulator):
        report = simulator.apply_change(5, new_identifier=100)
        assert simulator.ids[5] == 100
        assert report.changed_position == 5
        assert report.new_identifier == 100
        assert certify("largest-id", simulator.graph, simulator.ids, simulator.trace)

    def test_affected_nodes_contain_the_changed_position(self, simulator):
        report = simulator.apply_change(7, new_identifier=200)
        assert 7 in report.affected_positions
        assert report.total_work == len(report.affected_positions)
        assert report.affected_count == report.total_work

    def test_promoting_a_node_to_global_maximum_invalidates_the_old_leader(self, simulator):
        old_leader = simulator.ids.argmax_position()
        target = (old_leader + 5) % simulator.graph.n
        report = simulator.apply_change(target, new_identifier=1000)
        assert simulator.trace.outputs_by_position()[target] is True
        assert simulator.trace.outputs_by_position()[old_leader] is False
        assert old_leader in report.affected_positions

    def test_affected_set_matches_the_ball_membership_definition(self, simulator):
        before = simulator.trace
        changed = 11
        report = simulator.apply_change(changed, new_identifier=500)
        after = simulator.trace
        graph = simulator.graph
        expected = {
            v
            for v in graph.positions()
            if graph.distance(v, changed) <= before.radii()[v]
            or graph.distance(v, changed) <= after.radii()[v]
        }
        assert set(report.affected_positions) == expected

    def test_colliding_identifier_rejected(self, simulator):
        existing = simulator.ids[3]
        with pytest.raises(IdentifierError):
            simulator.apply_change(9, new_identifier=existing)

    def test_out_of_range_position_rejected(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.apply_change(99, new_identifier=1000)

    def test_repair_latency_is_the_largest_affected_radius(self, simulator):
        report = simulator.apply_change(2, new_identifier=300)
        radii = simulator.trace.radii()
        assert report.repair_latency == max(radii[v] for v in report.affected_positions)


class TestChurn:
    def test_random_churn_produces_one_report_per_event(self, simulator):
        reports = simulator.random_churn(6, seed=1)
        assert len(reports) == 6
        assert all(report.total_work >= 1 for report in reports)

    def test_churn_keeps_identifiers_distinct(self, simulator):
        simulator.random_churn(10, seed=2)
        ids = simulator.ids.identifiers()
        assert len(set(ids)) == len(ids)

    def test_average_repair_cost(self, simulator):
        reports = simulator.random_churn(5, seed=3)
        assert average_repair_cost(reports) == pytest.approx(
            sum(r.total_work for r in reports) / 5
        )

    def test_average_repair_cost_requires_reports(self):
        with pytest.raises(ConfigurationError):
            average_repair_cost([])


class TestExpectedRepairCost:
    def test_equals_mean_ball_size_of_used_radii(self):
        graph = cycle_graph(16)
        ids = random_assignment(16, seed=5)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        expected = sum(
            len(graph.ball_positions(v, trace.radii()[v])) for v in graph.positions()
        ) / 16
        assert expected_repair_cost(trace, graph) == pytest.approx(expected)

    def test_tracks_twice_the_average_radius_on_cycles(self):
        graph = cycle_graph(33)  # odd length: the wrap-around term vanishes
        ids = random_assignment(33, seed=6)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert expected_repair_cost(trace, graph) == pytest.approx(2 * trace.average_radius + 1)
