"""Tests for the parallel-simulation scheduler."""

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.applications.parallel_sim import (
    ScheduleResult,
    list_schedule,
    naive_makespan,
    simulation_speedup,
)
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph


class TestListSchedule:
    def test_single_processor_makespan_is_total_work(self):
        result = list_schedule([3, 1, 4, 1, 5], processors=1)
        assert result.makespan == 14
        assert result.total_work == 14

    def test_enough_processors_makespan_is_longest_job(self):
        result = list_schedule([3, 1, 4, 1, 5], processors=5)
        assert result.makespan == 5

    def test_two_processors_balance_the_load(self):
        result = list_schedule([4, 3, 3, 2], processors=2)
        assert result.makespan == 6  # {4,2} and {3,3}

    def test_graham_bound_holds(self):
        durations = [7, 3, 3, 2, 2, 2, 1]
        for processors in (2, 3, 4):
            result = list_schedule(durations, processors)
            assert result.makespan <= sum(durations) / processors + max(durations)

    def test_longest_first_never_worse_than_submission_order(self):
        durations = [1, 1, 1, 1, 9, 9]
        arbitrary = list_schedule(durations, processors=2).makespan
        lpt = list_schedule(durations, processors=2, longest_first=True).makespan
        assert lpt <= arbitrary

    def test_finish_times_and_assignment_are_consistent(self):
        durations = [2, 4, 1, 3]
        result = list_schedule(durations, processors=2)
        assert isinstance(result, ScheduleResult)
        assert len(result.finish_times) == len(durations)
        assert len(result.assignment) == len(durations)
        assert set(result.assignment) <= {0, 1}
        assert max(result.finish_times) == result.makespan

    def test_utilisation_is_one_on_perfectly_balanced_loads(self):
        result = list_schedule([2, 2, 2, 2], processors=2)
        assert result.utilisation == pytest.approx(1.0)

    def test_empty_job_list_rejected(self):
        with pytest.raises(ConfigurationError):
            list_schedule([], processors=2)

    def test_negative_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            list_schedule([1, -2], processors=2)


class TestNaiveMakespan:
    def test_formula(self):
        assert naive_makespan([1, 2, 3, 4, 5], processors=2) == 3 * 5

    def test_single_batch(self):
        assert naive_makespan([1, 2], processors=4) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            naive_makespan([], processors=2)


class TestSimulationSpeedup:
    def test_speedup_reflects_the_average_to_max_gap(self):
        graph = cycle_graph(128)
        ids = random_assignment(128, seed=1)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        speedup = simulation_speedup(trace, processors=8)
        assert speedup > 2.0

    def test_speedup_is_at_least_one(self):
        graph = cycle_graph(16)
        ids = random_assignment(16, seed=2)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert simulation_speedup(trace, processors=3) >= 1.0


class TestSimulateAndSchedule:
    def test_runs_the_engine_and_schedules_the_radii(self):
        from repro.algorithms.largest_id import LargestIdAlgorithm
        from repro.applications.parallel_sim import simulate_and_schedule
        from repro.model.identifiers import random_assignment
        from repro.topology.cycle import cycle_graph

        graph = cycle_graph(32)
        ids = random_assignment(32, seed=3)
        trace, schedule, speedup = simulate_and_schedule(
            graph, ids, LargestIdAlgorithm(), processors=4
        )
        assert trace.n == 32
        assert schedule.processors == 4
        durations = [max(1, radius) for radius in trace.radii().values()]
        assert schedule.makespan >= max(durations)
        assert speedup >= 1.0

    def test_shared_runner_is_reused(self):
        from repro.algorithms.largest_id import LargestIdAlgorithm
        from repro.applications.parallel_sim import simulate_and_schedule
        from repro.engine.cache import DecisionCache
        from repro.engine.frontier import FrontierRunner
        from repro.model.identifiers import random_assignment
        from repro.topology.cycle import cycle_graph

        graph = cycle_graph(16)
        algorithm = LargestIdAlgorithm()
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        ids = random_assignment(16, seed=1)
        first = simulate_and_schedule(graph, ids, algorithm, 4, runner=runner)
        second = simulate_and_schedule(graph, ids, algorithm, 4, runner=runner)
        assert first[0].radii() == second[0].radii()
        assert runner.cache.stats.hits > 0
