"""Coverage gate: every registered algorithm compiles to a vectorised rule.

The registry is the public surface experiments and the campaign engine
draw algorithms from; an algorithm that silently falls back to the
decide-backed ``runner-table`` rule loses the batch kernel's throughput
everywhere at once.  This gate fails the moment a registered algorithm —
current or future — stops providing a vectorised rule on the reference
instances it supports (ring algorithms are exempt from the tree instance,
but every name must vectorise on at least one reference graph).
"""

import pytest

from repro.algorithms.registry import algorithm_registry
from repro.engine.campaign import make_ball_algorithm
from repro.kernel import compile_instance
from repro.topology.cycle import cycle_graph
from repro.topology.random_graphs import random_tree

#: The reference instances of the coverage gate: one cycle, one tree.
REFERENCE_GRAPHS = [
    ("cycle-7", cycle_graph(7)),
    ("random-tree-7", random_tree(7, seed=5)),
]


@pytest.mark.parametrize("name", sorted(algorithm_registry()))
def test_registered_algorithm_compiles_to_a_vectorized_rule(name):
    tested = []
    for label, graph in REFERENCE_GRAPHS:
        algorithm = make_ball_algorithm(name, graph.n)
        if not algorithm.supports_graph(graph):
            continue
        instance = compile_instance(graph, algorithm)
        context = f"{name} on {label} selected {instance.describe()['rule']!r}"
        assert instance.vectorized, context
        assert instance.describe()["rule"] != "runner-table", context
        tested.append(label)
    assert tested, f"{name} supports no reference graph; extend REFERENCE_GRAPHS"
