"""Sharded scale execution: rule parity, registry hooks, probe surface."""

import pytest

from repro.algorithms.registry import algorithm_registry
from repro.engine.campaign import make_ball_algorithm
from repro.kernel import (
    SCALE_ALGORITHMS,
    MaxScanScaleRule,
    ShardedKernelExecutor,
    compile_instance,
    run_scale_probe,
    scale_rule_for,
)
from repro.kernel.shard import scale_row_ids
from repro.topology.stream import STREAM_TOPOLOGIES, build_csr


class TestScaleRuleParity:
    @pytest.mark.parametrize("topology", STREAM_TOPOLOGIES)
    def test_scale_radii_match_the_compiled_kernel(self, topology):
        """The plan-free early-stop BFS equals the plan-table kernel."""
        csr = build_csr(topology, 19, seed=4)
        rule = scale_rule_for(make_ball_algorithm("largest-id", 19), csr)
        instance = compile_instance(csr.to_graph(), make_ball_algorithm("largest-id", 19))
        for row_seed in range(4):
            ids = scale_row_ids(19, 7, row_seed)
            expected = instance.batch_radii([tuple(ids)])[0]
            assert tuple(rule.row_radii(ids, 0, 19)) == expected

    def test_row_stats_fold_the_full_row(self):
        csr = build_csr("cycle", 12)
        rule = MaxScanScaleRule(csr)
        ids = scale_row_ids(12, 3, 0)
        radii = rule.row_radii(ids, 0, 12)
        total, largest = rule.row_stats(ids, 0, 12)
        assert total == sum(radii)
        assert largest == max(radii)

    def test_partial_center_ranges_compose(self):
        csr = build_csr("random-tree", 15, seed=9)
        rule = MaxScanScaleRule(csr)
        ids = scale_row_ids(15, 11, 2)
        whole = rule.row_radii(ids, 0, 15)
        assert rule.row_radii(ids, 0, 7) + rule.row_radii(ids, 7, 15) == whole


class TestRegistryHooks:
    def test_scale_algorithms_mirror_the_compile_hook(self):
        """SCALE_ALGORITHMS and compile_scale_rule must agree, per name."""
        csr = build_csr("cycle", 8)
        for name in sorted(algorithm_registry()):
            algorithm = make_ball_algorithm(name, 8)
            rule = algorithm.compile_scale_rule(csr)
            if name in SCALE_ALGORITHMS:
                assert rule is not None, f"{name} lost its scale rule"
            else:
                assert rule is None, f"{name} must be added to SCALE_ALGORITHMS"

    def test_unsupported_algorithms_are_rejected(self):
        from repro.errors import ConfigurationError

        csr = build_csr("cycle", 8)
        with pytest.raises(ConfigurationError):
            scale_rule_for(make_ball_algorithm("greedy-mis", 8), csr)


class TestShardedExecutor:
    def test_sample_measures_row_count_and_determinism(self):
        csr = build_csr("cycle", 32)
        executor = ShardedKernelExecutor(csr, make_ball_algorithm("largest-id", 32), center_chunk=10)
        stats = executor.sample_measures(3, seed=5)
        assert len(stats) == 3
        assert stats == executor.sample_measures(3, seed=5)
        for row_stats in stats:
            assert row_stats.max_radius == 16  # the cycle's eccentricity
            assert row_stats.average_radius == row_stats.sum_radius / 32

    def test_batch_radii_matches_the_compiled_kernel(self):
        csr = build_csr("gnp", 14, seed=6)
        executor = ShardedKernelExecutor(csr, make_ball_algorithm("largest-id", 14), center_chunk=5)
        instance = compile_instance(
            csr.to_graph(), make_ball_algorithm("largest-id", 14)
        )
        rows = [tuple(scale_row_ids(14, 1, index)) for index in range(3)]
        assert executor.batch_radii(rows) == instance.batch_radii(rows)

    def test_describe_reports_the_shard_grid(self):
        csr = build_csr("cycle", 100)
        executor = ShardedKernelExecutor(
            csr,
            make_ball_algorithm("largest-id", 100),
            workers=2,
            row_block=3,
            center_chunk=40,
        )
        description = executor.describe()
        assert description["workers"] == 2
        assert description["row_block"] == 3
        assert description["center_chunk"] == 40
        assert description["topology"]["n"] == 100
        assert len(executor._center_ranges()) == 3  # ceil(100 / 40)


class TestScaleProbe:
    def test_probe_reports_the_full_surface(self):
        probe = run_scale_probe("cycle", 64, samples=2, seed=3)
        for key in (
            "topology",
            "n",
            "m",
            "algorithm",
            "samples",
            "seed",
            "workers",
            "row_block",
            "center_chunk",
            "build_s",
            "elapsed_s",
            "nodes_per_s",
            "peak_rss_bytes",
            "avg_mean",
            "max_mean",
            "rule",
        ):
            assert key in probe, key
        assert probe["n"] == 64
        assert probe["max_mean"] == 32.0
        assert probe["nodes_per_s"] > 0
        assert probe["peak_rss_bytes"] > 0
