"""Backend selection: REPRO_KERNEL override, degradation, numpy isolation."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.kernel import (
    KERNEL_BACKENDS,
    active_backend,
    numpy_available,
    resolve_backend,
)

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


class TestResolution:
    def test_known_backends(self):
        assert set(KERNEL_BACKENDS) == {"numpy", "python"}
        assert active_backend() in KERNEL_BACKENDS

    def test_none_resolves_to_the_active_default(self):
        assert resolve_backend(None) == active_backend()

    def test_python_always_resolves(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("  PYTHON ") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_numpy_resolution_matches_availability(self):
        if numpy_available():
            assert resolve_backend("numpy") == "numpy"
        elif os.environ.get("REPRO_KERNEL", "").strip().lower() == "python":
            # Forced-stdlib mode reports numpy unavailable *by policy* (the
            # default path must never import it), but an explicit
            # per-instance override may still resolve when numpy exists.
            try:
                assert resolve_backend("numpy") == "numpy"
            except ConfigurationError:
                pass  # and raises cleanly when numpy is genuinely missing
        else:
            with pytest.raises(ConfigurationError, match="numpy"):
                resolve_backend("numpy")


def _run_subprocess(code: str, **env_overrides) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )


class TestEnvironmentOverride:
    def test_python_mode_never_imports_numpy(self):
        # The acceptance guarantee: with REPRO_KERNEL=python, a full batch
        # evaluation through *every* registered algorithm's vectorised rule
        # must not pull numpy into the process — the stdlib paths of the
        # cone and cv-ring rules have to be genuinely stdlib.
        code = (
            "import sys\n"
            "from repro.kernel import compile_instance, simulate_batch, active_backend\n"
            "from repro.algorithms.registry import algorithm_registry\n"
            "from repro.engine.campaign import make_ball_algorithm\n"
            "from repro.topology.cycle import cycle_graph\n"
            "from repro.model.identifiers import random_assignment\n"
            "assert active_backend() == 'python', active_backend()\n"
            "graph = cycle_graph(8)\n"
            "rows = [random_assignment(8, seed=s).identifiers() for s in range(32)]\n"
            "for name in sorted(algorithm_registry()):\n"
            "    instance = compile_instance(graph, make_ball_algorithm(name, 8))\n"
            "    assert instance.vectorized, name\n"
            "    assert len(simulate_batch(instance, rows)) == 32, name\n"
            "assert 'numpy' not in sys.modules, 'numpy leaked into the python backend'\n"
            "print('ok')\n"
        )
        result = _run_subprocess(code, REPRO_KERNEL="python")
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"

    def test_invalid_value_fails_loudly(self):
        # Importing stays cheap (no resolution); the first kernel use
        # surfaces the configuration error.
        code = (
            "import repro.kernel\n"
            "repro.kernel.active_backend()\n"
        )
        result = _run_subprocess(code, REPRO_KERNEL="rust")
        assert result.returncode != 0
        assert "REPRO_KERNEL" in result.stderr

    def test_importing_the_library_does_not_import_numpy(self):
        code = (
            "import sys\n"
            "import repro\n"
            "import repro.kernel\n"
            "assert 'numpy' not in sys.modules, 'import-time numpy probe'\n"
            "print('ok')\n"
        )
        result = _run_subprocess(code)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_mode_selects_numpy(self):
        code = (
            "from repro.kernel import active_backend\n"
            "assert active_backend() == 'numpy', active_backend()\n"
            "print('ok')\n"
        )
        result = _run_subprocess(code, REPRO_KERNEL="numpy")
        assert result.returncode == 0, result.stderr

    def test_version_flag_reports_the_backend(self):
        code = (
            "from repro.cli import main\n"
            "try:\n"
            "    main(['--version'])\n"
            "except SystemExit:\n"
            "    pass\n"
        )
        result = _run_subprocess(code, REPRO_KERNEL="python")
        assert result.returncode == 0, result.stderr
        assert "kernel backend: python" in result.stdout
