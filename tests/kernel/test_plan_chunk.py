"""Chunked centre plans: bounded residency, eager parity, compile guards."""

import pytest

from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.algorithm import FunctionBallAlgorithm
from repro.errors import ConfigurationError
from repro.kernel import compile_instance, numpy_available, simulate_batch
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.random_graphs import random_tree

BACKENDS = ("python",) + (("numpy",) if numpy_available() else ())


def _rows(n, count, base_seed=0):
    return [
        random_assignment(n, seed=base_seed + draw).identifiers()
        for draw in range(count)
    ]


class TestChunkedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("plan_chunk", [1, 3, 5, 64])
    def test_chunked_radii_match_eager(self, backend, plan_chunk):
        graph = cycle_graph(11)
        algorithm = LargestIdAlgorithm()
        rows = _rows(11, 8)
        eager = compile_instance(graph, algorithm, backend=backend)
        chunked = compile_instance(
            graph, algorithm, backend=backend, plan_chunk=plan_chunk
        )
        assert simulate_batch(chunked, rows) == simulate_batch(eager, rows)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunked_outputs_match_eager(self, backend):
        graph = random_tree(9, seed=3)
        algorithm = LargestIdAlgorithm()
        rows = _rows(9, 6, base_seed=50)
        eager = compile_instance(graph, algorithm, backend=backend)
        chunked = compile_instance(graph, algorithm, backend=backend, plan_chunk=2)
        assert chunked._vector_rule.batch_radii_outputs(rows) == (
            eager._vector_rule.batch_radii_outputs(rows)
        )


class TestPlanResidency:
    def test_peak_resident_plans_never_exceed_the_chunk(self):
        graph = cycle_graph(17)
        instance = compile_instance(graph, LargestIdAlgorithm(), plan_chunk=4)
        simulate_batch(instance, _rows(17, 5))
        stats = instance.plan_stats.as_dict()
        assert stats["peak_resident"] <= 4
        # Every batch rebuilds every chunk, so far more plans were built
        # than were ever resident — the memory bound is the point.
        assert stats["built"] >= 17

    def test_eager_instances_keep_all_plans_resident(self):
        graph = cycle_graph(9)
        instance = compile_instance(graph, LargestIdAlgorithm())
        assert instance.plan_stats.as_dict()["peak_resident"] == 9

    def test_describe_reports_the_plan_mode_and_bytes(self):
        graph = cycle_graph(13)
        eager = compile_instance(graph, LargestIdAlgorithm())
        chunked = compile_instance(graph, LargestIdAlgorithm(), plan_chunk=3)
        eager_description = eager.describe()
        chunked_description = chunked.describe()
        assert eager_description["plan_mode"] == "eager"
        assert chunked_description["plan_mode"] == "chunked"
        assert chunked_description["plan_chunk"] == 3
        # A 3-centre chunk holds a fraction of the full plan tables.
        assert 0 < chunked_description["plan_bytes"] < eager_description["plan_bytes"]


class TestCompileGuards:
    def test_plan_chunk_requires_a_chunk_capable_rule(self):
        # An opaque FunctionBallAlgorithm compiles no kernel rule, so the
        # fallback would need the full plan tables — rejected up front.
        algorithm = FunctionBallAlgorithm(
            GreedyColoringByID().decide,
            name="greedy-opaque-plan-chunk",
            problem="coloring",
            order_invariant=True,
            uses_ports=False,
        )
        with pytest.raises(ConfigurationError):
            compile_instance(cycle_graph(8), algorithm, plan_chunk=2)

    def test_plan_tables_are_never_fully_resident(self):
        instance = compile_instance(cycle_graph(8), LargestIdAlgorithm(), plan_chunk=2)
        for label in ("discovery", "distances", "member_counts"):
            with pytest.raises(ConfigurationError):
                getattr(instance, label)

    def test_eager_instances_do_not_stream_plan_chunks(self):
        instance = compile_instance(cycle_graph(8), LargestIdAlgorithm())
        with pytest.raises(ConfigurationError):
            next(instance.iter_plan_chunks())

    def test_plan_chunk_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            compile_instance(cycle_graph(8), LargestIdAlgorithm(), plan_chunk=0)
