"""Tests for CompiledInstance structure, validation and bookkeeping."""

import math

import pytest

from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.algorithm import FunctionBallAlgorithm
from repro.errors import IdentifierError, TopologyError
from repro.kernel import compile_instance, simulate_batch
from repro.model.graph import Graph
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


class TestCompiledStructure:
    def test_csr_adjacency_matches_the_graph(self):
        graph = path_graph(5)
        instance = compile_instance(graph, LargestIdAlgorithm())
        for v in graph.positions():
            start, end = instance.indptr[v], instance.indptr[v + 1]
            assert list(instance.indices[start:end]) == list(graph.neighbors(v))
            assert end - start == graph.degree(v)
            for offset, u in enumerate(graph.neighbors(v)):
                assert instance.ports[start + offset] == offset
        assert instance.indptr[-1] == 2 * graph.m

    def test_frontier_prefixes_cover_the_graph_in_bfs_order(self):
        graph = cycle_graph(8)
        instance = compile_instance(graph, LargestIdAlgorithm())
        for v in graph.positions():
            discovery = instance.discovery[v]
            distances = instance.distances[v]
            assert sorted(discovery) == list(graph.positions())
            assert discovery[0] == v and distances[0] == 0
            # Layers are monotone, and member_counts are their prefix sums.
            assert list(distances) == sorted(distances)
            for radius, count in enumerate(instance.member_counts[v]):
                assert sum(1 for d in distances if d <= radius) == count
            # Saturation: the 8-cycle saturates every centre at radius 4.
            assert instance.saturation[v] == 4
            assert instance.caps[v] == 5

    def test_plans_are_shared_with_the_engine_through_the_graph(self):
        graph = cycle_graph(6)
        compile_instance(graph, LargestIdAlgorithm())
        _, plans, _ = graph._engine_structure
        assert set(plans) == set(graph.positions())

    def test_rule_selection(self):
        graph = cycle_graph(6)
        vectorized = compile_instance(graph, LargestIdAlgorithm())
        cone = compile_instance(graph, GreedyColoringByID())
        # A bare FunctionBallAlgorithm offers no compile_kernel_rule, so it
        # exercises the decide-backed fallback selection.
        fallback = compile_instance(
            graph,
            FunctionBallAlgorithm(
                GreedyColoringByID().decide,
                name="greedy-coloring-opaque",
                problem="coloring",
                order_invariant=True,
                uses_ports=False,
            ),
        )
        assert vectorized.vectorized
        assert vectorized.describe()["rule"] == "max-scan"
        assert cone.vectorized
        assert cone.describe()["rule"] == "greedy-cone-coloring"
        assert not fallback.vectorized
        assert fallback.describe()["rule"] == "runner-table"

    def test_stats_count_batches_and_rows(self):
        instance = compile_instance(cycle_graph(5), LargestIdAlgorithm())
        rows = [random_assignment(5, seed=seed).identifiers() for seed in range(7)]
        simulate_batch(instance, rows[:4])
        simulate_batch(instance, rows[4:])
        assert instance.stats.batches == 2
        assert instance.stats.rows == 7
        assert instance.stats.as_dict() == {"batches": 2, "rows": 7}


class TestValidation:
    def test_rejects_disconnected_graphs(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)], name="two-edges")
        with pytest.raises(TopologyError, match="connected"):
            compile_instance(graph, LargestIdAlgorithm())

    def test_rejects_unsupported_graphs(self):
        from repro.algorithms.cole_vishkin import ColeVishkinRing
        from repro.algorithms.full_gather import BallSimulationOfRounds

        algorithm = BallSimulationOfRounds(ColeVishkinRing(5))
        with pytest.raises(TopologyError, match="does not support"):
            compile_instance(path_graph(5), algorithm)

    def test_rejects_rows_of_the_wrong_width(self):
        instance = compile_instance(cycle_graph(5), LargestIdAlgorithm())
        with pytest.raises(TopologyError, match="covers 4 positions"):
            simulate_batch(instance, [(0, 1, 2, 3)])

    def test_rejects_non_injective_rows(self):
        instance = compile_instance(cycle_graph(4), LargestIdAlgorithm())
        with pytest.raises(IdentifierError, match="distinct"):
            simulate_batch(instance, [(0, 1, 1, 2)])

    def test_numpy_backend_rejects_identifiers_beyond_int64(self):
        from repro.kernel import numpy_available

        huge = (2**63, 1, 2, 3, 4)
        python_instance = compile_instance(
            cycle_graph(5), LargestIdAlgorithm(), backend="python"
        )
        # The stdlib backend has no identifier-size limit.
        assert simulate_batch(python_instance, [huge])[0][0] == python_instance.saturation[0]
        if numpy_available():
            numpy_instance = compile_instance(
                cycle_graph(5), LargestIdAlgorithm(), backend="numpy"
            )
            with pytest.raises(IdentifierError, match="int64"):
                simulate_batch(numpy_instance, [huge])

    def test_explicit_sampling_assignments_beyond_int64_degrade_to_stdlib(self):
        # The pre-kernel runner path accepted arbitrarily large identifiers;
        # sampling must keep doing so by degrading off the numpy backend.
        from repro.dist.sampling import sample_round_distribution
        from repro.model.identifiers import IdentifierAssignment

        huge = [IdentifierAssignment(tuple(2**63 + i for i in range(5)))]
        result = sample_round_distribution(
            cycle_graph(5), LargestIdAlgorithm(), assignments=huge
        )
        small = sample_round_distribution(
            cycle_graph(5),
            LargestIdAlgorithm(),
            assignments=[IdentifierAssignment((0, 1, 2, 3, 4))],
        )
        # Order-invariant algorithm: the ramp gives identical radii.
        assert result.distribution == small.distribution

    def test_explicit_sampling_assignments_of_the_wrong_size_are_rejected(self):
        # The pre-kernel runner path rejected wrong-n assignments; the
        # kernel path must too (regression: pre_validated bypass).
        from repro.dist.sampling import sample_round_distribution
        from repro.model.identifiers import random_assignment as draw

        with pytest.raises(TopologyError, match="covers 8 positions"):
            sample_round_distribution(
                cycle_graph(5),
                LargestIdAlgorithm(),
                assignments=[draw(8, seed=1)],
            )


class TestSimulateBatch:
    def test_known_radii_on_the_directed_ramp(self):
        # Identity identifiers on a cycle: every node sees a larger id at
        # distance 1 except the maximum, which must see the whole ring.
        n = 6
        instance = compile_instance(cycle_graph(n), LargestIdAlgorithm())
        (radii,) = simulate_batch(instance, [tuple(range(n))])
        assert radii[n - 1] == n // 2
        assert all(radius == 1 for radius in radii[:-1])

    def test_row_order_is_preserved(self):
        instance = compile_instance(cycle_graph(6), LargestIdAlgorithm())
        rows = [random_assignment(6, seed=seed).identifiers() for seed in range(5)]
        batched = simulate_batch(instance, rows)
        singly = [simulate_batch(instance, [row])[0] for row in rows]
        assert batched == singly

    def test_empty_matrix_is_a_no_op(self):
        instance = compile_instance(cycle_graph(5), LargestIdAlgorithm())
        assert simulate_batch(instance, []) == []

    def test_all_permutations_average_matches_theory_on_a_small_cycle(self):
        # Cross-check against an independent invariant: averaged over all
        # assignments, the sum of radii of largest-id on the n-cycle equals
        # the known exact expectation from the distribution layer.
        import itertools

        from repro.dist.exact import brute_force_round_distribution

        n = 5
        graph = cycle_graph(n)
        instance = compile_instance(graph, LargestIdAlgorithm())
        rows = list(itertools.permutations(range(n)))
        total = sum(sum(radii) for radii in simulate_batch(instance, rows))
        distribution = brute_force_round_distribution(graph, LargestIdAlgorithm())
        assert total / math.factorial(n) == pytest.approx(
            distribution.sum_distribution().mean()
        )
