"""Tests for the decision cache."""

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.algorithm import FunctionBallAlgorithm
from repro.engine.cache import MISSING, CacheStats, DecisionCache
from repro.model.ball import extract_ball
from repro.model.identifiers import identity_assignment, random_assignment
from repro.topology.cycle import cycle_graph


def _ball(n=8, position=0, radius=2, seed=0):
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=seed)
    return extract_ball(graph, ids, position, radius)


class TestCacheStats:
    def test_hit_rate_of_unused_cache_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate_counts_hits_over_lookups(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_as_dict_is_json_friendly(self):
        stats = CacheStats(hits=1, misses=1)
        assert stats.as_dict() == {"hits": 1, "misses": 1, "hit_rate": 0.5}


class TestDecisionCache:
    def test_memoises_decide_and_counts_hits(self):
        calls = []
        algorithm = FunctionBallAlgorithm(
            lambda ball: calls.append(1) or "out", name="spy"
        )
        cache = DecisionCache(algorithm)
        ball = _ball()
        assert cache.decide(ball) == "out"
        assert cache.decide(ball) == "out"
        assert len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_caches_none_decisions_too(self):
        calls = []
        algorithm = FunctionBallAlgorithm(
            lambda ball: calls.append(1) and None, name="grower"
        )
        cache = DecisionCache(algorithm)
        ball = _ball()
        assert cache.decide(ball) is None
        assert cache.decide(ball) is None
        assert len(calls) == 1

    def test_relabeling_defaults_to_the_algorithm_declaration(self):
        assert DecisionCache(LargestIdAlgorithm()).relabel_ids is True
        assert DecisionCache(FunctionBallAlgorithm(lambda b: 0)).relabel_ids is False

    def test_relabeled_keys_unify_order_isomorphic_balls(self):
        graph = cycle_graph(8)
        sorted_ids = identity_assignment(8)
        cache = DecisionCache(LargestIdAlgorithm())
        # Two different centres of the sorted ring see order-isomorphic
        # radius-1 balls (neighbour below, neighbour above).
        key_a = cache.key_for(extract_ball(graph, sorted_ids, 2, 1))
        key_b = cache.key_for(extract_ball(graph, sorted_ids, 4, 1))
        assert key_a == key_b

    def test_exact_keys_keep_identifiers_distinct(self):
        graph = cycle_graph(8)
        sorted_ids = identity_assignment(8)
        cache = DecisionCache(LargestIdAlgorithm(), relabel_ids=False)
        key_a = cache.key_for(extract_ball(graph, sorted_ids, 2, 1))
        key_b = cache.key_for(extract_ball(graph, sorted_ids, 4, 1))
        assert key_a != key_b

    def test_max_entries_bounds_the_table(self):
        algorithm = FunctionBallAlgorithm(lambda ball: ball.radius, name="radius")
        cache = DecisionCache(algorithm, max_entries=1)
        cache.decide(_ball(radius=0))
        cache.decide(_ball(radius=1))
        assert len(cache) == 1

    def test_pattern_limit_bypasses_large_balls(self):
        calls = []
        algorithm = FunctionBallAlgorithm(
            lambda ball: calls.append(1) or "out", name="spy"
        )
        cache = DecisionCache(algorithm, pattern_limit=3)
        big = _ball(radius=3)  # 7 members > 3
        cache.decide(big)
        cache.decide(big)
        assert len(calls) == 2  # bypassed: decided twice, never stored
        assert len(cache) == 0

    def test_lookup_returns_missing_sentinel(self):
        cache = DecisionCache(FunctionBallAlgorithm(lambda b: 1))
        assert cache.lookup(("nope",)) is MISSING

    def test_clear_resets_table_and_stats(self):
        algorithm = FunctionBallAlgorithm(lambda ball: 1, name="one")
        cache = DecisionCache(algorithm)
        cache.decide(_ball())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0
