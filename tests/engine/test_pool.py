"""The warm worker pool: resolution, ordering, affinity, crashes, shm."""

import os
import signal

import pytest

from repro.engine.pool import (
    MAX_TASK_ATTEMPTS,
    WORKER_CACHE_LIMIT,
    ShmRef,
    WorkerCrashError,
    WorkerPool,
    clear_worker_caches,
    fetch_memoryview,
    get_pool,
    in_worker,
    resolve_workers,
    shm_transport_enabled,
    worker_cache,
)
from repro.errors import ConfigurationError


# Module-level task functions: pickled by reference into the workers.
def _square(x):
    return x * x


def _raise_on_odd(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


def _pid_of(_payload):
    return os.getpid()


def _kill_once(payload):
    """Die by SIGKILL on first sight of the flag path, succeed after."""
    flag, value = payload
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as handle:
            handle.write("seen")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _kill_always(_payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _read_segment(payload):
    ref, prefix = payload
    view = fetch_memoryview(ref)
    return bytes(view[:prefix])


class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_wins_over_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None, fallback=1) == 5

    def test_fallback_then_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None, fallback=2) == 2
        assert resolve_workers(None) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", ["zero", "1.5", "0", "-3"])
    def test_bad_env_values_are_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ConfigurationError):
            resolve_workers(None)

    def test_explicit_below_one_is_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)

    def test_shm_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_transport_enabled()
        for off in ("off", "0", "false", "OFF"):
            monkeypatch.setenv("REPRO_SHM", off)
            assert not shm_transport_enabled()

    def test_parent_process_is_not_a_worker(self):
        assert not in_worker()


class TestMapSemantics:
    def test_matches_serial_in_submission_order(self):
        payloads = list(range(23))
        with WorkerPool(3) as pool:
            assert pool.map(_square, payloads) == [_square(x) for x in payloads]

    def test_single_worker_and_single_payload_run_inline(self):
        with WorkerPool(1) as pool:
            assert pool.map(_pid_of, [1, 2, 3]) == [os.getpid()] * 3
        with WorkerPool(2) as pool:
            assert pool.map(_pid_of, [1]) == [os.getpid()]

    def test_empty_map(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, []) == []

    def test_warm_reuse_across_dispatches(self):
        with WorkerPool(2) as pool:
            first = set(pool.map(_pid_of, list(range(8))))
            second = set(pool.map(_pid_of, list(range(8))))
            # Same warm processes answered both dispatches.
            assert first == second
            assert pool.stats["dispatches"] == 2
            assert pool.stats["tasks"] == 16

    def test_affinity_pins_equal_keys_to_one_worker(self):
        keys = ["a", "b", "a", "b", "a", "b"]
        with WorkerPool(2) as pool:
            pids = pool.map(_pid_of, list(range(6)), keys=keys)
            by_key = {}
            for key, pid in zip(keys, pids):
                by_key.setdefault(key, set()).add(pid)
            assert all(len(pids) == 1 for pids in by_key.values())
            # Distinct keys round-robin across distinct workers.
            assert by_key["a"] != by_key["b"]

    def test_keys_length_mismatch_is_rejected(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ConfigurationError):
                pool.map(_square, [1, 2, 3], keys=["a"])

    def test_task_errors_raise_lowest_index_and_pool_survives(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="odd payload 1"):
                pool.map(_raise_on_odd, [0, 1, 2, 3, 5])
            # The pool is not poisoned by a failed dispatch.
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_closed_pool_rejects_map(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.map(_square, [1, 2])


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_task_resubmitted(self, tmp_path):
        flag = tmp_path / "killed-once"
        payloads = [(str(flag), value) for value in range(6)]
        with WorkerPool(2) as pool:
            results = pool.map(_kill_once, payloads)
            assert results == list(range(6))
            assert pool.stats["resubmissions"] >= 1
            assert pool.stats["respawns"] >= 1
            # The survivors keep serving.
            assert pool.map(_square, [4, 5]) == [16, 25]

    def test_deterministic_crasher_raises_worker_crash_error(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerCrashError):
                pool.map(_kill_always, [1, 2])
            assert pool.stats["resubmissions"] >= MAX_TASK_ATTEMPTS - 1


class TestSharedMemory:
    def test_publish_fetch_round_trip_in_workers(self):
        blob = bytes(range(256)) * 64
        with WorkerPool(2) as pool:
            ref = pool.publish(blob)
            if ref is None:
                pytest.skip("shared memory unavailable on this platform")
            assert ref.size == len(blob)
            results = pool.map(_read_segment, [(ref, 16)] * 4)
            assert results == [blob[:16]] * 4
            pool.release(ref)

    def test_publish_same_content_reuses_the_segment(self):
        with WorkerPool(2) as pool:
            first = pool.publish(b"x" * 1024)
            if first is None:
                pytest.skip("shared memory unavailable on this platform")
            second = pool.publish(b"x" * 1024)
            assert first == second
            assert pool.stats["segments_published"] == 1
            pool.release(first)
            pool.release(second)

    def test_parent_side_fetch_and_cache_clear(self):
        with WorkerPool(2) as pool:
            ref = pool.publish(b"payload-bytes")
            if ref is None:
                pytest.skip("shared memory unavailable on this platform")
            view = fetch_memoryview(ref)
            assert bytes(view) == b"payload-bytes"
            del view
            clear_worker_caches()
            pool.release(ref)

    def test_missing_segment_raises_lookup_error(self):
        bogus = ShmRef(name="repro-no-such-segment", size=4, digest="0" * 32)
        with pytest.raises(LookupError):
            fetch_memoryview(bogus)

    def test_use_shm_false_disables_publishing(self):
        with WorkerPool(2, use_shm=False) as pool:
            assert pool.publish(b"data") is None

    def test_env_off_disables_publishing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        with WorkerPool(2) as pool:
            assert pool.publish(b"data") is None
        # Inline fallback still computes correctly.
        monkeypatch.setenv("REPRO_SHM", "off")
        with WorkerPool(2) as pool:
            assert pool.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]


class TestWorkerCache:
    def setup_method(self):
        clear_worker_caches()

    def test_build_once_then_hit(self):
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert worker_cache("t.ns", "k", build) == "value"
        assert worker_cache("t.ns", "k", build) == "value"
        assert len(calls) == 1

    def test_namespace_is_lru_bounded(self):
        for index in range(WORKER_CACHE_LIMIT + 3):
            worker_cache("t.bound", index, lambda index=index: index)
        live = [
            key
            for key in range(WORKER_CACHE_LIMIT + 3)
            if worker_cache("t.bound", key, lambda: "rebuilt") != "rebuilt"
        ]
        assert len(live) <= WORKER_CACHE_LIMIT


class TestPoolRegistry:
    def test_get_pool_is_keyed_and_warm(self):
        pool = get_pool(2)
        assert get_pool(2) is pool
        assert get_pool(3) is not pool

    def test_closed_registry_entry_is_replaced(self):
        pool = get_pool(2)
        pool.close()
        fresh = get_pool(2)
        assert fresh is not pool
        assert not fresh.closed
