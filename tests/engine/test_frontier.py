"""Tests for the frontier runner (session behaviour and edge cases).

Trace equivalence against the legacy runner is covered exhaustively by
``tests/property/test_property_engine.py``; this module tests the session
semantics: validation, caps, cache interplay and error parity.
"""

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.algorithm import FunctionBallAlgorithm
from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner, frontier_run
from repro.errors import AlgorithmError, TopologyError
from repro.model.graph import Graph
from repro.model.identifiers import identity_assignment, random_assignment
from repro.topology.cycle import cycle_graph


def radius_k_algorithm(k):
    return FunctionBallAlgorithm(
        lambda ball: "done" if ball.radius >= k else None, name=f"radius-{k}"
    )


class TestValidation:
    def test_disconnected_graph_rejected_at_session_construction(self):
        with pytest.raises(TopologyError, match="connected"):
            FrontierRunner(Graph([(), ()]), radius_k_algorithm(0))

    def test_unsupported_graph_rejected(self):
        picky = radius_k_algorithm(0)
        picky.supports_graph = lambda graph: False
        with pytest.raises(TopologyError, match="does not support"):
            FrontierRunner(cycle_graph(5), picky)

    def test_identifier_mismatch_rejected_per_run(self):
        runner = FrontierRunner(cycle_graph(6), radius_k_algorithm(0))
        with pytest.raises(TopologyError, match="covers 4 positions"):
            runner.run(identity_assignment(4))

    def test_foreign_cache_rejected(self):
        with pytest.raises(AlgorithmError, match="different algorithm"):
            FrontierRunner(
                cycle_graph(5),
                LargestIdAlgorithm(),
                cache=DecisionCache(LargestIdAlgorithm()),
            )

    def test_cache_cannot_be_shared_across_sessions(self):
        # Runner keys embed session-interned structural ids, so a cache
        # reused by a second session would silently serve wrong decisions
        # (e.g. a cycle-3 ball hitting a cycle-6 entry).
        algorithm = LargestIdAlgorithm()
        cache = DecisionCache(algorithm)
        FrontierRunner(cycle_graph(6), algorithm, cache=cache)
        with pytest.raises(AlgorithmError, match="another engine session"):
            FrontierRunner(cycle_graph(3), algorithm, cache=cache)


class TestExecution:
    def test_records_first_deciding_radius(self):
        trace = frontier_run(cycle_graph(12), random_assignment(12, seed=1), radius_k_algorithm(3))
        assert set(trace.radii().values()) == {3}

    def test_refusing_to_decide_names_the_first_failing_position(self):
        never = FunctionBallAlgorithm(lambda ball: None, name="never")
        with pytest.raises(AlgorithmError, match="refused to output at position 0"):
            frontier_run(cycle_graph(6), identity_assignment(6), never)

    def test_max_radius_cap_is_honoured(self):
        with pytest.raises(AlgorithmError):
            frontier_run(
                cycle_graph(12),
                identity_assignment(12),
                radius_k_algorithm(10),
                max_radius=4,
            )

    def test_session_reuse_across_assignments(self):
        graph = cycle_graph(10)
        algorithm = LargestIdAlgorithm()
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        for seed in range(4):
            ids = random_assignment(10, seed=seed)
            trace = runner.run(ids)
            # The carrier of the largest identifier always sees everything.
            assert trace.radii()[ids.argmax_position()] == 5
        assert runner.cache.stats.hits > 0

    def test_full_graph_hint_matches_degree_criterion(self):
        graph = cycle_graph(6)
        seen = []
        probe = FunctionBallAlgorithm(
            lambda ball: seen.append((ball.radius, ball.covers_whole_graph()))
            or ("done" if ball.radius >= 4 else None),
            name="probe",
        )
        FrontierRunner(graph, probe).run(identity_assignment(6))
        assert seen
        for radius, covers in seen:
            assert covers == (radius >= 3)  # eccentricity of a 6-cycle node

    def test_node_radius_and_cap_error(self):
        runner = FrontierRunner(cycle_graph(9), LargestIdAlgorithm())
        ids = random_assignment(9, seed=2)
        radii = runner.run(ids).radii()
        for position in range(9):
            assert runner.node_radius(ids, position) == radii[position]
        never = FunctionBallAlgorithm(lambda ball: None, name="never")
        with pytest.raises(AlgorithmError, match="refused to output"):
            FrontierRunner(cycle_graph(9), never).node_radius(ids, 3)

    def test_node_radius_position_out_of_range(self):
        runner = FrontierRunner(cycle_graph(5), LargestIdAlgorithm())
        with pytest.raises(TopologyError, match="outside"):
            runner.node_radius(identity_assignment(5), 9)


class TestStructuralKeys:
    def test_vertex_transitive_centres_share_structural_keys(self):
        graph = cycle_graph(8)
        algorithm = LargestIdAlgorithm()
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        ids_a = runner._struct_id(runner._plan(1), 2)
        ids_b = runner._struct_id(runner._plan(5), 2)
        assert ids_a == ids_b

    def test_distinct_radii_get_distinct_keys_even_when_saturated(self):
        graph = cycle_graph(5)
        algorithm = LargestIdAlgorithm()
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        plan = runner._plan(0)
        saturation = plan.saturation_radius()
        key_saturated = runner._struct_id(plan, saturation)
        key_beyond = runner._struct_id(plan, saturation + 1)
        assert key_saturated != key_beyond
