"""Tests for the campaign / sweep API."""

import math

import pytest

from repro.engine.campaign import (
    CampaignSpec,
    DistSpec,
    aggregate_dist_rows,
    build_topology,
    load_dist_rows,
    load_rows,
    run_campaign_rows,
    run_dist_campaign_rows,
    write_dist_rows,
    write_rows,
)
from repro.errors import ConfigurationError


def _small_spec(**overrides):
    defaults = dict(
        topologies=("cycle", "path"),
        sizes=(6, 8),
        algorithms=("largest-id",),
        adversaries=("random-search",),
        samples=4,
        seed=13,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            _small_spec(topologies=("moebius",))

    def test_rejects_unknown_adversary(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            _small_spec(adversaries=("oracle",))

    def test_cells_cover_the_full_grid_with_unique_seeds(self):
        spec = _small_spec(adversaries=("random-search", "rotation"))
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 1 * 2
        assert [cell.index for cell in cells] == list(range(len(cells)))
        assert len({cell.seed for cell in cells}) == len(cells)


class TestRunCampaign:
    def test_rows_carry_results_and_cache_stats(self):
        rows = run_campaign_rows(_small_spec())
        assert len(rows) == 4
        for row in rows:
            assert row["value"] > 0
            assert row["evaluations"] == 4
            assert not row["exact"]
            assert 0.0 <= row["cache"]["hit_rate"] <= 1.0
            assert len(row["witness_ids"]) == row["graph_n"]

    def test_exhaustive_cells_are_exact(self):
        rows = run_campaign_rows(
            _small_spec(topologies=("cycle",), sizes=(5,), adversaries=("exhaustive",))
        )
        (row,) = rows
        assert row["exact"]
        assert row["evaluations"] == 120

    def test_search_adversaries_join_the_grid_with_certificates(self):
        rows = run_campaign_rows(
            _small_spec(
                topologies=("cycle",),
                sizes=(6,),
                adversaries=("pruned-exhaustive", "branch-and-bound", "portfolio"),
            )
        )
        by_name = {row["adversary"]: row for row in rows}
        assert by_name["pruned-exhaustive"]["exact"]
        assert by_name["branch-and-bound"]["exact"]
        assert not by_name["portfolio"]["exact"]
        # Exact searches agree with each other; certificates are JSON rows.
        assert (
            by_name["pruned-exhaustive"]["value"]
            == by_name["branch-and-bound"]["value"]
        )
        assert by_name["pruned-exhaustive"]["certificate"]["group_order"] == 12
        assert by_name["portfolio"]["certificate"]["strategies"]

    def test_round_algorithms_join_via_the_ball_compiler(self):
        rows = run_campaign_rows(
            _small_spec(
                topologies=("cycle",),
                sizes=(8,),
                algorithms=("cole-vishkin",),
                adversaries=("rotation",),
            )
        )
        (row,) = rows
        # Cole–Vishkin's profile is flat, so the average equals the max.
        assert row["value"] > 0

    def test_workers_do_not_change_results(self):
        spec = _small_spec()
        serial = run_campaign_rows(spec, workers=1)
        parallel = run_campaign_rows(spec, workers=2)
        strip = lambda row: {k: v for k, v in row.items() if k != "wall_time_s"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]


class TestRowsRoundTrip:
    def test_write_then_load(self, tmp_path):
        rows = run_campaign_rows(_small_spec(topologies=("cycle",), sizes=(6,)))
        path = tmp_path / "rows.json"
        write_rows(rows, str(path))
        assert load_rows(str(path)) == rows

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a repro sweep"):
            load_rows(str(path))


class TestBuildTopology:
    def test_known_names_build_graphs(self):
        for name in ("cycle", "path", "grid", "complete", "random-tree", "gnp"):
            graph = build_topology(name, 9, seed=1)
            assert graph.n >= 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            build_topology("hypercube", 8, seed=0)


def test_spec_rejects_unknown_objective_eagerly():
    with pytest.raises(ConfigurationError, match="unknown objective"):
        _small_spec(objective="avg")


def _small_dist_spec(**overrides):
    defaults = dict(
        topologies=("cycle", "path"),
        sizes=(6,),
        algorithms=("largest-id",),
        methods=("exact", "sample"),
        samples=16,
        seed=13,
    )
    defaults.update(overrides)
    return DistSpec(**defaults)


class TestDistSpec:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            _small_dist_spec(topologies=("moebius",))

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError, match="unknown distribution method"):
            _small_dist_spec(methods=("oracle",))

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ConfigurationError, match="samples"):
            _small_dist_spec(samples=0)

    def test_cells_cover_the_grid_with_unique_seeds(self):
        cells = _small_dist_spec().cells()
        assert len(cells) == 2 * 1 * 1 * 2
        assert [cell.index for cell in cells] == list(range(len(cells)))
        assert len({cell.seed for cell in cells}) == len(cells)


class TestRunDistCampaign:
    def test_exact_rows_cover_n_factorial_with_certificates(self):
        rows = run_dist_campaign_rows(_small_dist_spec(methods=("exact",)))
        assert len(rows) == 2
        for row in rows:
            assert row["exact"]
            assert row["total_weight"] == math.factorial(row["graph_n"])
            certificate = row["certificate"]
            assert (
                certificate["canonical_leaves"] * certificate["class_weight"]
                == certificate["space_size"]
            )
            assert row["uncertainty"] is None
            assert row["distribution"]["kind"] == "round-distribution"

    def test_sampled_rows_carry_standard_errors(self):
        rows = run_dist_campaign_rows(
            _small_dist_spec(topologies=("cycle",), methods=("sample",))
        )
        (row,) = rows
        assert not row["exact"]
        assert row["total_weight"] == 16
        assert row["certificate"] is None
        assert row["uncertainty"]["average"]["std_error"] >= 0.0

    def test_workers_do_not_change_results(self):
        spec = _small_dist_spec()
        serial = run_dist_campaign_rows(spec, workers=1)
        parallel = run_dist_campaign_rows(spec, workers=2)
        strip = lambda row: {k: v for k, v in row.items() if k != "wall_time_s"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]

    def test_exact_and_sample_cells_share_the_graph_on_random_topologies(self):
        # The comparison is meaningless unless both methods see the same
        # instance: the graph seed must not depend on the method.
        cells = _small_dist_spec(topologies=("random-tree",), sizes=(7,)).cells()
        assert len(cells) == 2
        exact_cell, sample_cell = cells
        assert exact_cell.graph_seed == sample_cell.graph_seed
        assert exact_cell.seed != sample_cell.seed  # sampling streams still differ
        exact_graph = build_topology("random-tree", 7, exact_cell.graph_seed)
        sample_graph = build_topology("random-tree", 7, sample_cell.graph_seed)
        assert [
            exact_graph.neighbors(v) for v in exact_graph.positions()
        ] == [sample_graph.neighbors(v) for v in sample_graph.positions()]

    def test_aggregates_pool_across_graphs(self):
        rows = run_dist_campaign_rows(_small_dist_spec(methods=("exact",)))
        aggregates = aggregate_dist_rows(rows)
        (aggregate,) = aggregates
        assert aggregate["cells"] == 2
        assert aggregate["total_weight"] == 2 * math.factorial(6)
        assert aggregate["average"]["mean"] > 0


class TestDistRowsRoundTrip:
    def test_write_then_load(self, tmp_path):
        rows = run_dist_campaign_rows(_small_dist_spec(topologies=("cycle",)))
        path = tmp_path / "dist_rows.json"
        write_dist_rows(rows, str(path))
        assert load_dist_rows(str(path)) == rows

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a repro dist"):
            load_dist_rows(str(path))
