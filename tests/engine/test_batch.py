"""Tests for the batch executor and deterministic task seeding."""

import pytest

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.engine.batch import BatchExecutor, derive_task_seed, run_simulation_batch
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph


def _square(x):
    return x * x


class TestDeriveTaskSeed:
    def test_is_deterministic(self):
        assert derive_task_seed(0, "cycle", 8) == derive_task_seed(0, "cycle", 8)

    def test_varies_with_every_coordinate(self):
        base = derive_task_seed(0, "cycle", 8)
        assert derive_task_seed(1, "cycle", 8) != base
        assert derive_task_seed(0, "path", 8) != base
        assert derive_task_seed(0, "cycle", 9) != base

    def test_fits_in_63_bits(self):
        for index in range(64):
            assert 0 <= derive_task_seed(7, index) < 2**63


class TestBatchExecutor:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            BatchExecutor(0)

    def test_serial_map_preserves_order(self):
        assert BatchExecutor(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        payloads = list(range(11))
        assert BatchExecutor(3).map(_square, payloads) == [_square(x) for x in payloads]


class TestRunSimulationBatch:
    def test_empty_batch(self):
        assert run_simulation_batch(cycle_graph(5), [], LargestIdAlgorithm()) == []

    def test_results_keep_input_order_at_any_worker_count(self):
        graph = cycle_graph(10)
        algorithm = LargestIdAlgorithm()
        assignments = [random_assignment(10, seed=seed) for seed in range(7)]
        serial = run_simulation_batch(graph, assignments, algorithm, workers=1)
        parallel = run_simulation_batch(graph, assignments, algorithm, workers=3)
        assert [t.radii() for t in serial] == [t.radii() for t in parallel]
        for ids, trace in zip(assignments, serial):
            assert trace.radii()[ids.argmax_position()] == 5
