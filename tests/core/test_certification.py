"""Tests for the output certifiers."""

import pytest

from repro.core.certification import (
    certify,
    certify_3_coloring,
    certify_largest_id,
    certify_leader_election,
    certify_maximal_independent_set,
    certify_proper_coloring,
    register_certifier,
)
from repro.errors import CertificationError
from repro.model.identifiers import IdentifierAssignment, identity_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


@pytest.fixture
def square():
    return cycle_graph(4)


@pytest.fixture
def square_ids():
    return IdentifierAssignment([3, 0, 2, 1])


class TestLargestId:
    def test_accepts_the_unique_correct_answer(self, square, square_ids):
        outputs = {0: True, 1: False, 2: False, 3: False}
        assert certify_largest_id(square, square_ids, outputs)

    def test_rejects_wrong_winner(self, square, square_ids):
        outputs = {0: False, 1: False, 2: True, 3: False}
        with pytest.raises(CertificationError, match="largest identifier"):
            certify_largest_id(square, square_ids, outputs)

    def test_rejects_two_winners(self, square, square_ids):
        outputs = {0: True, 1: False, 2: True, 3: False}
        with pytest.raises(CertificationError):
            certify_largest_id(square, square_ids, outputs)

    def test_rejects_non_boolean_outputs(self, square, square_ids):
        outputs = {0: 1, 1: 0, 2: 0, 3: 0}
        with pytest.raises(CertificationError, match="boolean"):
            certify_largest_id(square, square_ids, outputs)

    def test_rejects_missing_positions(self, square, square_ids):
        with pytest.raises(CertificationError, match="cover positions"):
            certify_largest_id(square, square_ids, {0: True})


class TestLeaderElection:
    def test_accepts_any_single_leader(self, square, square_ids):
        assert certify_leader_election(square, square_ids, {0: False, 1: True, 2: False, 3: False})

    @pytest.mark.parametrize("leaders", [0, 2])
    def test_rejects_wrong_leader_count(self, square, square_ids, leaders):
        outputs = {p: p < leaders for p in range(4)}
        with pytest.raises(CertificationError, match="exactly one leader"):
            certify_leader_election(square, square_ids, outputs)


class TestColoring:
    def test_accepts_a_proper_colouring(self, square, square_ids):
        assert certify_proper_coloring(square, square_ids, {0: 0, 1: 1, 2: 0, 3: 1})

    def test_rejects_monochromatic_edge(self, square, square_ids):
        with pytest.raises(CertificationError, match="monochromatic"):
            certify_proper_coloring(square, square_ids, {0: 0, 1: 0, 2: 1, 3: 1})

    def test_palette_bound_is_enforced(self, square, square_ids):
        outputs = {0: 0, 1: 5, 2: 0, 3: 1}
        assert certify_proper_coloring(square, square_ids, outputs)  # unbounded palette
        with pytest.raises(CertificationError, match="palette"):
            certify_proper_coloring(square, square_ids, outputs, num_colors=3)

    def test_three_coloring_requires_colors_zero_to_two(self, square, square_ids):
        assert certify_3_coloring(square, square_ids, {0: 0, 1: 1, 2: 2, 3: 1})
        with pytest.raises(CertificationError):
            certify_3_coloring(square, square_ids, {0: 0, 1: 3, 2: 0, 3: 1})

    def test_rejects_non_integer_colours(self, square, square_ids):
        with pytest.raises(CertificationError, match="integers"):
            certify_proper_coloring(square, square_ids, {0: "red", 1: 1, 2: 0, 3: 1})


class TestMIS:
    def test_accepts_a_maximal_independent_set(self):
        graph = path_graph(5)
        ids = identity_assignment(5)
        assert certify_maximal_independent_set(graph, ids, {0: True, 1: False, 2: True, 3: False, 4: True})

    def test_rejects_adjacent_members(self):
        graph = path_graph(3)
        ids = identity_assignment(3)
        with pytest.raises(CertificationError, match="adjacent"):
            certify_maximal_independent_set(graph, ids, {0: True, 1: True, 2: False})

    def test_rejects_non_maximal_sets(self):
        graph = path_graph(3)
        ids = identity_assignment(3)
        with pytest.raises(CertificationError, match="maximal"):
            certify_maximal_independent_set(graph, ids, {0: True, 1: False, 2: False})


class TestRegistry:
    def test_certify_dispatches_on_problem_key(self, square, square_ids):
        assert certify("largest-id", square, square_ids, {0: True, 1: False, 2: False, 3: False})

    def test_unknown_problem_rejected(self, square, square_ids):
        with pytest.raises(CertificationError, match="no certifier"):
            certify("sorting", square, square_ids, {})

    def test_custom_certifier_can_be_registered(self, square, square_ids):
        register_certifier("always-ok", lambda graph, ids, outputs: True)
        assert certify("always-ok", square, square_ids, {0: None, 1: None, 2: None, 3: None})

    def test_certify_accepts_execution_traces(self, square, square_ids, largest_id_algorithm):
        from repro.core.runner import run_ball_algorithm

        trace = run_ball_algorithm(square, square_ids, largest_id_algorithm)
        assert certify("largest-id", square, square_ids, trace)
