"""Tests for the identifier-assignment adversaries."""

import pytest

from repro.core.adversary import (
    ExhaustiveAdversary,
    LocalSearchAdversary,
    RandomSearchAdversary,
    RotationAdversary,
    trace_objective,
)
from repro.core.runner import run_ball_algorithm
from repro.errors import AnalysisError, ConfigurationError
from repro.model.identifiers import IdentifierAssignment, identity_assignment
from repro.theory.bounds import largest_id_sum_upper_bound
from repro.topology.cycle import cycle_graph


class TestExhaustiveAdversary:
    def test_finds_the_exact_worst_average_on_a_small_cycle(self, largest_id_algorithm):
        graph = cycle_graph(6)
        result = ExhaustiveAdversary().maximise(graph, largest_id_algorithm, objective="sum")
        assert result.exact
        assert result.evaluations == 720
        # The recurrence bound floor(n/2) + a(n-1) is exactly the worst case.
        assert result.value == largest_id_sum_upper_bound(6)

    def test_refuses_large_graphs(self, largest_id_algorithm):
        with pytest.raises(ConfigurationError, match="limited"):
            ExhaustiveAdversary(max_nodes=5).maximise(cycle_graph(8), largest_id_algorithm)

    def test_witness_assignment_reproduces_the_value(self, largest_id_algorithm):
        graph = cycle_graph(5)
        result = ExhaustiveAdversary().maximise(graph, largest_id_algorithm, objective="average")
        trace = run_ball_algorithm(graph, result.assignment, largest_id_algorithm)
        assert trace.average_radius == pytest.approx(result.value)


class TestRandomSearchAdversary:
    def test_returns_best_of_the_sampled_assignments(self, ring12, largest_id_algorithm):
        result = RandomSearchAdversary(samples=10, seed=1).maximise(
            ring12, largest_id_algorithm, objective="average"
        )
        assert not result.exact
        assert result.evaluations == 10
        trace = run_ball_algorithm(ring12, result.assignment, largest_id_algorithm)
        assert trace.average_radius == pytest.approx(result.value)

    def test_deterministic_given_seed(self, ring12, largest_id_algorithm):
        a = RandomSearchAdversary(samples=6, seed=9).maximise(ring12, largest_id_algorithm)
        b = RandomSearchAdversary(samples=6, seed=9).maximise(ring12, largest_id_algorithm)
        assert a.assignment == b.assignment and a.value == b.value

    def test_more_samples_never_hurt(self, ring12, largest_id_algorithm):
        few = RandomSearchAdversary(samples=2, seed=3).maximise(ring12, largest_id_algorithm)
        many = RandomSearchAdversary(samples=20, seed=3).maximise(ring12, largest_id_algorithm)
        assert many.value >= few.value


class TestLocalSearchAdversary:
    def test_beats_or_matches_its_own_starting_points(self, ring12, largest_id_algorithm):
        random_best = RandomSearchAdversary(samples=4, seed=5).maximise(
            ring12, largest_id_algorithm, objective="average"
        )
        local_best = LocalSearchAdversary(
            restarts=2, swaps_per_step=8, max_steps=10, seed=5
        ).maximise(ring12, largest_id_algorithm, objective="average")
        assert local_best.value >= random_best.value * 0.9

    def test_reports_evaluation_count(self, ring12, largest_id_algorithm):
        result = LocalSearchAdversary(restarts=1, swaps_per_step=4, max_steps=2, seed=2).maximise(
            ring12, largest_id_algorithm
        )
        assert result.evaluations >= 5  # 1 initial + at least one sweep of swaps


class TestRotationAdversary:
    def test_tries_every_rotation_of_the_base(self, largest_id_algorithm):
        graph = cycle_graph(8)
        result = RotationAdversary(identity_assignment(8)).maximise(
            graph, largest_id_algorithm, objective="average"
        )
        assert result.evaluations == 8
        # Rotating a cyclically-symmetric pattern cannot change the average.
        baseline = run_ball_algorithm(graph, identity_assignment(8), largest_id_algorithm)
        assert result.value == pytest.approx(baseline.average_radius)

    def test_base_size_must_match_graph(self, largest_id_algorithm):
        with pytest.raises(ConfigurationError):
            RotationAdversary(identity_assignment(5)).maximise(cycle_graph(8), largest_id_algorithm)


class TestTraceObjective:
    def test_unknown_objective_raises(self, ring12, ring12_random_ids, largest_id_algorithm):
        trace = run_ball_algorithm(ring12, ring12_random_ids, largest_id_algorithm)
        with pytest.raises(AnalysisError):
            trace_objective(trace, "mode")


class TestEagerObjectiveValidation:
    def _exploding_algorithm(self):
        from repro.core.algorithm import FunctionBallAlgorithm

        def boom(ball):
            raise AssertionError("simulation must not start for a bad objective")

        return FunctionBallAlgorithm(boom, name="boom")

    @pytest.mark.parametrize(
        "adversary",
        [
            ExhaustiveAdversary(),
            RandomSearchAdversary(samples=4, seed=0),
            LocalSearchAdversary(restarts=1, swaps_per_step=2, max_steps=2, seed=0),
            RotationAdversary(),
        ],
        ids=["exhaustive", "random-search", "local-search", "rotation"],
    )
    def test_invalid_objective_rejected_before_any_simulation(self, adversary):
        # The exploding algorithm proves no ball is ever simulated: the
        # objective is rejected at maximise() entry, not mid-search.
        with pytest.raises(AnalysisError, match="unknown objective"):
            adversary.maximise(cycle_graph(6), self._exploding_algorithm(), objective="median")

    def test_validate_objective_accepts_all_known_objectives(self):
        from repro.core.adversary import OBJECTIVES, validate_objective

        for objective in OBJECTIVES:
            validate_objective(objective)


class TestCacheStatsReporting:
    def test_searches_report_their_decision_cache_stats(self, largest_id_algorithm):
        result = RandomSearchAdversary(samples=6, seed=4).maximise(
            cycle_graph(12), largest_id_algorithm
        )
        assert result.cache_stats is not None
        assert result.cache_stats.lookups > 0
        assert 0.0 <= result.cache_stats.hit_rate <= 1.0
