"""Tests for the complexity measures."""

import pytest

from repro.core.adversary import ExhaustiveAdversary
from repro.core.measures import (
    AVERAGE_MEASURE,
    CLASSIC_MEASURE,
    MEASURES,
    SUM_MEASURE,
    ComplexityReport,
    average_complexity,
    classic_complexity,
    evaluate_assignment,
    exact_measure_distribution,
    expected_measures_over_random_ids,
    get_measure,
    measure_objective,
    sampled_measure_distribution,
    worst_case_over_assignments,
)
from repro.core.runner import run_ball_algorithm
from repro.errors import AnalysisError
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.topology.cycle import cycle_graph


class TestEvaluateAssignment:
    def test_report_contains_both_measures(self, ring12, ring12_random_ids, largest_id_algorithm):
        with pytest.warns(DeprecationWarning):
            report = evaluate_assignment(ring12, ring12_random_ids, largest_id_algorithm)
        assert isinstance(report, ComplexityReport)
        assert report.n == 12
        assert report.max_radius == 6  # the maximum's eccentricity on C_12
        assert 0 < report.average_radius < report.max_radius
        assert report.sum_radius == pytest.approx(report.average_radius * 12)
        assert report.graph_name == "cycle-12"
        assert report.algorithm_name == "largest-id"


class TestAggregates:
    def test_classic_and_average_take_the_worst_run(
        self, ring12, largest_id_algorithm
    ):
        traces = [
            run_ball_algorithm(ring12, random_assignment(12, seed=s), largest_id_algorithm)
            for s in range(4)
        ]
        assert classic_complexity(traces) == max(t.max_radius for t in traces)
        assert average_complexity(traces) == max(t.average_radius for t in traces)

    def test_empty_iterables_are_rejected(self):
        with pytest.raises(AnalysisError):
            classic_complexity([])
        with pytest.raises(AnalysisError):
            average_complexity([])


class TestWorstCaseOverAssignments:
    def test_exhaustive_worst_case_on_a_tiny_cycle(self, largest_id_algorithm):
        graph = cycle_graph(5)
        with pytest.warns(DeprecationWarning):
            result = worst_case_over_assignments(
                graph, largest_id_algorithm, ExhaustiveAdversary(), objective="average"
            )
        assert result.exact
        # Re-run the winning assignment and confirm the reported value.
        trace = run_ball_algorithm(graph, result.assignment, largest_id_algorithm)
        assert trace.average_radius == pytest.approx(result.value)


class TestExpectedMeasures:
    def test_expectation_is_the_mean_over_assignments(self, ring12, largest_id_algorithm):
        assignments = [random_assignment(12, seed=s) for s in range(5)]
        expected_avg, expected_max = expected_measures_over_random_ids(
            ring12, largest_id_algorithm, assignments
        )
        traces = [run_ball_algorithm(ring12, ids, largest_id_algorithm) for ids in assignments]
        assert expected_avg == pytest.approx(sum(t.average_radius for t in traces) / 5)
        assert expected_max == pytest.approx(sum(t.max_radius for t in traces) / 5)

    def test_requires_at_least_one_assignment(self, ring12, largest_id_algorithm):
        with pytest.raises(AnalysisError):
            expected_measures_over_random_ids(ring12, largest_id_algorithm, [])


class TestMeasureAPI:
    def test_registry_holds_the_three_measures(self):
        assert set(MEASURES) == {"classic", "average", "sum"}
        assert MEASURES["classic"] is CLASSIC_MEASURE
        assert CLASSIC_MEASURE.objective == "max"
        assert AVERAGE_MEASURE.objective == "average"
        assert SUM_MEASURE.objective == "sum"

    def test_get_measure_resolves_names_and_objectives(self):
        assert get_measure("classic") is CLASSIC_MEASURE
        assert get_measure("max") is CLASSIC_MEASURE
        assert get_measure("average") is AVERAGE_MEASURE
        with pytest.raises(AnalysisError, match="unknown measure"):
            get_measure("median")

    def test_of_trace_and_worst_over_traces(self, ring12, largest_id_algorithm):
        traces = [
            run_ball_algorithm(ring12, random_assignment(12, seed=s), largest_id_algorithm)
            for s in range(3)
        ]
        for trace in traces:
            assert CLASSIC_MEASURE.of_trace(trace) == trace.max_radius
            assert AVERAGE_MEASURE.of_trace(trace) == trace.average_radius
            assert SUM_MEASURE.of_trace(trace) == trace.sum_radius
        assert CLASSIC_MEASURE.worst_over_traces(traces) == classic_complexity(traces)
        assert AVERAGE_MEASURE.worst_over_traces(traces) == average_complexity(traces)

    def test_marginal_slices_a_round_distribution(self, largest_id_algorithm):
        result = exact_measure_distribution(cycle_graph(5), largest_id_algorithm)
        distribution = result.distribution
        assert (
            CLASSIC_MEASURE.marginal(distribution).weights()
            == distribution.max_distribution().weights()
        )
        assert (
            AVERAGE_MEASURE.marginal(distribution).weights()
            == distribution.average_distribution().weights()
        )
        assert (
            SUM_MEASURE.marginal(distribution).weights()
            == distribution.sum_distribution().weights()
        )


class TestComplexityReportJson:
    def test_round_trip(self, ring12, ring12_random_ids, largest_id_algorithm):
        from repro.api.session import Session

        report = Session().report(ring12, ring12_random_ids, largest_id_algorithm)
        assert ComplexityReport.from_json(report.to_json()) == report

    def test_document_is_tagged_and_versioned(self):
        import json

        report = ComplexityReport("cycle-4", "largest-id", 4, 2, 1.25, 5)
        document = json.loads(report.to_json())
        assert document["kind"] == "complexity-report"
        assert document["version"] == 1

    def test_foreign_documents_rejected(self):
        with pytest.raises(AnalysisError, match="not a complexity-report"):
            ComplexityReport.from_json('{"kind": "other"}')


class TestDistributionFacades:
    def test_exact_facade_reaches_the_dist_layer(self, largest_id_algorithm):
        result = exact_measure_distribution(cycle_graph(5), largest_id_algorithm)
        assert result.distribution.total_weight == 120
        assert result.certificate.exact

    def test_sampled_facade_reaches_the_dist_layer(self, largest_id_algorithm):
        result = sampled_measure_distribution(
            cycle_graph(8), largest_id_algorithm, samples=8, seed=1
        )
        assert result.distribution.total_weight == 8
        assert result.average.std_error >= 0.0


class TestSeededExpectedMeasures:
    def test_seed_contract_without_explicit_assignments(self, largest_id_algorithm):
        graph = cycle_graph(10)
        first = expected_measures_over_random_ids(
            graph, largest_id_algorithm, samples=12, seed=4
        )
        second = expected_measures_over_random_ids(
            graph, largest_id_algorithm, samples=12, seed=4
        )
        assert tuple(first) == tuple(second)
        assert first.average.mean == second.average.mean

    def test_reports_standard_errors(self, ring12, largest_id_algorithm):
        assignments = [random_assignment(12, seed=s) for s in range(5)]
        result = expected_measures_over_random_ids(
            ring12, largest_id_algorithm, assignments
        )
        assert result.average.count == 5
        assert result.average.std_error >= 0.0
        assert result.average.ci95_low <= result.average.mean <= result.average.ci95_high


class TestMeasureObjective:
    def test_known_objectives(self, ring12, ring12_random_ids, largest_id_algorithm):
        trace = run_ball_algorithm(ring12, ring12_random_ids, largest_id_algorithm)
        assert measure_objective(trace, "average") == trace.average_radius
        assert measure_objective(trace, "max") == trace.max_radius
        assert measure_objective(trace, "sum") == trace.sum_radius

    def test_unknown_objective_rejected(self, ring12, ring12_random_ids, largest_id_algorithm):
        trace = run_ball_algorithm(ring12, ring12_random_ids, largest_id_algorithm)
        with pytest.raises(AnalysisError, match="unknown objective"):
            measure_objective(trace, "median")
