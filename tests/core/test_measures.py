"""Tests for the complexity measures."""

import pytest

from repro.core.adversary import ExhaustiveAdversary
from repro.core.measures import (
    ComplexityReport,
    average_complexity,
    classic_complexity,
    evaluate_assignment,
    expected_measures_over_random_ids,
    measure_objective,
    worst_case_over_assignments,
)
from repro.core.runner import run_ball_algorithm
from repro.errors import AnalysisError
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.topology.cycle import cycle_graph


class TestEvaluateAssignment:
    def test_report_contains_both_measures(self, ring12, ring12_random_ids, largest_id_algorithm):
        report = evaluate_assignment(ring12, ring12_random_ids, largest_id_algorithm)
        assert isinstance(report, ComplexityReport)
        assert report.n == 12
        assert report.max_radius == 6  # the maximum's eccentricity on C_12
        assert 0 < report.average_radius < report.max_radius
        assert report.sum_radius == pytest.approx(report.average_radius * 12)
        assert report.graph_name == "cycle-12"
        assert report.algorithm_name == "largest-id"


class TestAggregates:
    def test_classic_and_average_take_the_worst_run(
        self, ring12, largest_id_algorithm
    ):
        traces = [
            run_ball_algorithm(ring12, random_assignment(12, seed=s), largest_id_algorithm)
            for s in range(4)
        ]
        assert classic_complexity(traces) == max(t.max_radius for t in traces)
        assert average_complexity(traces) == max(t.average_radius for t in traces)

    def test_empty_iterables_are_rejected(self):
        with pytest.raises(AnalysisError):
            classic_complexity([])
        with pytest.raises(AnalysisError):
            average_complexity([])


class TestWorstCaseOverAssignments:
    def test_exhaustive_worst_case_on_a_tiny_cycle(self, largest_id_algorithm):
        graph = cycle_graph(5)
        result = worst_case_over_assignments(
            graph, largest_id_algorithm, ExhaustiveAdversary(), objective="average"
        )
        assert result.exact
        # Re-run the winning assignment and confirm the reported value.
        trace = run_ball_algorithm(graph, result.assignment, largest_id_algorithm)
        assert trace.average_radius == pytest.approx(result.value)


class TestExpectedMeasures:
    def test_expectation_is_the_mean_over_assignments(self, ring12, largest_id_algorithm):
        assignments = [random_assignment(12, seed=s) for s in range(5)]
        expected_avg, expected_max = expected_measures_over_random_ids(
            ring12, largest_id_algorithm, assignments
        )
        traces = [run_ball_algorithm(ring12, ids, largest_id_algorithm) for ids in assignments]
        assert expected_avg == pytest.approx(sum(t.average_radius for t in traces) / 5)
        assert expected_max == pytest.approx(sum(t.max_radius for t in traces) / 5)

    def test_requires_at_least_one_assignment(self, ring12, largest_id_algorithm):
        with pytest.raises(AnalysisError):
            expected_measures_over_random_ids(ring12, largest_id_algorithm, [])


class TestMeasureObjective:
    def test_known_objectives(self, ring12, ring12_random_ids, largest_id_algorithm):
        trace = run_ball_algorithm(ring12, ring12_random_ids, largest_id_algorithm)
        assert measure_objective(trace, "average") == trace.average_radius
        assert measure_objective(trace, "max") == trace.max_radius
        assert measure_objective(trace, "sum") == trace.sum_radius

    def test_unknown_objective_rejected(self, ring12, ring12_random_ids, largest_id_algorithm):
        trace = run_ball_algorithm(ring12, ring12_random_ids, largest_id_algorithm)
        with pytest.raises(AnalysisError, match="unknown objective"):
            measure_objective(trace, "median")
