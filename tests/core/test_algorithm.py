"""Tests for the ball-algorithm interfaces."""

from repro.core.algorithm import BallAlgorithm, FunctionBallAlgorithm
from repro.model.ball import extract_ball
from repro.model.identifiers import identity_assignment
from repro.topology.cycle import cycle_graph


class TestFunctionBallAlgorithm:
    def test_wraps_a_plain_function(self):
        algorithm = FunctionBallAlgorithm(lambda ball: ball.center_id, name="echo", problem="p")
        graph = cycle_graph(5)
        ball = extract_ball(graph, identity_assignment(5), 2, 0)
        assert algorithm.decide(ball) == 2
        assert algorithm.name == "echo"
        assert algorithm.problem == "p"

    def test_none_result_means_keep_growing(self):
        algorithm = FunctionBallAlgorithm(lambda ball: None)
        ball = extract_ball(cycle_graph(5), identity_assignment(5), 0, 0)
        assert algorithm.decide(ball) is None

    def test_supports_graph_defaults_to_true(self):
        algorithm = FunctionBallAlgorithm(lambda ball: 1)
        assert algorithm.supports_graph(cycle_graph(4))

    def test_repr_mentions_name_and_problem(self):
        algorithm = FunctionBallAlgorithm(lambda ball: 1, name="x", problem="y")
        assert "x" in repr(algorithm) and "y" in repr(algorithm)


class TestSubclassing:
    def test_subclass_can_restrict_supported_graphs(self):
        class CycleOnly(BallAlgorithm):
            name = "cycle-only"

            def decide(self, ball):
                return 0

            def supports_graph(self, graph):
                return graph.is_cycle()

        algorithm = CycleOnly()
        assert algorithm.supports_graph(cycle_graph(4))
        from repro.topology.path import path_graph

        assert not algorithm.supports_graph(path_graph(4))
