"""Tests for the growth-rate analysis helpers."""

import math

import pytest

from repro.core.analysis import empirical_exponent, fit_growth, growth_candidates, ratio_series
from repro.errors import AnalysisError

SIZES = [16, 32, 64, 128, 256, 512, 1024]


class TestFitGrowth:
    def test_recovers_linear_growth(self):
        fit = fit_growth(SIZES, [3.0 * n for n in SIZES])
        assert fit.best_name == "linear"
        assert fit.scale == pytest.approx(3.0)
        assert fit.relative_error < 1e-9

    def test_recovers_logarithmic_growth(self):
        fit = fit_growth(SIZES, [2.0 * math.log(n) for n in SIZES])
        assert fit.best_name == "log"

    def test_recovers_nlogn_growth(self):
        fit = fit_growth(SIZES, [0.5 * n * math.log(n) for n in SIZES])
        assert fit.best_name == "nlogn"

    def test_recovers_constant_series(self):
        fit = fit_growth(SIZES, [7.0] * len(SIZES))
        assert fit.best_name in ("constant", "log*")

    def test_separates_linear_from_log_clearly(self):
        fit = fit_growth(SIZES, [float(n) for n in SIZES])
        assert fit.errors_by_name["log"] > 5 * fit.errors_by_name["linear"]

    def test_is_consistent_with_allows_near_ties(self):
        fit = fit_growth(SIZES, [math.log(n) + 0.5 for n in SIZES])
        assert fit.is_consistent_with("log", tolerance=2.0)

    def test_is_consistent_with_unknown_candidate_raises(self):
        fit = fit_growth(SIZES, [1.0] * len(SIZES))
        with pytest.raises(AnalysisError):
            fit.is_consistent_with("exponential")

    def test_custom_candidates(self):
        fit = fit_growth(SIZES, [n**2 for n in SIZES], candidates={"sq": lambda n: n * n})
        assert fit.best_name == "sq"

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            fit_growth([1, 2, 3], [1, 2])

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            fit_growth([1, 2], [1, 2])

    def test_non_positive_sizes_rejected(self):
        with pytest.raises(AnalysisError):
            fit_growth([0, 1, 2], [1, 2, 3])


class TestRatioSeries:
    def test_doubling_sizes_linear_series_has_ratio_two(self):
        ratios = ratio_series(SIZES, [float(n) for n in SIZES])
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_log_series_ratios_tend_to_one(self):
        ratios = ratio_series(SIZES, [math.log(n) for n in SIZES])
        assert ratios[-1] < 1.2

    def test_zero_values_give_infinite_ratio(self):
        assert ratio_series([1, 2], [0.0, 5.0]) == [math.inf]

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            ratio_series([1, 2, 3], [1.0])


class TestEmpiricalExponent:
    def test_linear_series_has_exponent_one(self):
        assert empirical_exponent(SIZES, [2.0 * n for n in SIZES]) == pytest.approx(1.0)

    def test_quadratic_series_has_exponent_two(self):
        assert empirical_exponent(SIZES, [float(n * n) for n in SIZES]) == pytest.approx(2.0)

    def test_log_series_has_small_exponent(self):
        assert empirical_exponent(SIZES, [math.log(n) for n in SIZES]) < 0.35

    def test_rejects_non_positive_values(self):
        with pytest.raises(AnalysisError):
            empirical_exponent([1, 2], [0.0, 1.0])

    def test_rejects_single_point(self):
        with pytest.raises(AnalysisError):
            empirical_exponent([1], [1.0])


class TestCandidates:
    def test_candidate_set_contains_the_paper_relevant_laws(self):
        names = set(growth_candidates())
        assert {"log*", "log", "linear", "nlogn"} <= names

    def test_candidates_are_callable_and_positive(self):
        for name, function in growth_candidates().items():
            assert function(1024.0) > 0, name
