"""Tests for the ball-algorithm runner."""

import pytest

from repro.core.algorithm import FunctionBallAlgorithm
from repro.core.runner import node_radius, run_ball_algorithm, run_on_assignments
from repro.errors import AlgorithmError, TopologyError
from repro.model.graph import Graph
from repro.model.identifiers import identity_assignment, random_assignment
from repro.topology.cycle import cycle_graph


def radius_k_algorithm(k):
    """Outputs "done" exactly when the ball radius reaches ``k``."""
    return FunctionBallAlgorithm(
        lambda ball: "done" if ball.radius >= k else None, name=f"radius-{k}"
    )


class TestRunBallAlgorithm:
    def test_records_the_first_deciding_radius(self, ring12, ring12_random_ids):
        trace = run_ball_algorithm(ring12, ring12_random_ids, radius_k_algorithm(3))
        assert set(trace.radii().values()) == {3}
        assert set(trace.outputs_by_position().values()) == {"done"}

    def test_radius_zero_decisions_are_possible(self, ring12, ring12_random_ids):
        trace = run_ball_algorithm(ring12, ring12_random_ids, radius_k_algorithm(0))
        assert trace.max_radius == 0

    def test_refusing_to_decide_raises(self, ring12, ring12_random_ids):
        never = FunctionBallAlgorithm(lambda ball: None, name="never")
        with pytest.raises(AlgorithmError, match="refused to output"):
            run_ball_algorithm(ring12, ring12_random_ids, never)

    def test_max_radius_cap_is_honoured(self, ring12, ring12_random_ids):
        with pytest.raises(AlgorithmError):
            run_ball_algorithm(ring12, ring12_random_ids, radius_k_algorithm(10), max_radius=4)

    def test_identifier_count_mismatch_rejected(self, ring12):
        with pytest.raises(TopologyError):
            run_ball_algorithm(ring12, identity_assignment(5), radius_k_algorithm(0))

    def test_disconnected_graph_rejected(self):
        graph = Graph([(), ()])
        with pytest.raises(TopologyError, match="connected"):
            run_ball_algorithm(graph, identity_assignment(2), radius_k_algorithm(0))

    def test_unsupported_graph_rejected(self):
        cycle_only = FunctionBallAlgorithm(lambda ball: 0, name="picky")
        cycle_only.supports_graph = lambda graph: False
        with pytest.raises(TopologyError, match="does not support"):
            run_ball_algorithm(cycle_graph(5), identity_assignment(5), cycle_only)

    def test_outputs_are_a_pure_function_of_the_view(self):
        # Two nodes with identical views (same identifiers at the same
        # distances) must receive identical outputs.
        algorithm = FunctionBallAlgorithm(
            lambda ball: ball.max_id() if ball.radius >= 1 else None, name="max-at-1"
        )
        graph = cycle_graph(6)
        ids = identity_assignment(6)
        trace = run_ball_algorithm(graph, ids, algorithm)
        assert trace.outputs_by_position()[1] == 2
        assert trace.outputs_by_position()[4] == 5


class TestHelpers:
    def test_run_on_assignments_returns_one_trace_each(self, ring12):
        assignments = [random_assignment(12, seed=s) for s in range(3)]
        traces = run_on_assignments(ring12, assignments, radius_k_algorithm(1))
        assert len(traces) == 3
        assert all(trace.n == 12 for trace in traces)

    def test_node_radius_matches_full_run(self, ring12, ring12_random_ids, largest_id_algorithm):
        trace = run_ball_algorithm(ring12, ring12_random_ids, largest_id_algorithm)
        for position in ring12.positions():
            assert (
                node_radius(ring12, ring12_random_ids, largest_id_algorithm, position)
                == trace.radii()[position]
            )

    def test_node_radius_raises_when_never_deciding(self, ring12, ring12_random_ids):
        never = FunctionBallAlgorithm(lambda ball: None, name="never")
        with pytest.raises(AlgorithmError):
            node_radius(ring12, ring12_random_ids, never, 0)

    def test_node_radius_identifier_mismatch(self, ring12):
        with pytest.raises(TopologyError):
            node_radius(ring12, identity_assignment(3), radius_k_algorithm(0), 0)
