"""Tests for the ball <-> round compilers."""

import pytest

from repro.algorithms.cole_vishkin import ColeVishkinRing, cv_rounds_needed
from repro.algorithms.full_gather import BallSimulationOfRounds, FullGatherRoundAlgorithm
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import random_assignment
from repro.model.rounds import run_round_algorithm
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph


class TestBallSimulationOfRounds:
    @pytest.mark.parametrize("n", [8, 32, 100])
    def test_replayed_cole_vishkin_matches_the_round_execution_exactly(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        round_trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        ball_trace = run_ball_algorithm(graph, ids, BallSimulationOfRounds(ColeVishkinRing(n)))
        assert ball_trace.outputs_by_position() == round_trace.outputs_by_position()
        assert ball_trace.radii() == round_trace.radii()

    def test_radius_equals_the_commit_round_of_the_wrapped_algorithm(self):
        n = 64
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=1)
        trace = run_ball_algorithm(graph, ids, BallSimulationOfRounds(ColeVishkinRing(n)))
        assert set(trace.radii().values()) == {cv_rounds_needed(n)}

    def test_problem_key_is_inherited(self):
        compiled = BallSimulationOfRounds(ColeVishkinRing(8))
        assert compiled.problem == "3-coloring"
        assert "cole-vishkin" in compiled.name

    def test_problem_key_can_be_overridden(self):
        compiled = BallSimulationOfRounds(ColeVishkinRing(8), problem="coloring")
        assert compiled.problem == "coloring"


class TestFullGatherRoundAlgorithm:
    @pytest.mark.parametrize("n", [6, 12, 24])
    def test_outputs_match_the_native_ball_execution(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        ball_trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(LargestIdAlgorithm()))
        assert round_trace.outputs_by_position() == ball_trace.outputs_by_position()
        assert certify("largest-id", graph, ids, round_trace)

    @pytest.mark.parametrize("n", [6, 12, 24])
    def test_round_counts_exceed_ball_radii_by_at_most_one(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n + 1)
        ball_trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(LargestIdAlgorithm()))
        for position in graph.positions():
            ball_radius = ball_trace.radii()[position]
            round_radius = round_trace.radii()[position]
            assert ball_radius <= round_radius <= ball_radius + 1

    def test_works_with_the_greedy_coloring_algorithm(self):
        graph = cycle_graph(10)
        ids = random_assignment(10, seed=2)
        round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(GreedyColoringByID()))
        assert certify("coloring", graph, ids, round_trace)

    def test_works_beyond_cycles(self):
        graph = grid_graph(3, 3)
        ids = random_assignment(9, seed=4)
        round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(LargestIdAlgorithm()))
        assert certify("largest-id", graph, ids, round_trace)

    def test_name_mentions_the_wrapped_algorithm(self):
        compiled = FullGatherRoundAlgorithm(LargestIdAlgorithm())
        assert "largest-id" in compiled.name
        assert compiled.problem == "largest-id"


class TestRoundTrip:
    def test_ball_to_round_to_ball_preserves_outputs(self):
        n = 12
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=9)
        native = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        round_tripped = run_ball_algorithm(
            graph, ids, BallSimulationOfRounds(FullGatherRoundAlgorithm(LargestIdAlgorithm()))
        )
        assert native.outputs_by_position() == round_tripped.outputs_by_position()
