"""Tests for the uniform MIS-based ring 3-colouring."""

import itertools

import pytest

from repro.algorithms.mis import GreedyMISByID
from repro.algorithms.ring_coloring_via_mis import RingColoringViaMIS
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import IdentifierAssignment, identity_assignment, random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


class TestCorrectness:
    @pytest.mark.parametrize("n", [4, 9, 33, 100])
    def test_produces_a_proper_three_coloring_on_random_ids(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        trace = run_ball_algorithm(graph, ids, RingColoringViaMIS())
        assert certify("3-coloring", graph, ids, trace)

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_every_identifier_order_is_coloured_properly(self, n):
        graph = cycle_graph(n)
        for permutation in itertools.permutations(range(n)):
            ids = IdentifierAssignment(permutation)
            trace = run_ball_algorithm(graph, ids, RingColoringViaMIS())
            assert certify("3-coloring", graph, ids, trace)

    def test_sorted_identifiers_are_handled(self):
        n = 48
        graph = cycle_graph(n)
        ids = identity_assignment(n)
        trace = run_ball_algorithm(graph, ids, RingColoringViaMIS())
        assert certify("3-coloring", graph, ids, trace)


class TestStructure:
    def test_mis_members_receive_colour_zero(self):
        n = 30
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=7)
        colors = run_ball_algorithm(graph, ids, RingColoringViaMIS()).outputs_by_position()
        mis = run_ball_algorithm(graph, ids, GreedyMISByID()).outputs_by_position()
        for position in graph.positions():
            assert (colors[position] == 0) == mis[position]

    def test_only_ring_topologies_are_supported(self):
        algorithm = RingColoringViaMIS()
        assert algorithm.supports_graph(cycle_graph(5))
        assert not algorithm.supports_graph(path_graph(5))

    def test_radius_is_at_least_the_mis_radius_and_equal_for_members(self):
        n = 40
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=11)
        coloring_trace = run_ball_algorithm(graph, ids, RingColoringViaMIS())
        mis_trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        coloring_radii = coloring_trace.radii()
        mis_radii = mis_trace.radii()
        members = mis_trace.outputs_by_position()
        for position in graph.positions():
            assert coloring_radii[position] >= mis_radii[position]
            if members[position]:
                # A member only needs its own MIS decision.
                assert coloring_radii[position] == mis_radii[position]


class TestMeasureProfile:
    def test_average_is_small_on_random_identifiers(self):
        n = 120
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, random_assignment(n, seed=3), RingColoringViaMIS())
        assert trace.average_radius < 6

    def test_worst_case_is_linear_on_sorted_identifiers(self):
        n = 40
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, identity_assignment(n), RingColoringViaMIS())
        assert trace.max_radius >= n // 2
