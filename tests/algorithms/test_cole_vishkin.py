"""Tests for the Cole–Vishkin 3-colouring of the oriented ring."""

import pytest

from repro.algorithms.cole_vishkin import (
    ColeVishkinRing,
    cv_rounds_needed,
    is_consistently_oriented_ring,
)
from repro.core.certification import certify
from repro.errors import AlgorithmError, TopologyError
from repro.model.identifiers import identity_assignment, random_assignment, reversed_assignment
from repro.model.rounds import run_round_algorithm
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph
from repro.utils.math_functions import log_star


class TestOrientation:
    def test_builder_cycles_are_consistently_oriented(self):
        assert is_consistently_oriented_ring(cycle_graph(9))

    def test_paths_are_not_oriented_rings(self):
        assert not is_consistently_oriented_ring(path_graph(9))


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 16, 37, 100, 257])
    def test_produces_a_proper_three_coloring(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        assert certify("3-coloring", graph, ids, trace)

    @pytest.mark.parametrize("builder", [identity_assignment, reversed_assignment])
    def test_structured_identifier_orders_are_handled(self, builder):
        n = 64
        graph = cycle_graph(n)
        ids = builder(n)
        trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        assert certify("3-coloring", graph, ids, trace)

    def test_colors_are_in_the_three_colour_palette(self):
        n = 50
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=1)
        trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        assert set(trace.outputs_by_position().values()) <= {0, 1, 2}


class TestRadii:
    @pytest.mark.parametrize("n", [8, 64, 512])
    def test_every_node_commits_at_the_predicted_round(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=3)
        trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        assert set(trace.radii().values()) == {cv_rounds_needed(n)}

    def test_average_equals_max_radius(self):
        n = 128
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=4)
        trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        assert trace.average_radius == trace.max_radius

    def test_round_count_grows_like_log_star(self):
        # Over a 2^16-fold size increase the number of rounds changes by at
        # most a couple of units.
        assert cv_rounds_needed(2**20) - cv_rounds_needed(16) <= 3
        assert cv_rounds_needed(2**20) >= log_star(2**20)


class TestValidation:
    def test_rejects_rings_smaller_than_three(self):
        with pytest.raises(AlgorithmError):
            ColeVishkinRing(2)

    def test_rejects_nodes_of_wrong_degree(self):
        graph = path_graph(5)
        ids = identity_assignment(5)
        with pytest.raises(TopologyError, match="rings only"):
            run_round_algorithm(graph, ids, ColeVishkinRing(5))

    def test_rejects_identifiers_outside_the_declared_range(self):
        graph = cycle_graph(4)
        from repro.model.identifiers import IdentifierAssignment

        ids = IdentifierAssignment([0, 1, 2, 99])
        with pytest.raises(AlgorithmError, match="outside"):
            run_round_algorithm(graph, ids, ColeVishkinRing(4))

    def test_cv_rounds_needed_small_values(self):
        assert cv_rounds_needed(3) == 3
        assert cv_rounds_needed(6) == 3
        assert cv_rounds_needed(7) == 4
