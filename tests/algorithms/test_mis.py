"""Tests for the greedy-by-identifier maximal independent set."""

import pytest

from repro.algorithms.mis import GreedyMISByID
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import IdentifierAssignment, identity_assignment, random_assignment
from repro.topology.complete import complete_graph, star_graph
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 7, 20, 45])
    def test_mis_is_valid_on_cycles(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        assert certify("mis", graph, ids, trace)

    @pytest.mark.parametrize(
        "builder",
        [lambda: path_graph(11), lambda: grid_graph(3, 5), lambda: star_graph(7), lambda: complete_graph(6)],
    )
    def test_mis_is_valid_on_other_topologies(self, builder):
        graph = builder()
        ids = random_assignment(graph.n, seed=3)
        trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        assert certify("mis", graph, ids, trace)


class TestGreedyRule:
    def test_membership_matches_the_sequential_greedy_rule(self):
        graph = cycle_graph(10)
        ids = random_assignment(10, seed=21)
        trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        outputs = trace.outputs_by_identifier()
        expected: dict[int, bool] = {}
        for identifier in sorted(ids.identifiers(), reverse=True):
            position = ids.position_of(identifier)
            higher_in = [
                expected[ids[w]] for w in graph.neighbors(position) if ids[w] > identifier
            ]
            expected[identifier] = not any(higher_in)
        assert outputs == expected

    def test_global_maximum_always_joins(self):
        graph = cycle_graph(9)
        ids = random_assignment(9, seed=5)
        trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        assert trace.outputs_by_identifier()[ids.max_identifier()] is True

    def test_complete_graph_selects_exactly_the_maximum(self):
        graph = complete_graph(8)
        ids = random_assignment(8, seed=2)
        trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        members = [p for p, selected in trace.outputs_by_position().items() if selected]
        assert members == [ids.argmax_position()]

    def test_star_graph_selects_leaves_when_centre_is_not_maximum(self):
        graph = star_graph(4)
        ids = IdentifierAssignment([0, 1, 2, 3, 4])  # centre carries the smallest identifier
        trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        outputs = trace.outputs_by_position()
        assert outputs[0] is False
        assert all(outputs[p] is True for p in range(1, 5))


class TestRadii:
    def test_sorted_identifiers_force_long_dependency_chains(self):
        n = 20
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, identity_assignment(n), GreedyMISByID())
        assert trace.max_radius >= n // 2

    def test_random_identifiers_keep_the_average_small(self):
        n = 80
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, random_assignment(n, seed=6), GreedyMISByID())
        assert trace.average_radius < 6

    def test_mis_and_coloring_share_the_dependency_structure(self):
        from repro.algorithms.greedy_coloring import GreedyColoringByID

        graph = cycle_graph(14)
        ids = random_assignment(14, seed=10)
        mis_trace = run_ball_algorithm(graph, ids, GreedyMISByID())
        col_trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        assert mis_trace.radii() == col_trace.radii()
