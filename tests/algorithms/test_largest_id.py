"""Tests for the largest-ID algorithm (paper Section 2)."""

import pytest

from repro.algorithms.largest_id import (
    LargestIdAlgorithm,
    predicted_average_radius,
    predicted_largest_id_radii,
)
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import (
    IdentifierAssignment,
    identity_assignment,
    random_assignment,
    reversed_assignment,
)
from repro.topology.complete import complete_graph, star_graph
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import random_tree


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 4, 7, 16, 33])
    def test_output_is_correct_on_cycles_with_random_ids(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert certify("largest-id", graph, ids, trace)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: path_graph(9),
            lambda: complete_graph(6),
            lambda: star_graph(5),
            lambda: grid_graph(3, 4),
            lambda: random_tree(15, seed=2),
        ],
    )
    def test_output_is_correct_beyond_cycles(self, builder):
        graph = builder()
        ids = random_assignment(graph.n, seed=17)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert certify("largest-id", graph, ids, trace)


class TestRadii:
    def test_maximum_vertex_pays_its_eccentricity(self):
        graph = cycle_graph(10)
        ids = identity_assignment(10)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert trace.radii()[ids.argmax_position()] == 5

    def test_non_maximum_vertices_stop_at_nearest_larger_identifier(self):
        graph = cycle_graph(8)
        ids = IdentifierAssignment([7, 1, 4, 0, 2, 6, 3, 5])
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        radii = trace.radii()
        assert radii[1] == 1  # position 1 (id 1) sees id 7 at distance 1
        assert radii[6] == 1  # position 6 (id 3) sees id 6 at distance 1
        assert radii[2] == 2  # position 2 (id 4) is a local maximum; id 7 sits at distance 2

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_simulated_radii_match_the_closed_form_oracle(self, seed):
        graph = cycle_graph(17)
        ids = random_assignment(17, seed=seed)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert trace.radii() == predicted_largest_id_radii(graph, ids)

    def test_oracle_matches_on_trees_as_well(self):
        graph = random_tree(20, seed=5)
        ids = random_assignment(20, seed=6)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert trace.radii() == predicted_largest_id_radii(graph, ids)

    def test_predicted_average_radius_agrees_with_trace(self):
        graph = cycle_graph(15)
        ids = random_assignment(15, seed=8)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert predicted_average_radius(graph, ids) == pytest.approx(trace.average_radius)


class TestMeasureSeparation:
    def test_sorted_identifiers_give_constant_average_but_linear_max(self):
        # With identifiers sorted around the ring every non-maximum vertex
        # has a larger neighbour at distance 1.
        n = 40
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, identity_assignment(n), LargestIdAlgorithm())
        assert trace.max_radius == n // 2
        assert trace.average_radius == pytest.approx((n - 1 + n // 2) / n)

    def test_reversed_identifiers_behave_like_sorted_ones(self):
        n = 24
        graph = cycle_graph(n)
        forward = run_ball_algorithm(graph, identity_assignment(n), LargestIdAlgorithm())
        backward = run_ball_algorithm(graph, reversed_assignment(n), LargestIdAlgorithm())
        assert forward.average_radius == pytest.approx(backward.average_radius)

    def test_average_is_exponentially_smaller_than_max_on_large_rings(self):
        n = 256
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, random_assignment(n, seed=1), LargestIdAlgorithm())
        assert trace.max_radius == n // 2
        assert trace.average_radius < 2 * (n).bit_length()  # well below anything linear

    def test_complete_graph_has_radius_one_everywhere(self):
        graph = complete_graph(7)
        ids = random_assignment(7, seed=3)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        assert set(trace.radii().values()) == {1}
        assert trace.average_radius == trace.max_radius == 1
