"""Tests for the Cole–Vishkin colour-reduction primitives."""

import itertools

import pytest

from repro.algorithms.color_reduction import (
    cv_step,
    free_color,
    iterations_until_six_colors,
    palette_after_iterations,
)
from repro.errors import AlgorithmError


class TestCvStep:
    def test_known_example(self):
        # 6 = 0b110, 5 = 0b101 differ first at bit 0; bit 0 of 6 is 0 -> colour 0.
        assert cv_step(6, 5) == 0
        # 6 = 0b110, 2 = 0b010 differ first at bit 2; bit 2 of 6 is 1 -> colour 5.
        assert cv_step(6, 2) == 5

    def test_result_depends_on_own_bit(self):
        assert cv_step(5, 6) != cv_step(6, 5)

    def test_equal_colours_rejected(self):
        with pytest.raises(AlgorithmError, match="distinct"):
            cv_step(4, 4)

    def test_negative_colours_rejected(self):
        with pytest.raises(AlgorithmError):
            cv_step(-1, 3)

    def test_properness_is_preserved_for_all_small_pairs(self):
        # For every chain x -> y -> z of distinct colours the recoloured pair
        # (f(x,y), f(y,z)) is again distinct — the key Cole–Vishkin invariant.
        for x, y, z in itertools.permutations(range(16), 3):
            assert cv_step(x, y) != cv_step(y, z)

    def test_mutual_reference_also_stays_proper(self):
        for x, y in itertools.permutations(range(16), 2):
            assert cv_step(x, y) != cv_step(y, x)

    def test_output_range_shrinks_with_palette(self):
        for x, y in itertools.permutations(range(64), 2):
            assert 0 <= cv_step(x, y) < 2 * 6  # 64 colours = 6 bits


class TestPaletteIteration:
    def test_palette_after_zero_iterations_is_unchanged(self):
        assert palette_after_iterations(100, 0) == 100

    def test_single_iteration_shrinks_to_two_bits_worth(self):
        assert palette_after_iterations(2**20, 1) == 40

    def test_never_drops_below_six(self):
        assert palette_after_iterations(1000, 50) == 6
        assert palette_after_iterations(5, 3) == 5

    @pytest.mark.parametrize(
        ("palette", "expected"),
        [(6, 0), (7, 1), (8, 1), (16, 2), (64, 3), (2**16, 4), (2**64, 4)],
    )
    def test_iterations_until_six(self, palette, expected):
        assert iterations_until_six_colors(palette) == expected

    def test_iterations_grow_extremely_slowly(self):
        assert iterations_until_six_colors(10**9) <= 4

    def test_iterations_consistent_with_palette_function(self):
        for palette in (10, 100, 1000, 10**6):
            iterations = iterations_until_six_colors(palette)
            assert palette_after_iterations(palette, iterations) <= 6


class TestFreeColor:
    def test_picks_smallest_unused(self):
        assert free_color({0, 2}) == 1
        assert free_color({1, 2}) == 0
        assert free_color(set()) == 0

    def test_two_neighbours_always_leave_a_colour_in_three(self):
        for a in range(6):
            for b in range(6):
                assert free_color({a, b}, palette=3) in {0, 1, 2}

    def test_full_palette_raises(self):
        with pytest.raises(AlgorithmError, match="no free colour"):
            free_color({0, 1, 2}, palette=3)
