"""Tests for the named-algorithm registry."""

import pytest

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.algorithms.registry import algorithm_registry, make_algorithm, register_algorithm
from repro.errors import ConfigurationError


class TestRegistry:
    def test_built_in_names_are_present(self):
        names = set(algorithm_registry())
        assert {"largest-id", "greedy-coloring", "greedy-mis", "cole-vishkin", "cole-vishkin-ball"} <= names

    def test_make_algorithm_instantiates_with_the_instance_size(self):
        algorithm = make_algorithm("cole-vishkin", 32)
        assert isinstance(algorithm, ColeVishkinRing)
        assert algorithm.n == 32

    def test_size_independent_algorithms_ignore_n(self):
        assert isinstance(make_algorithm("largest-id", 5), LargestIdAlgorithm)
        assert isinstance(make_algorithm("largest-id", 500), LargestIdAlgorithm)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="registered algorithms"):
            make_algorithm("quicksort", 8)

    def test_custom_registration_is_visible(self):
        from repro.algorithms import registry as registry_module

        register_algorithm("custom-test-algorithm", lambda n: LargestIdAlgorithm())
        try:
            assert "custom-test-algorithm" in algorithm_registry()
            assert isinstance(
                make_algorithm("custom-test-algorithm", 3), LargestIdAlgorithm
            )
        finally:
            # The registry is process-global; leaking the test entry would
            # break every downstream suite that walks algorithm_registry()
            # (rule coverage, the kernel property wall, ...).
            registry_module._REGISTRY.pop("custom-test-algorithm", None)

    def test_registry_returns_a_copy(self):
        snapshot = algorithm_registry()
        snapshot["transient"] = lambda n: LargestIdAlgorithm()
        assert "transient" not in algorithm_registry()
