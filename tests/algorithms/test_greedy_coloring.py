"""Tests for the greedy-by-identifier colouring."""

import pytest

from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.core.certification import certify, certify_proper_coloring
from repro.core.runner import run_ball_algorithm
from repro.model.identifiers import IdentifierAssignment, identity_assignment, random_assignment
from repro.topology.complete import star_graph
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 6, 17, 48])
    def test_colouring_is_proper_on_cycles(self, n):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        assert certify("coloring", graph, ids, trace)

    @pytest.mark.parametrize(
        "builder", [lambda: path_graph(12), lambda: grid_graph(4, 5), lambda: star_graph(6)]
    )
    def test_colouring_is_proper_on_other_topologies(self, builder):
        graph = builder()
        ids = random_assignment(graph.n, seed=5)
        trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        assert certify("coloring", graph, ids, trace)

    def test_palette_is_bounded_by_max_degree_plus_one(self):
        graph = grid_graph(4, 4)
        ids = random_assignment(16, seed=9)
        trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        certify_proper_coloring(graph, ids, trace.outputs_by_position(), num_colors=graph.max_degree() + 1)

    def test_cycle_uses_at_most_three_colours(self):
        graph = cycle_graph(21)
        ids = random_assignment(21, seed=2)
        trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        assert set(trace.outputs_by_position().values()) <= {0, 1, 2}


class TestGreedyRule:
    def test_colour_equals_sequential_greedy_in_decreasing_id_order(self):
        graph = cycle_graph(9)
        ids = random_assignment(9, seed=7)
        trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        outputs = trace.outputs_by_identifier()
        # Recompute the global rule directly.
        expected: dict[int, int] = {}
        for identifier in sorted(ids.identifiers(), reverse=True):
            position = ids.position_of(identifier)
            used = {
                expected[ids[w]]
                for w in graph.neighbors(position)
                if ids[w] > identifier
            }
            colour = 0
            while colour in used:
                colour += 1
            expected[identifier] = colour
        assert outputs == expected

    def test_global_maximum_gets_colour_zero(self):
        graph = cycle_graph(11)
        ids = random_assignment(11, seed=13)
        trace = run_ball_algorithm(graph, ids, GreedyColoringByID())
        assert trace.outputs_by_identifier()[ids.max_identifier()] == 0


class TestRadii:
    def test_sorted_identifiers_force_linear_worst_case(self):
        n = 24
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, identity_assignment(n), GreedyColoringByID())
        assert trace.max_radius >= n // 2

    def test_random_identifiers_keep_the_average_small(self):
        n = 96
        graph = cycle_graph(n)
        trace = run_ball_algorithm(graph, random_assignment(n, seed=3), GreedyColoringByID())
        assert trace.average_radius < 6

    def test_radius_is_at_least_one_on_cycles(self):
        graph = cycle_graph(8)
        trace = run_ball_algorithm(graph, random_assignment(8, seed=1), GreedyColoringByID())
        assert min(trace.radii().values()) >= 1
