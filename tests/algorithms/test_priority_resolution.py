"""Tests for the greedy-by-identifier dependency resolution."""

from repro.algorithms.priority_resolution import dependency_depth, resolve_by_descending_id
from repro.model.ball import extract_ball
from repro.model.identifiers import IdentifierAssignment, identity_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.path import path_graph


def count_higher(identifier, higher):
    return len(higher)


class TestResolveByDescendingId:
    def test_nothing_is_determined_at_radius_zero(self):
        graph = cycle_graph(6)
        ball = extract_ball(graph, identity_assignment(6), 2, 0)
        assert resolve_by_descending_id(ball, count_higher) == {}

    def test_local_maximum_is_determined_once_its_neighbourhood_is_visible(self):
        graph = cycle_graph(6)
        ids = IdentifierAssignment([0, 5, 1, 2, 3, 4])
        ball = extract_ball(graph, ids, 1, 1)  # centre id 5 sees 0 and 1
        determined = resolve_by_descending_id(ball, count_higher)
        assert determined[5] == 0  # the maximum has no higher neighbours
        assert 0 not in determined  # frontier nodes lack their full neighbourhood

    def test_chain_resolution_follows_decreasing_identifiers(self):
        graph = path_graph(4)
        ids = IdentifierAssignment([3, 2, 1, 0])
        ball = extract_ball(graph, ids, 0, 3)  # the whole path is visible
        determined = resolve_by_descending_id(ball, count_higher)
        assert determined == {3: 0, 2: 1, 1: 1, 0: 1}

    def test_undetermined_when_a_higher_neighbour_is_hidden(self):
        graph = path_graph(5)
        ids = IdentifierAssignment([0, 1, 2, 3, 4])
        ball = extract_ball(graph, ids, 1, 1)  # id 1 sees 0 and 2; 2's neighbour 3 is hidden
        determined = resolve_by_descending_id(ball, count_higher)
        assert 1 not in determined
        assert 2 not in determined

    def test_whole_graph_view_determines_everyone(self):
        graph = cycle_graph(7)
        ids = IdentifierAssignment([3, 6, 1, 5, 0, 2, 4])
        ball = extract_ball(graph, ids, 0, 3)
        determined = resolve_by_descending_id(ball, count_higher)
        assert set(determined) == set(range(7))


class TestDependencyDepth:
    def test_depth_zero_for_a_visible_local_maximum(self):
        graph = cycle_graph(5)
        ids = IdentifierAssignment([4, 0, 1, 2, 3])
        ball = extract_ball(graph, ids, 0, 1)
        assert dependency_depth(ball, 4) == 0

    def test_depth_counts_the_longest_increasing_path(self):
        graph = path_graph(4)
        ids = IdentifierAssignment([0, 1, 2, 3])
        ball = extract_ball(graph, ids, 0, 3)
        assert dependency_depth(ball, 0) == 3
        assert dependency_depth(ball, 2) == 1

    def test_depth_is_none_when_the_cone_leaves_the_ball(self):
        graph = path_graph(6)
        ids = IdentifierAssignment([0, 1, 2, 3, 4, 5])
        ball = extract_ball(graph, ids, 0, 2)
        assert dependency_depth(ball, 0) is None
