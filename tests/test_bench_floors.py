"""The benchmark-regression guard, and the committed artifacts it gates."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"

sys.path.insert(0, str(SCRIPTS))

import check_bench_floors  # noqa: E402


class TestCommittedArtifacts:
    def test_every_committed_artifact_meets_its_floor(self):
        assert check_bench_floors.main(["--quiet"]) == 0

    def test_every_artifact_kind_is_known_to_the_guard(self):
        # Some artifacts are committed (api, dist, kernel), others are
        # regenerated per run (engine, search, gitignored); whatever is on
        # disk must be a kind the guard knows how to gate.
        kinds = {
            json.loads(path.read_text())["kind"]
            for path in REPO_ROOT.glob("BENCH_*.json")
        }
        assert kinds
        assert kinds <= set(check_bench_floors.GATED_RESULTS)


class TestGuardLogic:
    def _write(self, tmp_path, name, document):
        (tmp_path / name).write_text(json.dumps(document))

    def test_detects_a_regressed_speedup(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_engine.json",
            {
                "kind": "repro-bench-engine",
                "min_speedup": 3.0,
                "results": {
                    "exhaustive_ring_n7": {"speedup": 1.2},
                    "sampling_sweep_n64": {"speedup": 4.0},
                },
            },
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_detects_a_missing_required_entry(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_kernel.json",
            {"kind": "repro-bench-kernel", "results": {}},
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_optional_entries_may_be_absent(self, tmp_path):
        # The kernel's numpy legs are absent on numpy-free machines; only
        # the stdlib entries are mandatory.
        self._write(
            tmp_path,
            "BENCH_kernel.json",
            {
                "kind": "repro-bench-kernel",
                "results": {
                    "batched_sampling_python": {"speedup": 2.0, "min_speedup": 1.0},
                    "vector_rule_python_largest-id": {
                        "speedup": 2.0,
                        "min_speedup": 1.0,
                    },
                },
            },
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 0

    def test_entry_floor_overrides_the_artifact_floor(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_kernel.json",
            {
                "kind": "repro-bench-kernel",
                "results": {
                    "batched_sampling_python": {"speedup": 0.9, "min_speedup": 1.0},
                },
            },
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_unknown_kind_is_flagged(self, tmp_path):
        self._write(tmp_path, "BENCH_new.json", {"kind": "repro-bench-new", "results": {}})
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    @pytest.mark.parametrize("quiet", [True, False])
    def test_empty_root_fails(self, tmp_path, quiet, capsys):
        argv = ["--root", str(tmp_path)] + (["--quiet"] if quiet else [])
        assert check_bench_floors.main(argv) == 1
