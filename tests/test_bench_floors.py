"""The benchmark-regression guard, and the committed artifacts it gates."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"

sys.path.insert(0, str(SCRIPTS))

import check_bench_floors  # noqa: E402


class TestCommittedArtifacts:
    def test_every_committed_artifact_meets_its_floor(self):
        assert check_bench_floors.main(["--quiet"]) == 0

    def test_every_artifact_kind_is_known_to_the_guard(self):
        # Some artifacts are committed (api, dist, kernel), others are
        # regenerated per run (engine, search, gitignored); whatever is on
        # disk must be a kind the guard knows how to gate.
        kinds = {
            json.loads(path.read_text())["kind"]
            for path in REPO_ROOT.glob("BENCH_*.json")
        }
        assert kinds
        assert kinds <= set(check_bench_floors.GATED_RESULTS)


class TestGuardLogic:
    def _write(self, tmp_path, name, document):
        (tmp_path / name).write_text(json.dumps(document))

    def test_detects_a_regressed_speedup(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_engine.json",
            {
                "kind": "repro-bench-engine",
                "min_speedup": 3.0,
                "results": {
                    "exhaustive_ring_n7": {"speedup": 1.2},
                    "sampling_sweep_n64": {"speedup": 4.0},
                },
            },
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_detects_a_missing_required_entry(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_kernel.json",
            {"kind": "repro-bench-kernel", "results": {}},
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_optional_entries_may_be_absent(self, tmp_path):
        # The kernel's numpy legs are absent on numpy-free machines; only
        # the stdlib entries are mandatory.
        self._write(
            tmp_path,
            "BENCH_kernel.json",
            {
                "kind": "repro-bench-kernel",
                "results": {
                    "batched_sampling_python": {"speedup": 2.0, "min_speedup": 1.0},
                    "vector_rule_python_largest-id": {
                        "speedup": 2.0,
                        "min_speedup": 1.0,
                    },
                },
            },
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 0

    def test_entry_floor_overrides_the_artifact_floor(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_kernel.json",
            {
                "kind": "repro-bench-kernel",
                "results": {
                    "batched_sampling_python": {"speedup": 0.9, "min_speedup": 1.0},
                },
            },
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_unknown_kind_is_flagged(self, tmp_path):
        self._write(tmp_path, "BENCH_new.json", {"kind": "repro-bench-new", "results": {}})
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    @pytest.mark.parametrize("quiet", [True, False])
    def test_empty_root_fails(self, tmp_path, quiet, capsys):
        argv = ["--root", str(tmp_path)] + (["--quiet"] if quiet else [])
        assert check_bench_floors.main(argv) == 1

    def _scale_document(self, **overrides):
        entry = {
            "nodes_per_s": 100_000.0,
            "min_nodes_per_s": 5_000.0,
            "peak_rss_bytes": 80 * 1024**2,
            "max_rss_bytes": 2 * 1024**3,
            "rel_nodes_per_s": 1.0,
            "min_rel_nodes_per_s": 0.0,
        }
        entry.update(overrides)
        return {"kind": "repro-bench-scale", "results": {"scale_cycle_n10000": entry}}

    def test_scale_artifact_gates_on_throughput_and_rss(self, tmp_path):
        self._write(tmp_path, "BENCH_scale.json", self._scale_document())
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 0

    def test_scale_regressed_throughput_fails(self, tmp_path):
        self._write(
            tmp_path, "BENCH_scale.json", self._scale_document(nodes_per_s=400.0)
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_scale_rss_over_ceiling_fails(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_scale.json",
            self._scale_document(peak_rss_bytes=3 * 1024**3),
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_scale_entry_missing_a_bound_fails(self, tmp_path):
        document = self._scale_document()
        del document["results"]["scale_cycle_n10000"]["max_rss_bytes"]
        self._write(tmp_path, "BENCH_scale.json", document)
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_scale_collapsed_relative_rate_fails(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_scale.json",
            self._scale_document(rel_nodes_per_s=0.3, min_rel_nodes_per_s=0.8),
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def _parallel_document(self, **overrides):
        entries = {
            "warm_pool_dispatch_w2": {"speedup": 20.0, "min_speedup": 3.0},
            "shm_fanout_n100000": {"speedup": 100.0, "min_speedup": 10.0},
        }
        for key, value in overrides.items():
            entries[key].update(value)
        return {"kind": "repro-bench-parallel", "results": entries}

    def test_parallel_artifact_meets_both_floors(self, tmp_path):
        self._write(tmp_path, "BENCH_parallel.json", self._parallel_document())
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 0

    def test_parallel_regressed_dispatch_fails(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_parallel.json",
            self._parallel_document(warm_pool_dispatch_w2={"speedup": 1.5}),
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1

    def test_parallel_regressed_fanout_fails(self, tmp_path):
        self._write(
            tmp_path,
            "BENCH_parallel.json",
            self._parallel_document(shm_fanout_n100000={"speedup": 4.0}),
        )
        assert check_bench_floors.main(["--root", str(tmp_path), "--quiet"]) == 1


class TestScaleBenchSmokeMode:
    def test_smoke_sizes_stay_small(self, monkeypatch):
        """The CI smoke job must never launch a million-node probe."""
        import importlib

        monkeypatch.syspath_prepend(str(REPO_ROOT / "benchmarks"))
        import bench_smoke

        module = importlib.import_module("test_bench_scale")
        assert max(module.SIZES_SMOKE) <= 10**3
        assert max(module.SIZES_FULL) == 10**6
        # The module-level pick() is what selects them, so smoke mode can
        # never reach the full sizes.
        assert module.SIZES == (
            module.SIZES_SMOKE if bench_smoke.SMOKE else module.SIZES_FULL
        )
