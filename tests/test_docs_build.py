"""The documentation build is part of tier-1: it must pass with zero warnings.

Runs ``scripts/build_docs.py --strict`` into a temporary directory (so the
developer's ``docs/_build`` is untouched) and then checks the acceptance
criteria directly: every module under ``src/repro`` has an API page, every
hand-written guide is present, and the HTML rendering exists.
"""

from __future__ import annotations

import pkgutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
BUILDER = REPO_ROOT / "scripts" / "build_docs.py"


@pytest.fixture(scope="module")
def built_site(tmp_path_factory):
    out = tmp_path_factory.mktemp("docs_build")
    result = subprocess.run(
        [sys.executable, str(BUILDER), "--strict", "--out", str(out)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"strict docs build failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return out, result.stdout


def all_repro_modules() -> list[str]:
    names = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.add(info.name)
    return sorted(names)


def test_strict_build_reports_zero_warnings(built_site):
    _, stdout = built_site
    assert "0 warnings" in stdout


def test_every_public_module_has_an_api_page(built_site):
    out, _ = built_site
    for name in all_repro_modules():
        page = out / "api" / f"{name}.md"
        assert page.exists(), f"API reference is missing {name}"
        assert (out / "api" / f"{name}.html").exists()


def test_guide_pages_are_built(built_site):
    out, _ = built_site
    for page in (
        "index",
        "architecture",
        "api",
        "tutorial-measures",
        "adversary-search",
        "distributions",
    ):
        assert (out / f"{page}.md").exists()
        html = (out / f"{page}.html").read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")


def test_api_index_links_every_module(built_site):
    out, _ = built_site
    index = (out / "api" / "index.md").read_text(encoding="utf-8")
    for name in all_repro_modules():
        assert f"[`{name}`]({name}.md)" in index
