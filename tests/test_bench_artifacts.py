"""Regression: ordinary test runs must not rewrite committed BENCH artifacts.

The benchmark modules run under plain ``pytest`` too (tier-1 collects
them), and they used to write their ``BENCH_*.json`` artifacts on every
run — so a routine test run on a loaded machine could silently regress a
committed timing.  ``benchmarks/bench_smoke.py`` now routes artifact
writes through :func:`artifact_path`, which only targets the repo root
under ``REPRO_BENCH_WRITE=1`` (set by ``make bench`` / ``make bench-smoke``)
and a scratch directory otherwise.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"

_PROBE = (
    "import bench_smoke; print(bench_smoke.artifact_path('BENCH_kernel.json'))"
)


def _artifact_path_under(env_overrides: dict[str, str]) -> Path:
    env = {
        key: value
        for key, value in os.environ.items()
        if key not in ("REPRO_BENCH_WRITE", "REPRO_BENCH_SMOKE")
    }
    env.update(env_overrides)
    output = subprocess.run(
        [sys.executable, "-c", _PROBE],
        cwd=BENCHMARKS,
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    return Path(output)


class TestArtifactWriteGating:
    def test_opt_in_targets_the_committed_artifact(self):
        path = _artifact_path_under({"REPRO_BENCH_WRITE": "1"})
        assert path == REPO_ROOT / "BENCH_kernel.json"

    def test_default_targets_a_scratch_file_outside_the_repo(self):
        path = _artifact_path_under({})
        assert REPO_ROOT not in path.parents
        assert path.name == "BENCH_kernel.json"

    def test_plain_pytest_leaves_committed_artifacts_untouched(self):
        artifacts = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert artifacts
        before = {
            path.name: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in artifacts
        }
        env = {
            key: value
            for key, value in os.environ.items()
            if key != "REPRO_BENCH_WRITE"
        }
        env["REPRO_BENCH_SMOKE"] = "1"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "no:cacheprovider",
                "benchmarks/test_bench_kernel.py::test_bench_batched_sampling_vs_runner",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        after = {
            path.name: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in sorted(REPO_ROOT.glob("BENCH_*.json"))
        }
        assert after == before
