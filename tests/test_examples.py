"""Every documented example must run end to end (at reduced sizes).

The examples are the library's documented entry points; this suite runs each
one in a subprocess with ``REPRO_EXAMPLES_SMALL=1`` (exactly as ``make
examples`` and the CI examples-smoke job do) so an API change can never
silently break them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_the_examples_directory_is_populated():
    assert len(EXAMPLE_SCRIPTS) >= 6


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs_cleanly(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_SMALL"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_example_spec_is_a_valid_query():
    from repro.api.query import Query

    spec = Query.load(str(EXAMPLES_DIR / "spec.json"))
    assert spec.mode == "sweep"
    assert spec.adversaries == ("branch-and-bound",)
