"""Leader election on a ring: the exponential gap between the two measures.

Reproduces the paper's Section 2 story end to end:

* evaluates the largest-ID algorithm on the provably worst identifier
  arrangement (built from the segment recurrence), on random identifiers,
  and on the best assignment an adversarial local search can find — the
  adversarial column comes from one declarative ``worst-case`` query over
  the whole size grid;
* compares the measured averages with the exact recurrence bound
  ``(floor(n/2) + a(n-1)) / n`` and the measured maxima with ``floor(n/2)``;
* prints the growth of both measures so the Theta(n) / Theta(log n)
  separation is visible directly.

Run with:  python examples/leader_election.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the sizes)
"""

import os

import repro
from repro.theory.bounds import largest_id_average_upper_bound, largest_id_worst_case_bound
from repro.theory.recurrence import worst_case_cycle_arrangement
from repro.utils.tables import Table

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def main() -> None:
    sizes = (16, 32, 64) if SMALL else (16, 32, 64, 128, 256)
    algorithm = repro.LargestIdAlgorithm()
    session = repro.Session()

    # One query answers the "best assignment an adversary can find" column
    # for every ring size at once.
    found = session.worst_case(
        repro.Query(
            mode="worst-case",
            topologies="cycle",
            sizes=sizes,
            algorithms="largest-id",
            adversaries="local-search",
            measure="average",
            restarts=2,
            swaps_per_step=12,
            max_steps=12,
            seed=7,
        )
    )
    adversary_value = {row["n"]: row["value"] for row in found.rows}

    table = Table(
        columns=("n", "avg worst ids", "avg bound", "avg random ids", "avg adversary", "max", "max bound"),
        title="largest-ID on the n-cycle: average vs classic measure",
    )
    for n in sizes:
        graph = session.graph("cycle", n)
        worst_ids = repro.IdentifierAssignment(worst_case_cycle_arrangement(n))
        worst = session.trace(graph, worst_ids, algorithm)
        random_trace = session.trace(graph, repro.random_assignment(n, seed=n), algorithm)
        table.add_row(
            **{
                "n": n,
                "avg worst ids": worst.average_radius,
                "avg bound": largest_id_average_upper_bound(n),
                "avg random ids": random_trace.average_radius,
                "avg adversary": adversary_value[n],
                "max": worst.max_radius,
                "max bound": largest_id_worst_case_bound(n),
            }
        )
    print(table)
    print()
    print("The classic measure doubles with n (linear); the average barely moves")
    print("(logarithmic) — the exponential separation announced by the paper.")


if __name__ == "__main__":
    main()
