"""Leader election on a ring: the exponential gap between the two measures.

Reproduces the paper's Section 2 story end to end:

* evaluates the largest-ID algorithm on the provably worst identifier
  arrangement (built from the segment recurrence), on random identifiers,
  and on the best assignment an adversarial local search can find;
* compares the measured averages with the exact recurrence bound
  ``(floor(n/2) + a(n-1)) / n`` and the measured maxima with ``floor(n/2)``;
* prints the growth of both measures so the Theta(n) / Theta(log n)
  separation is visible directly.

Run with:  python examples/leader_election.py
"""

from repro import (
    IdentifierAssignment,
    LargestIdAlgorithm,
    LocalSearchAdversary,
    cycle_graph,
    random_assignment,
    run_ball_algorithm,
)
from repro.theory.bounds import largest_id_average_upper_bound, largest_id_worst_case_bound
from repro.theory.recurrence import worst_case_cycle_arrangement
from repro.utils.tables import Table


def main() -> None:
    algorithm = LargestIdAlgorithm()
    table = Table(
        columns=("n", "avg worst ids", "avg bound", "avg random ids", "avg adversary", "max", "max bound"),
        title="largest-ID on the n-cycle: average vs classic measure",
    )
    for n in (16, 32, 64, 128, 256):
        graph = cycle_graph(n)
        worst_ids = IdentifierAssignment(worst_case_cycle_arrangement(n))
        worst = run_ball_algorithm(graph, worst_ids, algorithm)
        random_trace = run_ball_algorithm(graph, random_assignment(n, seed=n), algorithm)
        adversary = LocalSearchAdversary(restarts=2, swaps_per_step=12, max_steps=12, seed=n)
        found = adversary.maximise(graph, algorithm, objective="average")
        table.add_row(
            **{
                "n": n,
                "avg worst ids": worst.average_radius,
                "avg bound": largest_id_average_upper_bound(n),
                "avg random ids": random_trace.average_radius,
                "avg adversary": found.value,
                "max": worst.max_radius,
                "max bound": largest_id_worst_case_bound(n),
            }
        )
    print(table)
    print()
    print("The classic measure doubles with n (linear); the average barely moves")
    print("(logarithmic) — the exponential separation announced by the paper.")


if __name__ == "__main__":
    main()
