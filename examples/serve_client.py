"""Watch a sampling query's confidence interval tighten over ``repro serve``.

A pure-stdlib (``urllib``) client of the query service: it POSTs a
Monte-Carlo distribution query with ``?stream=1`` and prints one line per
progress chunk — draws so far, current estimate of the average measure,
standard error and the 95% confidence interval, which visibly narrows as
the estimator accumulates draws.  A second, plain POST of the same query
then answers instantly from the service's content-addressed store
(``X-Repro-Cache: hit``), and a *larger* budget resumes the stored
estimator state instead of restarting (``X-Repro-Cache: resume``).

The example is self-contained: it starts an in-process server on an
ephemeral port, exactly as ``repro serve`` (or ``make serve``) would, and
shuts it down at the end.  Point ``BASE`` at a running server to use it as
a standalone client.

Run with:  python examples/serve_client.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the budget)
"""

import json
import os
import tempfile
import urllib.request
from threading import Thread

from repro.service import make_server

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def post(base: str, document: dict, stream: bool = False):
    """POST one repro-query document; returns (events, cache header)."""
    url = f"{base}/v1/query" + ("?stream=1" if stream else "")
    request = urllib.request.Request(
        url, data=json.dumps(document).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        cache = response.headers.get("X-Repro-Cache")
        body = response.read().decode()
    if stream:
        return [json.loads(line) for line in body.strip().splitlines()], cache
    return json.loads(body), cache


def main() -> None:
    server = make_server(root=tempfile.mkdtemp(prefix="repro-serve-"))
    Thread(target=server.serve_forever, daemon=True).start()
    base = server.url
    print(f"query service listening on {base}")

    samples = 128 if SMALL else 2048
    query = {
        "kind": "repro-query",
        "version": 1,
        "mode": "distribution",
        "topologies": ["cycle"],
        "sizes": [16 if SMALL else 64],
        "algorithms": ["greedy-mis"],
        "methods": ["sample"],
        "samples": samples,
        "seed": 7,
    }

    print(f"\nstreaming {samples} Monte-Carlo draws (watch the 95% CI tighten):")
    events, _ = post(base, query, stream=True)
    for event in events:
        if event["type"] != "progress":
            continue
        cell = event["cells"][0]
        low, high = cell["ci95"]
        print(
            f"  draws {cell['draws']:>5}: average measure "
            f"{cell['mean']:.4f} +/- {cell['std_error']:.4f} "
            f"(95% CI [{low:.4f}, {high:.4f}], width {high - low:.4f})"
        )
    final = events[-1]["document"]
    print(f"final headline measures: {final['measures']}")

    _, cache = post(base, query)
    print(f"\nsame query again      : X-Repro-Cache = {cache} (served from the store)")

    larger = dict(query, samples=samples * 2)
    _, cache = post(base, larger)
    print(f"double the budget     : X-Repro-Cache = {cache} (estimators continued)")

    server.shutdown()
    server.server_close()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
