"""3-colouring a ring: why averaging cannot beat Linial's lower bound.

Runs the Cole–Vishkin algorithm on rings of increasing size, certifies the
colourings, and prints the measured radii next to the Linial threshold
``ceil((1/2) log*(n/2))`` that the paper's Theorem 1 shows no algorithm can
beat even on average.  Also runs the slice-concatenation construction from
the proof of Theorem 1 and evaluates the algorithm on the resulting "hard"
identifier permutation.

Run with:  python examples/ring_coloring.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the sizes)
"""

import os

from repro import (
    BallSimulationOfRounds,
    ColeVishkinRing,
    Session,
    certify,
    cycle_graph,
    random_assignment,
    run_round_algorithm,
)
from repro.theory.linial import linial_lower_bound_radius
from repro.theory.lower_bound import build_hard_assignment
from repro.utils.math_functions import log_star
from repro.utils.tables import Table

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def main() -> None:
    table = Table(
        columns=("n", "log*", "linial threshold", "CV avg radius", "CV max radius", "avg on hard pi"),
        title="3-colouring the n-ring with Cole-Vishkin",
    )
    session = Session()
    for n in (8, 16, 32) if SMALL else (16, 32, 64, 128):
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        round_trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        certify("3-coloring", graph, ids, round_trace)

        ball_algorithm = BallSimulationOfRounds(ColeVishkinRing(n))
        construction = build_hard_assignment(n, ball_algorithm, seed=n)
        hard_trace = session.trace(graph, construction.assignment, ball_algorithm)
        certify("3-coloring", graph, construction.assignment, hard_trace)

        table.add_row(
            **{
                "n": n,
                "log*": log_star(n),
                "linial threshold": linial_lower_bound_radius(n),
                "CV avg radius": round_trace.average_radius,
                "CV max radius": round_trace.max_radius,
                "avg on hard pi": hard_trace.average_radius,
            }
        )
    print(table)
    print()
    print("Unlike largest-ID, the average and the classic measure coincide here:")
    print("every vertex of Cole-Vishkin stops at the same log*-sized radius, and")
    print("Theorem 1 says no 3-colouring algorithm can push the *average* below")
    print("the Linial threshold either.")


if __name__ == "__main__":
    main()
