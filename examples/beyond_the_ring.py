"""Beyond the ring: the average measure on general graphs (further work).

The paper's conclusion notes that results for more general graphs are
missing.  This example runs the largest-ID algorithm on several topology
families of comparable size, prints both measures for each, and draws a
small ASCII plot of how the two measures diverge with the ring size — the
picture behind the "exponential separation" headline.  The scaling data
comes from one declarative ``simulate`` query over the whole size grid.

Run with:  python examples/beyond_the_ring.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the sizes)
"""

import os

import repro
from repro.experiments import general_graphs
from repro.theory.bounds import largest_id_average_upper_bound, largest_id_worst_case_bound
from repro.utils.ascii_plot import ascii_plot

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def topology_sweep() -> None:
    result = general_graphs.run(n=36 if SMALL else 100, samples=2 if SMALL else 3)
    print(result)
    print()


def ring_scaling_plot() -> None:
    sizes = (16, 32, 64) if SMALL else (16, 32, 64, 128, 256, 512)
    result = repro.query(
        mode="simulate",
        topologies="cycle",
        sizes=sizes,
        algorithms="largest-id",
        ids="random",
        seed=1,
    )
    averages = [row["average"] for row in result.rows]
    maxima = [float(row["classic"]) for row in result.rows]
    print(
        ascii_plot(
            list(sizes),
            {"max radius (classic)": maxima, "average radius": averages},
            title="largest-ID on the n-cycle, random identifiers",
        )
    )
    print()
    top = sizes[-1]
    print(f"analytic bounds at n={top}:",
          f"classic {largest_id_worst_case_bound(top)},",
          f"average {largest_id_average_upper_bound(top):.2f}")


def main() -> None:
    topology_sweep()
    ring_scaling_plot()


if __name__ == "__main__":
    main()
