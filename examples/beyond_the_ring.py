"""Beyond the ring: the average measure on general graphs (further work).

The paper's conclusion notes that results for more general graphs are
missing.  This example runs the largest-ID algorithm on several topology
families of comparable size, prints both measures for each, and draws a
small ASCII plot of how the two measures diverge with the ring size — the
picture behind the "exponential separation" headline.

Run with:  python examples/beyond_the_ring.py
"""

from repro import LargestIdAlgorithm, certify, cycle_graph, random_assignment, run_ball_algorithm
from repro.experiments import general_graphs
from repro.theory.bounds import largest_id_average_upper_bound, largest_id_worst_case_bound
from repro.utils.ascii_plot import ascii_plot


def topology_sweep() -> None:
    result = general_graphs.run(n=100, samples=3)
    print(result)
    print()


def ring_scaling_plot() -> None:
    sizes = [16, 32, 64, 128, 256, 512]
    averages = []
    maxima = []
    for n in sizes:
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=n)
        trace = run_ball_algorithm(graph, ids, LargestIdAlgorithm())
        certify("largest-id", graph, ids, trace)
        averages.append(trace.average_radius)
        maxima.append(float(trace.max_radius))
    print(
        ascii_plot(
            sizes,
            {"max radius (classic)": maxima, "average radius": averages},
            title="largest-ID on the n-cycle, random identifiers",
        )
    )
    print()
    print("analytic bounds at n=512:",
          f"classic {largest_id_worst_case_bound(512)},",
          f"average {largest_id_average_upper_bound(512):.2f}")


def main() -> None:
    topology_sweep()
    ring_scaling_plot()


if __name__ == "__main__":
    main()
