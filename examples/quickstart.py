"""Quickstart: run a LOCAL algorithm and read both complexity measures.

This is the smallest end-to-end use of the library: build a ring, assign
random identifiers, run the paper's largest-ID algorithm, certify the output
and print the classic (max) and average radii that the paper compares.

Run with:  python examples/quickstart.py
"""

from repro import (
    LargestIdAlgorithm,
    certify,
    cycle_graph,
    random_assignment,
    run_ball_algorithm,
)


def main() -> None:
    n = 128
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=2026)
    algorithm = LargestIdAlgorithm()

    trace = run_ball_algorithm(graph, ids, algorithm)
    certify("largest-id", graph, ids, trace)

    print(f"largest-ID on the {n}-cycle with random identifiers")
    print(f"  classic measure (max radius) : {trace.max_radius}")
    print(f"  average measure (mean radius): {trace.average_radius:.3f}")
    print(f"  radius histogram             : {trace.radius_histogram()}")
    leader = [p for p, out in trace.outputs_by_position().items() if out][0]
    print(f"  elected leader               : position {leader} (identifier {ids[leader]})")
    print()
    print("The single vertex holding the maximum identifier pays the linear")
    print("worst case; almost every other vertex stops after a couple of")
    print("rounds, which is why the average sits near log(n).")


if __name__ == "__main__":
    main()
