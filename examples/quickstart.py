"""Quickstart: ask the library a question with ``repro.query(...)``.

The smallest end-to-end use of the unified API: one declarative query runs
the paper's largest-ID algorithm on a ring and reports both complexity
measures; a second query — answered by the same process-wide session, so the
ring's frontier plans and the decision cache are reused — certifies the
worst case over identifier assignments by branch and bound.

Run with:  python examples/quickstart.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the sizes)
"""

import os

import repro

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def main() -> None:
    n = 32 if SMALL else 128
    result = repro.query(
        mode="simulate",
        topologies="cycle",
        sizes=n,
        algorithms="largest-id",
        ids="random",
        seed=2026,
    )
    row = result.rows[0]
    print(f"largest-ID on the {n}-cycle with random identifiers")
    print(f"  classic measure (max radius) : {row['classic']}")
    print(f"  average measure (mean radius): {row['average']:.3f}")
    print(f"  radius histogram             : {row['histogram']}")
    print(f"  output certified             : {row['certified']}")
    print()

    worst_n = 8 if SMALL else 10
    worst = repro.query(
        "worst-case",
        topologies="cycle",
        sizes=worst_n,
        algorithms="largest-id",
        adversaries="branch-and-bound",
        measure="average",
    )
    wrow = worst.rows[0]
    certificate = wrow["certificate"]
    print(f"certified worst-case average on the {worst_n}-cycle: {wrow['value']:.3f}")
    print(f"  exact               : {worst.exact}")
    print(f"  witness identifiers : {wrow['witness_ids']}")
    print(f"  search certificate  : |Aut| = {certificate['group_order']}, "
          f"{certificate['canonical_leaves']} canonical leaves")
    print()
    print("The single vertex holding the maximum identifier pays the linear")
    print("worst case; almost every other vertex stops after a couple of")
    print("rounds, which is why the average sits near log(n).")


if __name__ == "__main__":
    main()
