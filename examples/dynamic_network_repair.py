"""Dynamic networks: repair cost after identifier churn at random nodes.

The paper motivates the average measure by dynamic networks: after a change
at a random node, only the nodes whose view contained that node must
recompute their label.  This example maintains the largest-ID labelling of a
ring under a sequence of churn events and compares the observed repair cost
with the paper's estimate (twice the average radius, plus one) and with the
far larger estimate the classic worst-case measure would suggest.

Run with:  python examples/dynamic_network_repair.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the sizes)
"""

import os

from repro import LargestIdAlgorithm, cycle_graph, random_assignment
from repro.applications.dynamic_networks import (
    DynamicRepairSimulator,
    average_repair_cost,
    expected_repair_cost,
)

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def main() -> None:
    n = 64 if SMALL else 256
    events = 10 if SMALL else 40
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=7)
    simulator = DynamicRepairSimulator(graph, ids, LargestIdAlgorithm())

    initial = simulator.trace
    print(f"ring of {n} nodes, largest-ID labelling")
    print(f"  average radius                  : {initial.average_radius:.3f}")
    print(f"  classic (max) radius            : {initial.max_radius}")
    print(f"  predicted repair cost (2*avg+1) : {2 * initial.average_radius + 1:.3f}")
    print(f"  analytic expected repair cost   : {expected_repair_cost(initial, graph):.3f}")
    print(f"  worst-case estimate (2*max+1)   : {2 * initial.max_radius + 1}")
    print()

    reports = simulator.random_churn(events, seed=99)
    print(f"after {events} churn events at uniformly random nodes:")
    print(f"  mean nodes recomputed per event : {average_repair_cost(reports):.3f}")
    print(f"  largest single repair           : {max(r.total_work for r in reports)}")
    print(f"  mean repair latency (radius)    : "
          f"{sum(r.repair_latency for r in reports) / len(reports):.3f}")
    print()
    print("The measured repair cost tracks the average-radius estimate; the")
    print("worst-case estimate is two orders of magnitude too pessimistic.")


if __name__ == "__main__":
    main()
