"""Parallel simulation of a distributed algorithm on a small processor pool.

The paper's second application: when ``p`` processors simulate the ``n``
nodes of a LOCAL algorithm and a node's job ends as soon as it outputs, the
makespan is governed by the *average* radius (total work divided by ``p``),
not by the worst-case radius.  This example schedules the node-jobs of the
largest-ID algorithm with the greedy list scheduler and compares against the
lock-step simulator that cannot exploit early stopping.

Run with:  python examples/parallel_simulation.py
(REPRO_EXAMPLES_SMALL=1, as set by `make examples`, shrinks the sizes)
"""

import os

from repro import LargestIdAlgorithm, Session, cycle_graph, random_assignment
from repro.applications.parallel_sim import list_schedule, naive_makespan
from repro.utils.tables import Table

SMALL = os.environ.get("REPRO_EXAMPLES_SMALL") == "1"


def main() -> None:
    n = 128 if SMALL else 512
    graph = cycle_graph(n)
    ids = random_assignment(n, seed=13)
    trace = Session().trace(graph, ids, LargestIdAlgorithm())
    durations = [max(1, radius) for radius in trace.radii().values()]

    print(f"simulating the {n} node-jobs of largest-ID (avg radius "
          f"{trace.average_radius:.2f}, max radius {trace.max_radius})")
    table = Table(
        columns=("processors", "greedy makespan", "ideal sum/p + max", "lock-step makespan", "speed-up", "utilisation"),
        title="greedy list scheduling vs lock-step simulation",
    )
    for processors in (2, 4, 8, 16, 32):
        greedy = list_schedule(durations, processors)
        naive = naive_makespan(durations, processors)
        table.add_row(
            **{
                "processors": processors,
                "greedy makespan": greedy.makespan,
                "ideal sum/p + max": sum(durations) / processors + max(durations),
                "lock-step makespan": naive,
                "speed-up": naive / greedy.makespan,
                "utilisation": greedy.utilisation,
            }
        )
    print(table)
    print()
    print("Reusing processors freed by early-stopping nodes keeps the makespan")
    print("near total-work / p, i.e. near n * average_radius / p — the average")
    print("measure is the relevant one, exactly as the paper argues.")


if __name__ == "__main__":
    main()
