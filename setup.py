"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that fully offline environments (no access to the ``wheel`` package that
``pip install -e .`` needs for PEP 660 editable builds) can still install
the library in development mode with ``python setup.py develop``.
"""

from setuptools import setup

setup()
