"""Command-line interface.

``python -m repro`` exposes the library's main entry points without writing
any Python:

* ``list-algorithms``              — the registered algorithm names;
* ``list-experiments``             — the experiment index (E1-E13);
* ``run-experiment E1 [--small]``  — run one experiment and print its table;
* ``simulate --algorithm largest-id --n 64 --topology cycle [--ids random]``
                                   — one simulation run with both measures;
* ``gap --n 256``                  — the headline numbers of the paper in one line;
* ``search --topology cycle --n 10 --adversary branch-and-bound``
                                   — one adversary search (worst case over
                                     identifier assignments) with its
                                     certificate;
* ``sweep --topologies cycle,path --sizes 8,16 --algorithms largest-id``
                                   — run a campaign over a (topology × n ×
                                     algorithm × adversary) grid, print the
                                     rows and optionally write them as JSON;
* ``dist --topology cycle --n 8 --methods exact,sample``
                                   — the distribution of both measures over
                                     identifier assignments, exact and/or
                                     sampled;
* ``scale --topology cycle --n 1000000 --samples 2``
                                   — sharded, memory-bounded sampling of
                                     both measures on a streamed CSR
                                     topology (the million-node path);
* ``query --spec spec.json``       — run a declarative
                                     :class:`~repro.api.query.Query` JSON
                                     document (any mode) and optionally
                                     write the versioned
                                     :class:`~repro.api.results.Result`;
* ``serve --port 8000 --store repro-store``
                                   — run the query service: an HTTP front
                                     door over a persistent
                                     content-addressed result store
                                     (``POST /v1/query``, cached repeats,
                                     resumable sampling estimates; guide in
                                     ``docs/service.md``).

Running ``python -m repro`` with no arguments prints this subcommand summary
and exits 0; ``--version`` prints the library version.

Every data-producing subcommand is a thin front-end over one shared
:class:`repro.api.session.Session`: ``simulate``/``search``/``sweep``/``dist``
build the equivalent :class:`~repro.api.query.Query` from their flags, and
``query`` reads one straight from disk.  The CLI prints plain text (tables
and, where helpful, ASCII plots); ``sweep`` and ``dist`` additionally emit
the historical machine-readable JSON documents (``--output``, schemas in
``docs/distributions.md``) while ``query --output`` writes the unified
``repro-result`` schema of ``docs/api.md``.

``query --profile`` / ``query --trace out.json`` switch on the
instrumentation subsystem (``docs/observability.md``) for the run: the
former prints the per-query span profile, the latter writes a Chrome
trace-event file; both make every timing read-out list the top spans.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro import __version__
from repro.algorithms.registry import algorithm_registry
from repro.api import ID_FAMILIES, Query, Session
from repro.engine.campaign import (
    ADVERSARY_NAMES,
    DIST_METHODS,
    TOPOLOGY_BUILDERS,
    aggregate_dist_rows,
    write_dist_rows,
    write_rows,
)
from repro.errors import ConfigurationError
from repro.kernel.backend import active_backend
from repro.kernel.shard import SCALE_ALGORITHMS
from repro.topology.stream import STREAM_TOPOLOGIES
from repro.utils.ascii_plot import plot_experiment_column
from repro.utils.tables import Table

#: Topology names accepted by ``simulate`` and ``sweep`` — the engine's
#: campaign registry, re-exported under the CLI's historical name.
TOPOLOGIES = TOPOLOGY_BUILDERS


class _VersionAction(argparse.Action):
    """``--version`` with the kernel backend resolved only when printed.

    Backend resolution may probe (import) numpy, so it must not run while
    merely *building* the parser — that would tax every CLI invocation.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        print(f"repro {__version__} (kernel backend: {active_backend()})")
        parser.exit()


def _experiment_modules():
    from repro.experiments import (
        characterization,
        coloring,
        distributions,
        dynamic,
        general_graphs,
        largest_id,
        lower_bound,
        parallel,
        random_ids,
        recurrence,
        regularity,
        search_strategies,
        simulators,
    )

    return {
        "E1": largest_id,
        "E2": recurrence,
        "E3": coloring,
        "E4": lower_bound,
        "E5": regularity,
        "E6": random_ids,
        "E7": dynamic,
        "E8": parallel,
        "E9": simulators,
        "E10": characterization,
        "E11": general_graphs,
        "E12": search_strategies,
        "E13": distributions,
    }


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Average complexity for the LOCAL model — simulator, experiments, bounds.",
    )
    parser.add_argument(
        "--version",
        action=_VersionAction,
        nargs=0,
        help="show the library version and the active kernel backend",
    )
    commands = parser.add_subparsers(dest="command")

    commands.add_parser("list-algorithms", help="print the registered algorithm names")
    commands.add_parser("list-experiments", help="print the experiment index")

    run_parser = commands.add_parser("run-experiment", help="run one experiment (E1-E13)")
    run_parser.add_argument("experiment", help="experiment id, e.g. E1")
    run_parser.add_argument("--small", action="store_true", help="use reduced instance sizes")
    run_parser.add_argument(
        "--plot",
        nargs=2,
        metavar=("X_COLUMN", "Y_COLUMN"),
        help="also print an ASCII plot of one table column against another",
    )

    simulate_parser = commands.add_parser("simulate", help="run one algorithm on one instance")
    simulate_parser.add_argument("--algorithm", default="largest-id", help="registered algorithm name")
    simulate_parser.add_argument("--n", type=int, default=64, help="number of nodes")
    simulate_parser.add_argument("--topology", default="cycle", choices=sorted(TOPOLOGIES))
    simulate_parser.add_argument("--ids", default="random", choices=sorted(ID_FAMILIES))
    simulate_parser.add_argument("--seed", type=int, default=0)

    gap_parser = commands.add_parser("gap", help="print the paper's headline gap at one size")
    gap_parser.add_argument("--n", type=int, default=256)

    search_parser = commands.add_parser(
        "search",
        help="run one adversary search (worst case over identifier assignments)",
    )
    search_parser.add_argument(
        "--algorithm", default="largest-id", help="registered algorithm name"
    )
    search_parser.add_argument("--n", type=int, default=8, help="number of nodes")
    search_parser.add_argument("--topology", default="cycle", choices=sorted(TOPOLOGIES))
    search_parser.add_argument(
        "--adversary",
        default="branch-and-bound",
        choices=ADVERSARY_NAMES,
        help="search strategy (exact: exhaustive, pruned-exhaustive, branch-and-bound)",
    )
    search_parser.add_argument(
        "--objective", default="average", choices=("average", "max", "sum")
    )
    search_parser.add_argument("--seed", type=int, default=0)
    search_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes, portfolio only (default: REPRO_WORKERS, then 1)",
    )

    sweep_parser = commands.add_parser(
        "sweep",
        help="run an engine campaign over a (topology x n x algorithm x adversary) grid",
    )
    sweep_parser.add_argument(
        "--topologies",
        default="cycle",
        help="comma-separated topology names (see `simulate --topology` choices)",
    )
    sweep_parser.add_argument(
        "--sizes", default="8", help="comma-separated node counts, e.g. 8,16,32"
    )
    sweep_parser.add_argument(
        "--algorithms",
        default="largest-id",
        help="comma-separated registered algorithm names",
    )
    sweep_parser.add_argument(
        "--adversaries",
        default="random-search",
        help=f"comma-separated adversary names among {', '.join(ADVERSARY_NAMES)}",
    )
    sweep_parser.add_argument(
        "--objective", default="average", choices=("average", "max", "sum")
    )
    sweep_parser.add_argument(
        "--samples", type=int, default=16, help="random-search budget per cell"
    )
    sweep_parser.add_argument(
        "--restarts", type=int, default=2, help="local-search restarts per cell"
    )
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the cell grid (default: REPRO_WORKERS, then 1)",
    )
    sweep_parser.add_argument(
        "--output", default=None, help="write the result rows to this JSON file"
    )

    dist_parser = commands.add_parser(
        "dist",
        help="distribution of both measures over identifier assignments",
    )
    dist_parser.add_argument(
        "--topologies",
        default="cycle",
        help="comma-separated topology names (see `simulate --topology` choices)",
    )
    dist_parser.add_argument(
        "--sizes", default="6", help="comma-separated node counts, e.g. 6,8"
    )
    dist_parser.add_argument(
        "--algorithms",
        default="largest-id",
        help="comma-separated registered algorithm names",
    )
    dist_parser.add_argument(
        "--methods",
        default="exact",
        help=f"comma-separated methods among {', '.join(DIST_METHODS)}",
    )
    dist_parser.add_argument(
        "--samples", type=int, default=256, help="Monte-Carlo sample budget per cell"
    )
    dist_parser.add_argument("--seed", type=int, default=0)
    dist_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the cell grid (default: REPRO_WORKERS, then 1)",
    )
    dist_parser.add_argument(
        "--plot",
        action="store_true",
        help="also print an ASCII pmf of the average measure per cell",
    )
    dist_parser.add_argument(
        "--output",
        default=None,
        help="write rows + aggregates as a repro-dist JSON document",
    )

    scale_parser = commands.add_parser(
        "scale",
        help="sharded million-node sampling on a streamed CSR topology",
    )
    scale_parser.add_argument(
        "--topology",
        default="cycle",
        choices=STREAM_TOPOLOGIES,
        help="streamed topology family",
    )
    scale_parser.add_argument(
        "--n", type=int, default=100_000, help="number of nodes"
    )
    scale_parser.add_argument(
        "--algorithm",
        default="largest-id",
        help=f"scale-capable algorithm ({', '.join(sorted(SCALE_ALGORITHMS))})",
    )
    scale_parser.add_argument(
        "--samples", type=int, default=2, help="sampled identifier assignments"
    )
    scale_parser.add_argument("--seed", type=int, default=0)
    scale_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the shards (default: REPRO_WORKERS, then 1)",
    )
    scale_parser.add_argument(
        "--row-block", type=int, default=4, help="sampled rows per sharded task"
    )
    scale_parser.add_argument(
        "--center-chunk",
        type=int,
        default=65536,
        help="centres per sharded task (the memory/fan-out knob)",
    )
    scale_parser.add_argument(
        "--output",
        default=None,
        help="write the versioned repro-result JSON document to this file",
    )

    query_parser = commands.add_parser(
        "query",
        help="run a declarative query (any mode) from a repro-query JSON spec",
    )
    query_parser.add_argument(
        "--spec", required=True, help="path to a repro-query JSON document"
    )
    query_parser.add_argument(
        "--workers", type=int, default=None, help="override the spec's worker count"
    )
    query_parser.add_argument(
        "--output",
        default=None,
        help="write the versioned repro-result JSON document to this file",
    )
    query_parser.add_argument(
        "--profile",
        action="store_true",
        help="enable instrumentation (as REPRO_OBS=on) and print the "
        "per-query span profile",
    )
    query_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="enable instrumentation and write a Chrome trace-event JSON "
        "(load in chrome://tracing or Perfetto)",
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run the HTTP query service over a persistent result store",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: loopback)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8000, help="port to bind (0 picks an ephemeral port)"
    )
    serve_parser.add_argument(
        "--store",
        default="repro-store",
        help="directory of the content-addressed result store and job ledger",
    )
    serve_parser.add_argument(
        "--max-parallel",
        type=int,
        default=None,
        help="worker processes for queued cold queries "
        "(default: REPRO_WORKERS, then 1)",
    )
    serve_parser.add_argument(
        "--store-max-objects",
        type=int,
        default=None,
        help="LRU-evict stored results beyond this count (default: unbounded)",
    )
    serve_parser.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        help="LRU-evict stored results beyond this many on-disk bytes "
        "(default: unbounded)",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logging"
    )

    return parser


def _cmd_list_algorithms() -> int:
    for name in sorted(algorithm_registry()):
        print(name)
    return 0


def _cmd_list_experiments() -> int:
    for experiment_id, module in _experiment_modules().items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id}: {summary}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    modules = _experiment_modules()
    experiment_id = args.experiment.upper()
    if experiment_id not in modules:
        raise ConfigurationError(
            f"unknown experiment {args.experiment!r}; known: {', '.join(modules)}"
        )
    result = modules[experiment_id].run(small=args.small)
    print(result)
    if args.plot:
        x_column, y_column = args.plot
        print()
        print(
            plot_experiment_column(
                result.table.rows, x_column, [y_column], title=f"{experiment_id}: {y_column}"
            )
        )
    return 0


def _cmd_simulate(args: argparse.Namespace, session: Session) -> int:
    result = session.simulate(
        Query(
            mode="simulate",
            topologies=args.topology,
            sizes=args.n,
            algorithms=args.algorithm,
            ids=args.ids,
            seed=args.seed,
        )
    )
    row = result.rows[0]
    histogram = {int(radius): count for radius, count in row["histogram"].items()}
    print(f"algorithm        : {row['algorithm']}")
    print(f"graph            : {row['graph']} ({row['graph_n']} nodes, {row['graph_m']} edges)")
    print(f"identifiers      : {row['ids']}")
    print(f"classic measure  : {row['classic']}")
    print(f"average measure  : {row['average']:.4f}")
    print(f"radius histogram : {histogram}")
    print("output certified : yes" if row["certified"] else "output certified : no")
    print(format_timing(result))
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from repro.theory.bounds import (
        largest_id_average_upper_bound,
        largest_id_worst_case_bound,
    )

    n = args.n
    average = largest_id_average_upper_bound(n)
    worst = largest_id_worst_case_bound(n)
    print(
        f"largest-ID on the {n}-cycle: classic measure {worst}, "
        f"average measure {average:.3f}, gap {worst / average:.1f}x"
    )
    return 0


def _cmd_search(args: argparse.Namespace, session: Session) -> int:
    result = session.worst_case(
        Query(
            mode="worst-case",
            topologies=args.topology,
            sizes=args.n,
            algorithms=args.algorithm,
            adversaries=args.adversary,
            measure=args.objective,
            seed=args.seed,
            workers=_resolve_workers_flag(args.workers),
        )
    )
    row = result.rows[0]
    print(f"algorithm        : {row['algorithm']}")
    print(f"graph            : {row['graph']} ({row['graph_n']} nodes)")
    print(f"adversary        : {row['adversary']}")
    print(f"objective        : {row['objective']}")
    print(f"value            : {row['value']:.4f}")
    print(f"exact            : {row['exact']}")
    print(f"evaluations      : {row['evaluations']}")
    print(f"witness ids      : {row['witness_ids']}")
    if row.get("cache") is not None:
        print(f"cache hit rate   : {row['cache']['hit_rate']:.3f}")
    if row.get("certificate") is not None:
        print(f"certificate      : {row['certificate']}")
    print(format_timing(result))
    return 0


def _resolve_workers_flag(value):
    """CLI worker-count precedence: explicit flag > ``REPRO_WORKERS`` > 1."""
    from repro.engine.pool import resolve_workers

    return resolve_workers(value, fallback=1)


def _parse_csv(raw: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in raw.split(",") if item.strip())


def _parse_sizes(raw: str) -> tuple[int, ...]:
    try:
        return tuple(int(item) for item in _parse_csv(raw))
    except ValueError as exc:
        raise ConfigurationError(f"--sizes must be comma-separated integers: {exc}") from exc


def _cmd_sweep(args: argparse.Namespace, session: Session) -> int:
    result = session.sweep(
        Query(
            mode="sweep",
            topologies=_parse_csv(args.topologies),
            sizes=_parse_sizes(args.sizes),
            algorithms=_parse_csv(args.algorithms),
            adversaries=_parse_csv(args.adversaries),
            measure=args.objective,
            seed=args.seed,
            samples=args.samples,
            restarts=args.restarts,
            workers=_resolve_workers_flag(args.workers),
        )
    )
    print(result.table())
    print(format_timing(result))
    if args.output:
        write_rows(result.rows, args.output)
        print(f"wrote {len(result.rows)} rows to {args.output}")
    return 0


def _cmd_dist(args: argparse.Namespace, session: Session) -> int:
    from repro.dist.distribution import RoundDistribution, ascii_pmf

    result = session.distribution(
        Query(
            mode="distribution",
            topologies=_parse_csv(args.topologies),
            sizes=_parse_sizes(args.sizes),
            algorithms=_parse_csv(args.algorithms),
            methods=_parse_csv(args.methods),
            seed=args.seed,
            samples=args.samples,
            workers=_resolve_workers_flag(args.workers),
        )
    )
    rows = result.rows
    print(result.table())
    print(format_timing(result))
    aggregates = None
    if len(rows) > 1:
        aggregates = aggregate_dist_rows(rows)
        aggregate_table = Table(
            columns=("algorithm", "method", "cells", "weight", "avg_mean", "max_mean"),
            title="pooled across graphs",
        )
        for aggregate in aggregates:
            aggregate_table.add_row(
                algorithm=aggregate["algorithm"],
                method=aggregate["method"],
                cells=aggregate["cells"],
                weight=aggregate["total_weight"],
                avg_mean=aggregate["average"]["mean"],
                max_mean=aggregate["max"]["mean"],
            )
        print()
        print(aggregate_table)
    if args.plot:
        for row in rows:
            distribution = RoundDistribution.from_dict(row["distribution"])
            print()
            print(
                f"pmf of the average measure — {row['graph']} / "
                f"{row['algorithm']} / {row['method']}"
            )
            print(ascii_pmf(distribution.average_distribution()))
    if args.output:
        write_dist_rows(rows, args.output, aggregates=aggregates)
        print(f"wrote {len(rows)} rows to {args.output}")
    return 0


def _cmd_scale(args: argparse.Namespace, session: Session) -> int:
    result = session.scale(
        Query(
            mode="scale",
            topologies=args.topology,
            sizes=args.n,
            algorithms=args.algorithm,
            seed=args.seed,
            samples=args.samples,
            workers=_resolve_workers_flag(args.workers),
            row_block=args.row_block,
            center_chunk=args.center_chunk,
        )
    )
    row = result.rows[0]
    print(f"algorithm        : {row['algorithm']}")
    print(f"graph            : {row['graph']} ({row['graph_n']} nodes, {row['graph_m']} edges)")
    print(f"samples          : {row['samples']}")
    print(
        f"average measure  : {row['average']['mean']:.4f} "
        f"(se {row['average']['std_error']:.4f})"
    )
    print(f"classic (max)    : {row['max']['mean']:.1f}")
    print(f"throughput       : {row['nodes_per_s']:.0f} nodes/s")
    print(f"kernel           : {row['kernel']['rule']} (workers {row['kernel']['workers']})")
    print(format_timing(result))
    if args.output:
        result.save(args.output)
        print(f"wrote repro-result document to {args.output}")
    return 0


def format_timing(result) -> str:
    """The CLI's timing read-out for one :class:`~repro.api.results.Result`.

    Always the summed wall time; when the result carries a ``profile``
    block (``REPRO_OBS=on`` or ``query --profile``/``--trace``), also the
    top three spans by self time — so the read-out says *where* the time
    went, not just how much there was.
    """
    lines = [f"wall time: {result.timing.get('wall_time_s', 0.0):.3f}s"]
    profile = getattr(result, "profile", None)
    if profile:
        from repro.obs import top_spans

        for node in top_spans(profile["spans"], 3):
            lines.append(
                f"  {node['name']}: {node['total_s']:.3f}s total / "
                f"{node['self_s']:.3f}s self ({node['count']}x)"
            )
    return "\n".join(lines)


def _cmd_query(args: argparse.Namespace, session: Session) -> int:
    if args.profile or args.trace:
        # Flags win over REPRO_OBS=off: instrumentation was asked for
        # explicitly, so switch it on for this process before running.
        from repro.obs import enable, reset_metrics, reset_spans

        enable()
        reset_spans()
        reset_metrics()
    spec = Query.load(args.spec)
    if args.workers is not None:
        spec = spec.with_changes(workers=args.workers)
    result = session.run(spec)
    print(result.table())
    print()
    print(f"mode     : {result.mode}")
    print(f"cells    : {len(result.rows)}")
    if result.exact is not None:
        print(f"exact    : {result.exact}")
    print(f"measures : {result.measures}")
    print(format_timing(result))
    if args.profile:
        print()
        print(result.profile_table())
    if args.trace:
        from repro.obs import write_chrome_trace

        events = write_chrome_trace(args.trace)
        print(f"wrote {events} trace events to {args.trace}")
    if args.output:
        result.save(args.output)
        print(f"wrote repro-result document to {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    if args.command == "list-algorithms":
        return _cmd_list_algorithms()
    if args.command == "list-experiments":
        return _cmd_list_experiments()
    if args.command == "run-experiment":
        return _cmd_run_experiment(args)
    if args.command == "gap":
        return _cmd_gap(args)
    if args.command == "serve":
        from repro.service import serve

        return serve(
            host=args.host,
            port=args.port,
            root=args.store,
            max_parallel=_resolve_workers_flag(args.max_parallel),
            quiet=args.quiet,
            store_max_objects=args.store_max_objects,
            store_max_bytes=args.store_max_bytes,
        )
    session = Session()
    if args.command == "simulate":
        return _cmd_simulate(args, session)
    if args.command == "search":
        return _cmd_search(args, session)
    if args.command == "sweep":
        return _cmd_sweep(args, session)
    if args.command == "dist":
        return _cmd_dist(args, session)
    if args.command == "scale":
        return _cmd_scale(args, session)
    if args.command == "query":
        return _cmd_query(args, session)
    parser.error(f"unhandled command {args.command!r}")
    return 2
