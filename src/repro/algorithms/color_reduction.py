"""Colour-reduction primitives used by the Cole–Vishkin algorithm.

The Cole–Vishkin "deterministic coin tossing" step takes a node's current
colour ``x`` and the colour ``y`` of its predecessor on an oriented ring
(with ``x != y``), finds the lowest bit position ``i`` where the two colours
differ, and recolours the node ``2 * i + bit_i(x)``.  One application shrinks
a palette of ``c`` colours to roughly ``2 * log2(c)``; iterating reaches a
six-colour palette after ``O(log* c)`` applications, after which the palette
cannot shrink further by this method and the explicit 6 -> 3 reduction of
:mod:`repro.algorithms.cole_vishkin` takes over.
"""

from __future__ import annotations

from repro.errors import AlgorithmError
from repro.utils.validation import require_positive_int


def cv_step(own_color: int, other_color: int) -> int:
    """One Cole–Vishkin recolouring step.

    Parameters
    ----------
    own_color, other_color:
        Current colours of the node and of its reference neighbour (the
        predecessor on an oriented ring).  They must differ; equal colours
        indicate the caller's colouring was already improper.
    """
    if own_color == other_color:
        raise AlgorithmError(
            f"cv_step requires distinct colours, got {own_color} twice"
        )
    if own_color < 0 or other_color < 0:
        raise AlgorithmError("cv_step requires non-negative colours")
    differing = own_color ^ other_color
    index = (differing & -differing).bit_length() - 1
    bit = (own_color >> index) & 1
    return 2 * index + bit


def palette_after_iterations(palette_size: int, iterations: int) -> int:
    """Upper bound on the palette size after ``iterations`` Cole–Vishkin steps.

    Starting from colours in ``0 .. palette_size - 1``, one step maps colours
    into ``0 .. 2 * bit_length - 1``.  The bound is exact in the worst case
    and never drops below 6 (three bit positions keep regenerating
    themselves).
    """
    require_positive_int(palette_size, "palette_size")
    size = palette_size
    for _ in range(iterations):
        if size <= 6:
            return size
        bits = max((size - 1).bit_length(), 1)
        size = 2 * bits
    return size


def iterations_until_six_colors(palette_size: int) -> int:
    """Number of Cole–Vishkin steps needed to certainly reach at most 6 colours.

    This is the ``O(log*)`` quantity: it grows extremely slowly (for example
    it is 3 for a palette of 2^16 colours and 5 for a palette of 2^65536).
    """
    require_positive_int(palette_size, "palette_size")
    size = palette_size
    iterations = 0
    while size > 6:
        size = palette_after_iterations(size, 1)
        iterations += 1
        if iterations > 64:
            raise AlgorithmError(
                f"colour reduction failed to converge from palette {palette_size}"
            )
    return iterations


def free_color(neighbor_colors: set[int], palette: int = 3) -> int:
    """Smallest colour in ``0..palette-1`` unused by the given neighbours.

    Used by the final 6 -> 3 reduction (a node with two neighbours always
    finds a free colour among three) and by the greedy colouring baseline.
    """
    for candidate in range(palette):
        if candidate not in neighbor_colors:
            return candidate
    raise AlgorithmError(
        f"no free colour in a palette of {palette} given neighbours {sorted(neighbor_colors)}"
    )
