"""Greedy colouring by identifier.

The global rule is the sequential greedy colouring along decreasing
identifiers: a node's colour is the smallest non-negative integer unused by
its neighbours of *higher* identifier.  The palette never exceeds
``max degree + 1``.

As a LOCAL algorithm the node grows its ball until the full cone of
increasing-identifier paths leaving it is visible.  On a cycle the worst
case over identifier assignments is linear (sorted identifiers force a node
to follow an increasing run around the whole ring) while a random assignment
gives constant expected radius — a second natural example, besides
largest-ID, of a problem whose average-measure behaviour is far better than
its classic worst case.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algorithms.priority_resolution import resolve_by_descending_id
from repro.core.algorithm import BallAlgorithm
from repro.model.ball import BallView


def _smallest_free_color(used: Mapping[int, int]) -> int:
    color = 0
    taken = set(used.values())
    while color in taken:
        color += 1
    return color


class GreedyColoringByID(BallAlgorithm):
    """Colour = smallest colour unused by higher-identifier neighbours."""

    name = "greedy-coloring"
    problem = "coloring"
    # The descending-id resolution and the smallest-free-colour rule use only
    # identifier comparisons; colours themselves are id-free.
    order_invariant = True
    uses_ports = False

    def decide(self, ball: BallView) -> Optional[int]:
        determined = resolve_by_descending_id(
            ball, lambda identifier, higher: _smallest_free_color(higher)
        )
        return determined.get(ball.center_id)

    def compile_kernel_rule(self, instance):
        """Dependency-cone rule (:class:`~repro.kernel.cone.GreedyConeRule`):
        the radius is the largest neighbourhood extent over the centre's
        cone of increasing-identifier paths, the colour the global greedy
        mex — both batchable over whole assignment matrices."""
        from repro.kernel.cone import GreedyConeRule

        return GreedyConeRule(instance, problem="coloring")
