"""Compilers between the two views of the LOCAL model.

The paper treats the round-based (message-passing) description and the
ball-based description of the LOCAL model as interchangeable.  This module
makes the equivalence executable in both directions:

* :class:`BallSimulationOfRounds` turns a round-based algorithm into a
  ball-based one: a node holding its radius-``r`` ball can replay, for every
  visible node ``u``, the first ``r - dist(u)`` rounds of the message-passing
  execution, and in particular its own first ``r`` rounds.  The compiled
  algorithm therefore outputs at radius exactly the round at which the
  original algorithm commits (or earlier, when the ball already covers the
  whole graph).

* :class:`FullGatherRoundAlgorithm` turns a ball-based algorithm into a
  round-based one by flooding everything every round.  After ``r`` rounds a
  node has certainly learnt its induced ball of radius ``r - 1`` (edges
  between two nodes at distance exactly ``r`` are not yet visible), so the
  compiled algorithm commits at most one round after the ball algorithm's
  radius.  Experiment E9 quantifies this off-by-at-most-one relationship.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.algorithm import BallAlgorithm
from repro.errors import AlgorithmError
from repro.model.ball import BallView
from repro.model.rounds import RoundAlgorithm


class BallSimulationOfRounds(BallAlgorithm):
    """Run a :class:`RoundAlgorithm` by local replay inside each ball."""

    def __init__(self, round_algorithm: RoundAlgorithm, problem: str | None = None) -> None:
        self.round_algorithm = round_algorithm
        self.name = f"ball-simulation({round_algorithm.name})"
        self.problem = problem if problem is not None else getattr(
            round_algorithm, "problem", "unspecified"
        )

    def supports_graph(self, graph: Any) -> bool:
        """Forward the wrapped round algorithm's structural requirements."""
        return bool(self.round_algorithm.supports_graph(graph))

    def compile_kernel_rule(self, instance: Any) -> Optional[Any]:
        """Forward to the wrapped algorithm's batch compiler.

        The ball simulation is a faithful replay, so a vectorised rule for
        the round algorithm's commit schedule
        (:meth:`repro.model.rounds.RoundAlgorithm.compile_ball_kernel_rule`)
        is equally valid for this wrapper.
        """
        return self.round_algorithm.compile_ball_kernel_rule(instance)

    def decide(self, ball: BallView) -> Optional[Any]:
        algorithm = self.round_algorithm
        members = sorted(ball.ids())
        covers_all = ball.covers_whole_graph()
        # How many rounds of node u's execution this ball can replay faithfully.
        if covers_all:
            limit = {u: 2 * ball.size + 2 for u in members}
        else:
            limit = {u: ball.radius - ball.distance(u) for u in members}
        states: dict[int, Any] = {}
        committed: dict[int, Any] = {}
        for u in members:
            states[u] = algorithm.initialize(u, ball.degree(u))
            initial = algorithm.decide_initially(states[u])
            if initial is not None:
                committed[u] = initial
        if ball.center_id in committed:
            return committed[ball.center_id]
        neighbors = {u: ball.neighbors_in_ball(u) for u in members}
        max_rounds = limit[ball.center_id]
        for round_number in range(1, max_rounds + 1):
            # A node's round-k message is a function of its state after k-1
            # rounds, so every node whose state is valid through round k-1 can
            # act as a sender; only nodes valid through round k may update.
            senders = [u for u in members if limit[u] >= round_number - 1]
            receivers = [u for u in members if limit[u] >= round_number]
            outboxes = {
                u: dict(algorithm.send(states[u], round_number)) for u in senders
            }
            for u in receivers:
                # Every neighbour of a receiver is visible and valid one round
                # behind it (triangle inequality), hence always a sender.
                inbox: dict[int, Any] = {}
                for w in neighbors[u]:
                    payload = outboxes.get(w, {})
                    port_on_w = ball.port(w, u)
                    if port_on_w in payload:
                        inbox[ball.port(u, w)] = payload[port_on_w]
                new_state, output = algorithm.receive(states[u], inbox, round_number)
                states[u] = new_state
                if output is not None and u not in committed:
                    committed[u] = output
            if ball.center_id in committed:
                return committed[ball.center_id]
        if covers_all and ball.center_id not in committed:
            raise AlgorithmError(
                f"round algorithm {algorithm.name!r} did not commit within "
                f"{max_rounds} simulated rounds despite seeing the whole graph"
            )
        return None


@dataclass
class _GatherMemory:
    """Everything a flooding node has learnt so far."""

    own_id: int
    degree_by_id: dict[int, int] = field(default_factory=dict)
    ports: dict[tuple[int, int], int] = field(default_factory=dict)
    rounds_elapsed: int = 0


class FullGatherRoundAlgorithm(RoundAlgorithm):
    """Flood all knowledge every round and feed growing balls to a ball algorithm."""

    def __init__(self, ball_algorithm: BallAlgorithm) -> None:
        self.ball_algorithm = ball_algorithm
        self.name = f"full-gather({ball_algorithm.name})"
        self.problem = ball_algorithm.problem

    # ------------------------------------------------------------------
    # RoundAlgorithm interface
    # ------------------------------------------------------------------
    def initialize(self, identifier: int, degree: int) -> _GatherMemory:
        memory = _GatherMemory(own_id=identifier)
        memory.degree_by_id[identifier] = degree
        return memory

    def decide_initially(self, memory: _GatherMemory) -> Optional[Any]:
        return self.ball_algorithm.decide(self._ball(memory, radius=0))

    def send(self, memory: _GatherMemory, round_number: int) -> Mapping[int, Any]:
        payload = {
            "sender": memory.own_id,
            "degrees": dict(memory.degree_by_id),
            "ports": dict(memory.ports),
        }
        degree = memory.degree_by_id[memory.own_id]
        return {port: dict(payload, sender_port=port) for port in range(degree)}

    def receive(
        self, memory: _GatherMemory, inbox: Mapping[int, Any], round_number: int
    ) -> tuple[_GatherMemory, Optional[Any]]:
        for receiver_port, payload in inbox.items():
            sender = payload["sender"]
            memory.degree_by_id.update(payload["degrees"])
            memory.ports.update(payload["ports"])
            memory.ports[(memory.own_id, sender)] = receiver_port
            memory.ports[(sender, memory.own_id)] = payload["sender_port"]
        memory.rounds_elapsed = round_number
        output = self.ball_algorithm.decide(self._best_known_ball(memory))
        return memory, output

    # ------------------------------------------------------------------
    # knowledge -> BallView reconstruction
    # ------------------------------------------------------------------
    def _known_edges(self, memory: _GatherMemory) -> set[frozenset[int]]:
        return {frozenset(pair) for pair in memory.ports}

    def _distances(self, memory: _GatherMemory) -> dict[int, int]:
        """BFS over the knowledge graph from the node's own identifier."""
        adjacency: dict[int, set[int]] = {}
        for a, b in memory.ports:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        distances = {memory.own_id: 0}
        frontier = [memory.own_id]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency.get(node, ()):
                    if neighbor not in distances:
                        distances[neighbor] = distances[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def _ball(self, memory: _GatherMemory, radius: int) -> BallView:
        distances = self._distances(memory)
        members = {u for u, d in distances.items() if d <= radius}
        edges = frozenset(
            edge for edge in self._known_edges(memory) if edge <= members
        )
        return BallView(
            center_id=memory.own_id,
            radius=radius,
            distance_by_id={u: distances[u] for u in members},
            degree_by_id={u: memory.degree_by_id[u] for u in members},
            edges=edges,
            port_by_pair={
                pair: port
                for pair, port in memory.ports.items()
                if pair[0] in members and pair[1] in members
            },
        )

    def _best_known_ball(self, memory: _GatherMemory) -> BallView:
        """The largest ball that is certainly complete after the rounds so far.

        After ``r`` rounds the node knows every edge incident to a node at
        distance at most ``r - 1``, hence the induced ball of radius
        ``r - 1`` is complete.  If the knowledge graph is already saturated
        (every known node has all its edges known), the whole graph is known
        and the maximal ball is returned instead.
        """
        distances = self._distances(memory)
        known_degree: dict[int, int] = {u: 0 for u in distances}
        for a, b in self._known_edges(memory):
            known_degree[a] = known_degree.get(a, 0) + 1
            known_degree[b] = known_degree.get(b, 0) + 1
        saturated = all(
            known_degree.get(u, 0) == memory.degree_by_id.get(u, -1) for u in distances
        )
        if saturated:
            return self._ball(memory, radius=max(distances.values(), default=0))
        return self._ball(memory, radius=max(0, memory.rounds_elapsed - 1))
