"""Cole–Vishkin 3-colouring of the oriented ring.

This is the classic ``O(log* n)`` algorithm the paper's Section 3 refers to:
starting from the identifiers as colours, every node repeatedly applies the
Cole–Vishkin bit trick against its predecessor's colour until the palette
has shrunk to six colours, then three further rounds eliminate colours 5, 4
and 3 one by one (a node dropping colour ``c`` picks a free colour among
``{0, 1, 2}``, which always exists because it has only two neighbours).

Every node commits at exactly the same round, so the *average* radius of the
algorithm equals its worst-case radius ``Theta(log* n)`` — which is the point
of the paper's Theorem 1: no 3-colouring algorithm can do better than
``Omega(log* n)`` even on average.

The algorithm is presented in the round (message-passing) view; it assumes
the globally consistent orientation provided by
:func:`repro.topology.cycle.cycle_graph` (port 0 = successor).  It uses the
knowledge of ``n`` only to know how many bit-trick iterations are needed;
see ``EXPERIMENTS.md`` for why this does not affect the reproduction of the
paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.algorithms.color_reduction import cv_step, free_color, iterations_until_six_colors
from repro.errors import AlgorithmError, TopologyError
from repro.model.graph import Graph
from repro.model.rounds import RoundAlgorithm
from repro.topology.cycle import PREDECESSOR_PORT, SUCCESSOR_PORT
from repro.utils.validation import require_positive_int


def cv_rounds_needed(n: int) -> int:
    """Total rounds used by :class:`ColeVishkinRing` on an ``n``-node ring."""
    require_positive_int(n, "n")
    return iterations_until_six_colors(n) + 3


def is_consistently_oriented_ring(graph: Graph) -> bool:
    """Whether ``graph`` is a cycle whose port numbering orients it consistently.

    Consistency means: following port :data:`SUCCESSOR_PORT` from every node
    walks around the whole cycle, and the node reached sees the sender
    through port :data:`PREDECESSOR_PORT`.
    """
    if not graph.is_cycle():
        return False
    for position in graph.positions():
        successor = graph.neighbors(position)[SUCCESSOR_PORT]
        if graph.port_to(successor, position) != PREDECESSOR_PORT:
            return False
    return True


@dataclass
class _CVMemory:
    """Private per-node memory of the Cole–Vishkin execution."""

    color: int
    phase: str  # "cv" or "reduce"
    iteration: int
    reduce_target: int


class ColeVishkinRing(RoundAlgorithm):
    """Cole–Vishkin 3-colouring on a consistently oriented ring of known size."""

    name = "cole-vishkin"
    problem = "3-coloring"

    def __init__(self, n: int) -> None:
        require_positive_int(n, "n")
        if n < 3:
            raise AlgorithmError("Cole–Vishkin needs a ring, hence at least 3 nodes")
        self.n = n
        self.cv_iterations = iterations_until_six_colors(n)

    # ------------------------------------------------------------------
    # RoundAlgorithm interface
    # ------------------------------------------------------------------
    def supports_graph(self, graph: Graph) -> bool:
        """Require a consistently oriented ring.

        ``self.n`` bounds the *identifier space*, not the ring length — the
        lower-bound experiments run rings smaller than the identifier pool —
        so only the topology is checked here; identifier range violations
        still surface per node in :meth:`initialize`.
        """
        return is_consistently_oriented_ring(graph)

    def initialize(self, identifier: int, degree: int) -> _CVMemory:
        if degree != 2:
            raise TopologyError(
                f"Cole–Vishkin runs on rings only; node {identifier} has degree {degree}"
            )
        if identifier >= self.n:
            raise AlgorithmError(
                f"identifier {identifier} is outside 0..{self.n - 1}; "
                "ColeVishkinRing expects identifiers drawn from 0..n-1"
            )
        phase = "cv" if self.cv_iterations > 0 else "reduce"
        return _CVMemory(color=identifier, phase=phase, iteration=0, reduce_target=5)

    def compile_ball_kernel_rule(self, instance):
        """Batched bit-trick kernel (:class:`~repro.kernel.cvring.ColeVishkinRingRule`).

        Every node commits at the same fixed round, so the output radius is
        assignment-independent and the outputs are one batched replay of the
        global execution.  Only claimed on consistently oriented rings — on
        anything else the fallback reproduces the reference errors.
        """
        if not is_consistently_oriented_ring(instance.graph):
            return None
        from repro.kernel.cvring import ColeVishkinRingRule

        return ColeVishkinRingRule(instance, self)

    def send(self, memory: _CVMemory, round_number: int) -> Mapping[int, Any]:
        if memory.phase == "cv":
            # The successor needs my colour for its bit-trick step.
            return {SUCCESSOR_PORT: memory.color}
        # Reduction rounds: both neighbours need my colour.
        return {SUCCESSOR_PORT: memory.color, PREDECESSOR_PORT: memory.color}

    def receive(
        self, memory: _CVMemory, inbox: Mapping[int, Any], round_number: int
    ) -> tuple[_CVMemory, Optional[int]]:
        if memory.phase == "cv":
            predecessor_color = inbox.get(PREDECESSOR_PORT)
            if predecessor_color is None:
                raise AlgorithmError("missing predecessor colour; is the ring oriented?")
            memory.color = cv_step(memory.color, predecessor_color)
            memory.iteration += 1
            if memory.iteration >= self.cv_iterations:
                memory.phase = "reduce"
            return memory, None
        # Reduction phase: drop colour ``reduce_target`` this round.
        neighbor_colors = {inbox[port] for port in (SUCCESSOR_PORT, PREDECESSOR_PORT)}
        if memory.color == memory.reduce_target:
            memory.color = free_color(neighbor_colors, palette=3)
        memory.reduce_target -= 1
        if memory.reduce_target == 2:
            return memory, memory.color
        return memory, None
