"""Greedy maximal independent set by identifier.

The global rule is the classic sequential one: a node joins the independent
set exactly when none of its higher-identifier neighbours joined.  The
resulting set is independent (two adjacent nodes cannot both have all-higher
neighbours outside the set) and maximal (a node outside the set has, by
definition, a higher neighbour inside it).

As a LOCAL algorithm the dependency structure is identical to greedy
colouring: a node outputs once the cone of increasing-identifier paths
leaving it is contained in its ball, so the same average-versus-worst-case
gap appears on cycles.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algorithms.priority_resolution import resolve_by_descending_id
from repro.core.algorithm import BallAlgorithm
from repro.model.ball import BallView


class GreedyMISByID(BallAlgorithm):
    """Join the MIS exactly when no higher-identifier neighbour joined."""

    name = "greedy-mis"
    problem = "mis"
    # Membership is decided purely by identifier comparisons along the
    # descending-id recursion; the output is a bare boolean.
    order_invariant = True
    uses_ports = False

    def decide(self, ball: BallView) -> Optional[bool]:
        determined = resolve_by_descending_id(
            ball,
            lambda identifier, higher: not any(higher.values()),
        )
        return determined.get(ball.center_id)

    def compile_kernel_rule(self, instance):
        """Dependency-cone rule (:class:`~repro.kernel.cone.GreedyConeRule`):
        same cone-extent radius as greedy colouring, with membership
        resolved by the batched descending-identifier recursion."""
        from repro.kernel.cone import GreedyConeRule

        return GreedyConeRule(instance, problem="mis")
