"""Registry of the library's named algorithms.

Experiments, benchmarks and the examples refer to algorithms by short names
("largest-id", "greedy-coloring", ...).  The registry centralises the
mapping from name to factory so new algorithms become available everywhere
by registering them once.

Factories take the instance size ``n`` because some algorithms (notably
Cole–Vishkin) need it; size-independent algorithms simply ignore it.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.algorithms.mis import GreedyMISByID
from repro.algorithms.ring_coloring_via_mis import RingColoringViaMIS
from repro.core.algorithm import BallAlgorithm
from repro.errors import ConfigurationError
from repro.model.rounds import RoundAlgorithm

AlgorithmFactory = Callable[[int], Union[BallAlgorithm, RoundAlgorithm]]

_REGISTRY: dict[str, AlgorithmFactory] = {}


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register (or replace) a named algorithm factory."""
    _REGISTRY[name] = factory


def algorithm_registry() -> dict[str, AlgorithmFactory]:
    """A copy of the current name -> factory mapping."""
    return dict(_REGISTRY)


def make_algorithm(name: str, n: int) -> Union[BallAlgorithm, RoundAlgorithm]:
    """Instantiate a registered algorithm for an instance of size ``n``."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; registered algorithms: {sorted(_REGISTRY)}"
        ) from exc
    return factory(n)


register_algorithm("largest-id", lambda n: LargestIdAlgorithm())
register_algorithm("greedy-coloring", lambda n: GreedyColoringByID())
register_algorithm("greedy-mis", lambda n: GreedyMISByID())
register_algorithm("cole-vishkin", lambda n: ColeVishkinRing(n))
register_algorithm(
    "cole-vishkin-ball", lambda n: BallSimulationOfRounds(ColeVishkinRing(n))
)
register_algorithm("ring-coloring-via-mis", lambda n: RingColoringViaMIS())
