"""Resolution of greedy-by-identifier algorithms inside a ball.

Several classic LOCAL algorithms (greedy colouring, greedy maximal
independent set) define a node's output by recursion over *higher-identifier
neighbours*: the node with the locally largest identifier decides first, and
every other node decides once all of its higher neighbours have.  A node can
therefore compute its own output as soon as its ball contains the whole
"dependency cone" of increasing-identifier paths leaving it.

:func:`resolve_by_descending_id` implements that computation once, so the
individual algorithms only supply the combination rule ("my output given my
higher neighbours' outputs").

The kernel's vectorised rules (:mod:`repro.kernel.cone`) run the same
recursion over whole assignment matrices.  Two assignment-level helpers live
here so the ball-based reference and the batch form share one definition:

* :func:`resolve_assignment_row` — the full-graph, single-pass form of
  :func:`resolve_by_descending_id`: one descending-identifier sweep yields
  every node's greedy output *and* its dependency cone (as a position
  bitmask).
* :func:`neighborhood_extent_table` — the assignment-independent radius at
  which a centre's ball contains all of another node's neighbours, which
  turns a cone into an output radius: a node decides at the first radius
  covering the neighbourhood of every cone member.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.model.ball import BallView

#: Combination rule: ``(node_id, {higher_neighbour_id: output}) -> output``.
CombineRule = Callable[[int, Mapping[int, Any]], Any]


def resolve_by_descending_id(ball: BallView, combine: CombineRule) -> dict[int, Any]:
    """Outputs determined *within* ``ball`` for the greedy-by-ID recursion.

    A ball member is determined when (a) all of its graph neighbours are
    visible in the ball — otherwise an unseen higher neighbour could change
    its output — and (b) every visible neighbour with a higher identifier is
    itself determined.  Members are processed in decreasing identifier order,
    which resolves the recursion in a single pass.

    Returns a mapping from identifier to output for every determined member;
    undetermined members are simply absent.
    """
    adjacency: dict[int, set[int]] = {identifier: set() for identifier in ball.ids()}
    for edge in ball.edges:
        a, b = tuple(edge)
        adjacency[a].add(b)
        adjacency[b].add(a)
    determined: dict[int, Any] = {}
    for identifier in sorted(adjacency, reverse=True):
        if len(adjacency[identifier]) != ball.degree(identifier):
            continue
        higher_neighbors = [n for n in adjacency[identifier] if n > identifier]
        if any(neighbor not in determined for neighbor in higher_neighbors):
            continue
        determined[identifier] = combine(
            identifier, {neighbor: determined[neighbor] for neighbor in higher_neighbors}
        )
    return determined


def resolve_assignment_row(
    ids: Sequence[int],
    indptr: Sequence[int],
    indices: Sequence[int],
    problem: str,
) -> tuple[list[int], list[Any]]:
    """One descending-ID sweep over a *full* assignment row.

    The batch-kernel form of :func:`resolve_by_descending_id`: with the whole
    graph visible the recursion always terminates, and a single pass in
    decreasing identifier order yields, per position ``u``:

    * ``cones[u]`` — the dependency cone of ``u`` as a bitmask of positions
      (``u`` itself plus the cones of its higher-identifier neighbours); and
    * ``values[u]`` — the greedy output: the smallest colour unused by the
      higher neighbours (``problem="coloring"``) or membership in the greedy
      MIS (``problem="mis"``, ``True`` iff no higher neighbour joined).

    ``indptr``/``indices`` are the CSR adjacency of the graph in position
    space (:attr:`repro.kernel.compile.CompiledInstance.indices`).
    """
    if problem not in ("coloring", "mis"):
        raise ValueError(f"unknown greedy-by-ID problem {problem!r}")
    coloring = problem == "coloring"
    n = len(ids)
    order = sorted(range(n), key=ids.__getitem__, reverse=True)
    cones = [0] * n
    values: list[Any] = [0] * n
    for u in order:
        cone = 1 << u
        used = 0  # colour bitmask ("coloring") / higher-member flag ("mis")
        own = ids[u]
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if ids[w] > own:
                cone |= cones[w]
                if coloring:
                    used |= 1 << values[w]
                elif values[w]:
                    used = 1
        cones[u] = cone
        if coloring:
            unused = ~used
            values[u] = (unused & -unused).bit_length() - 1
        else:
            values[u] = not used
    return cones, values


def neighborhood_extent_table(
    indptr: Sequence[int],
    indices: Sequence[int],
    discovery: Sequence[Sequence[int]],
    distances: Sequence[Sequence[int]],
) -> tuple[tuple[int, ...], ...]:
    """``extent[v][u]``: first radius at which ``v``'s ball holds all of ``N(u)``.

    This is the assignment-independent half of the greedy-by-ID radius: node
    ``v`` outputs at the first radius whose ball contains the neighbourhood
    of every member of its dependency cone (visibility of ``N(u)`` is what
    :func:`resolve_by_descending_id` demands before determining ``u``), so
    ``radius(v) = max(extent[v][u] for u in cone(v))``.  ``discovery`` and
    ``distances`` are the per-centre BFS prefixes of a compiled instance.
    """
    n = len(indptr) - 1
    table = []
    for v in range(n):
        dist_v = [0] * n
        row_discovery = discovery[v]
        row_distances = distances[v]
        for index in range(len(row_discovery)):
            dist_v[row_discovery[index]] = row_distances[index]
        row = []
        for u in range(n):
            extent = 0
            for k in range(indptr[u], indptr[u + 1]):
                d = dist_v[indices[k]]
                if d > extent:
                    extent = d
            row.append(extent)
        table.append(tuple(row))
    return tuple(table)


def dependency_depth(ball: BallView, identifier: int) -> int | None:
    """Length of the longest strictly-increasing-identifier path from ``identifier``.

    Only computable when the whole cone is visible; returns ``None``
    otherwise.  This is the radius (up to the +1 needed to confirm the last
    node's neighbourhood) at which the greedy-by-ID algorithms decide, and
    tests use it as an independent oracle.
    """
    cache: dict[int, int | None] = {}

    def depth(node: int) -> int | None:
        if node in cache:
            return cache[node]
        if ball.degree_inside(node) != ball.degree(node):
            cache[node] = None
            return None
        best = 0
        for neighbor in ball.neighbors_in_ball(node):
            if neighbor > node:
                sub = depth(neighbor)
                if sub is None:
                    cache[node] = None
                    return None
                best = max(best, sub + 1)
        cache[node] = best
        return best

    return depth(identifier)
