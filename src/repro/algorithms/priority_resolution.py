"""Resolution of greedy-by-identifier algorithms inside a ball.

Several classic LOCAL algorithms (greedy colouring, greedy maximal
independent set) define a node's output by recursion over *higher-identifier
neighbours*: the node with the locally largest identifier decides first, and
every other node decides once all of its higher neighbours have.  A node can
therefore compute its own output as soon as its ball contains the whole
"dependency cone" of increasing-identifier paths leaving it.

:func:`resolve_by_descending_id` implements that computation once, so the
individual algorithms only supply the combination rule ("my output given my
higher neighbours' outputs").
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.model.ball import BallView

#: Combination rule: ``(node_id, {higher_neighbour_id: output}) -> output``.
CombineRule = Callable[[int, Mapping[int, Any]], Any]


def resolve_by_descending_id(ball: BallView, combine: CombineRule) -> dict[int, Any]:
    """Outputs determined *within* ``ball`` for the greedy-by-ID recursion.

    A ball member is determined when (a) all of its graph neighbours are
    visible in the ball — otherwise an unseen higher neighbour could change
    its output — and (b) every visible neighbour with a higher identifier is
    itself determined.  Members are processed in decreasing identifier order,
    which resolves the recursion in a single pass.

    Returns a mapping from identifier to output for every determined member;
    undetermined members are simply absent.
    """
    adjacency: dict[int, set[int]] = {identifier: set() for identifier in ball.ids()}
    for edge in ball.edges:
        a, b = tuple(edge)
        adjacency[a].add(b)
        adjacency[b].add(a)
    determined: dict[int, Any] = {}
    for identifier in sorted(adjacency, reverse=True):
        if len(adjacency[identifier]) != ball.degree(identifier):
            continue
        higher_neighbors = [n for n in adjacency[identifier] if n > identifier]
        if any(neighbor not in determined for neighbor in higher_neighbors):
            continue
        determined[identifier] = combine(
            identifier, {neighbor: determined[neighbor] for neighbor in higher_neighbors}
        )
    return determined


def dependency_depth(ball: BallView, identifier: int) -> int | None:
    """Length of the longest strictly-increasing-identifier path from ``identifier``.

    Only computable when the whole cone is visible; returns ``None``
    otherwise.  This is the radius (up to the +1 needed to confirm the last
    node's neighbourhood) at which the greedy-by-ID algorithms decide, and
    tests use it as an independent oracle.
    """
    cache: dict[int, int | None] = {}

    def depth(node: int) -> int | None:
        if node in cache:
            return cache[node]
        if ball.degree_inside(node) != ball.degree(node):
            cache[node] = None
            return None
        best = 0
        for neighbor in ball.neighbors_in_ball(node):
            if neighbor > node:
                sub = depth(neighbor)
                if sub is None:
                    cache[node] = None
                    return None
                best = max(best, sub + 1)
        cache[node] = best
        return best

    return depth(identifier)
