"""The largest-ID algorithm (Section 2 of the paper).

Every node must output ``True`` if it carries the largest identifier of the
whole graph and ``False`` otherwise — "a classic way to elect a leader".
The paper's algorithm is the obvious one: *each node increases its radius
until it discovers an identifier larger than its own, or until it has seen
the whole graph*.

On a cycle the worst-case radius of this algorithm is linear (the maximum
node must see everything) while its **average** radius is logarithmic — the
exponential gap the paper uses to motivate the average measure.  The
algorithm itself is correct on every connected graph, so the experiments can
also exercise it on trees, grids and random graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithm import BallAlgorithm
from repro.model.ball import BallView
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment


class LargestIdAlgorithm(BallAlgorithm):
    """Grow the ball until a larger identifier or the whole graph is visible."""

    name = "largest-id"
    problem = "largest-id"
    # Only identifier comparisons and ball structure enter the decision, and
    # the output is a bare boolean, so id-relabeled caching is sound.
    order_invariant = True
    uses_ports = False

    def decide(self, ball: BallView) -> Optional[bool]:
        if ball.contains_id_larger_than(ball.center_id):
            return False
        if ball.covers_whole_graph():
            return True
        return None

    def compile_kernel_rule(self, instance):
        """Vectorised batch rule: distance to the nearest larger identifier.

        The radius of every node is a pure array lookup on a compiled
        instance (see :class:`~repro.kernel.rules.MaxScanRule`), which is
        what makes the batched sampling and canonical-leaf cohorts of the
        upper layers run at array speed for this algorithm.
        """
        from repro.kernel.rules import MaxScanRule

        return MaxScanRule(instance)

    def compile_scale_rule(self, csr):
        """Plan-free large-n rule: early-stop BFS to the nearest larger ID.

        The scale sibling of :class:`~repro.kernel.rules.MaxScanRule` — no
        per-centre plans, just the streamed CSR adjacency — which is what
        lets the ``scale`` query mode sample this algorithm on 10^6-node
        topologies with bounded memory (see :mod:`repro.kernel.shard`).
        On the cycle — the paper's own topology — the BFS specialises to a
        whole-row vectorised ring sweep
        (:class:`~repro.kernel.shard.RingScanScaleRule`), bit-identical but
        without the per-centre ball walk.
        """
        from repro.kernel.shard import MaxScanScaleRule, RingScanScaleRule

        if csr.topology == "cycle":
            return RingScanScaleRule(csr)
        return MaxScanScaleRule(csr)


def predicted_largest_id_radii(graph: Graph, ids: IdentifierAssignment) -> dict[int, int]:
    """Closed-form radii of :class:`LargestIdAlgorithm` on any connected graph.

    The node with the globally largest identifier stops when its ball covers
    the whole graph, i.e. at its eccentricity.  Every other node stops at
    the distance to the nearest node with a larger identifier.  Used as an
    oracle in tests to validate the ball simulator end to end.
    """
    radii: dict[int, int] = {}
    for position in graph.positions():
        own = ids[position]
        distances = graph.distances_from(position)
        larger = [d for u, d in distances.items() if ids[u] > own]
        if larger:
            radii[position] = min(larger)
        else:
            radii[position] = graph.eccentricity(position)
    return radii


def predicted_average_radius(graph: Graph, ids: IdentifierAssignment) -> float:
    """Average of :func:`predicted_largest_id_radii` (per-assignment, no max)."""
    radii = predicted_largest_id_radii(graph, ids)
    return sum(radii.values()) / graph.n
