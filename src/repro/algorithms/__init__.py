"""Distributed algorithms.

This package contains the algorithms the paper discusses plus the baselines
needed for the experiments:

* :mod:`largest_id` — the paper's Section 2 algorithm (grow the ball until a
  larger identifier, or the whole graph, is visible);
* :mod:`cole_vishkin` — the Cole–Vishkin 3-colouring of the oriented ring
  (the paper's Section 3 upper bound);
* :mod:`color_reduction` — the bit-trick colour-reduction step and the
  6 -> 3 palette reduction used by Cole–Vishkin;
* :mod:`greedy_coloring`, :mod:`mis` — greedy-by-identifier baselines whose
  average radius is also much smaller than their worst case;
* :mod:`full_gather` — the two compilers between the ball view and the
  round (message-passing) view of the LOCAL model.
"""

from repro.algorithms.cole_vishkin import ColeVishkinRing, cv_rounds_needed
from repro.algorithms.color_reduction import (
    cv_step,
    iterations_until_six_colors,
    palette_after_iterations,
)
from repro.algorithms.full_gather import BallSimulationOfRounds, FullGatherRoundAlgorithm
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm, predicted_largest_id_radii
from repro.algorithms.mis import GreedyMISByID
from repro.algorithms.registry import algorithm_registry, make_algorithm
from repro.algorithms.ring_coloring_via_mis import RingColoringViaMIS

__all__ = [
    "BallSimulationOfRounds",
    "ColeVishkinRing",
    "FullGatherRoundAlgorithm",
    "GreedyColoringByID",
    "GreedyMISByID",
    "LargestIdAlgorithm",
    "RingColoringViaMIS",
    "algorithm_registry",
    "cv_rounds_needed",
    "cv_step",
    "iterations_until_six_colors",
    "make_algorithm",
    "palette_after_iterations",
    "predicted_largest_id_radii",
]
