"""A uniform (no knowledge of ``n``) 3-colouring of the ring via an MIS.

The paper emphasises the setting where ``n`` is unknown and nodes may output
at different rounds.  Cole–Vishkin (as implemented in
:mod:`repro.algorithms.cole_vishkin`) uses ``n`` to know how many bit-trick
iterations to run; this module provides a genuinely *uniform* 3-colouring
with a very different radius profile:

1.  compute the greedy-by-identifier maximal independent set (uniform, see
    :mod:`repro.algorithms.mis`); its members take colour 0;
2.  by maximality and independence, the gaps between consecutive MIS members
    on a ring contain one or two non-members.  A lone non-member (both
    neighbours in the MIS) takes colour 1; in a two-node gap the two adjacent
    non-members compare identifiers — the larger takes colour 1, the smaller
    colour 2 — which both of them can evaluate locally and consistently.

A node therefore outputs as soon as its ball determines the MIS membership
of itself and of its two neighbours.  The radius profile inherits the MIS's:
worst case ``Theta(n)`` over identifier assignments (a sorted ring forces
long dependency chains) but ``O(log n)`` on average — a second problem,
besides largest-ID, where the paper's average measure is exponentially
better than the classic one, and a counterpoint to Cole–Vishkin whose two
measures coincide at ``Theta(log* n)``.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.priority_resolution import resolve_by_descending_id
from repro.core.algorithm import BallAlgorithm
from repro.errors import AlgorithmError
from repro.model.ball import BallView
from repro.model.graph import Graph


class RingColoringViaMIS(BallAlgorithm):
    """Uniform 3-colouring of a ring: MIS members get 0, gap nodes get 1 or 2."""

    name = "ring-coloring-via-mis"
    problem = "3-coloring"
    # MIS membership and the gap tie-break (`center > other`) use only
    # identifier comparisons; the three colours are id-free.
    order_invariant = True
    uses_ports = False

    def supports_graph(self, graph: Graph) -> bool:
        return graph.is_cycle()

    def compile_kernel_rule(self, instance):
        """Cone rule spanning three cones
        (:class:`~repro.kernel.cone.RingMISConeRule`): a member outputs at
        its own cone's extent, a non-member once its ball also resolves both
        neighbours' membership.  Only claimed on cycles (the rule indexes
        exactly two neighbours per node); elsewhere the fallback surfaces
        the reference errors."""
        if not instance.graph.is_cycle():
            return None
        from repro.kernel.cone import RingMISConeRule

        return RingMISConeRule(instance)

    def decide(self, ball: BallView) -> Optional[int]:
        membership = resolve_by_descending_id(
            ball, lambda identifier, higher: not any(higher.values())
        )
        center = ball.center_id
        if center not in membership:
            return None
        if membership[center]:
            return 0
        neighbors = ball.neighbors_in_ball(center)
        if len(neighbors) < 2 or any(w not in membership for w in neighbors):
            return None
        member_neighbors = [w for w in neighbors if membership[w]]
        if len(member_neighbors) == 2:
            return 1
        if len(member_neighbors) == 1:
            (other,) = [w for w in neighbors if not membership[w]]
            return 1 if center > other else 2
        # Both neighbours outside the MIS would contradict maximality: the
        # centre itself would have had to join.  Reaching this line means the
        # membership computation is inconsistent, which is a bug worth
        # surfacing rather than colouring over.
        raise AlgorithmError(
            f"node {center} and both its neighbours are outside the MIS; "
            "the greedy MIS resolution is inconsistent"
        )
