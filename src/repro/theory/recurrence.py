"""The segment recurrence of Section 2.

The paper bounds the total radius of the largest-ID algorithm on a cycle by
splitting off the global maximum (which must see everything) and analysing
the remaining *segment*: a path of ``p`` vertices whose both endpoints are
adjacent, on the original cycle, to the removed maximum.  On the segment the
radius of a vertex is the distance to the nearest strictly larger identifier
within the segment, or — if the vertex is a left-to-right maximum up to an
endpoint — one more than the distance to that endpoint (one extra step shows
it the global maximum sitting just outside).

Writing ``a(p)`` for the worst case (over identifier orders) of the sum of
radii in a ``p``-vertex segment, splitting at the position ``k`` of the
segment maximum (taken in ``1..ceil(p/2)`` by symmetry) yields the paper's
recurrence::

    a(p) = max_{1 <= k <= ceil(p/2)} { k + a(k-1) + a(p-k) },   a(0)=0, a(1)=1

whose solution coincides with OEIS A000788 and grows as ``Theta(p log p)``.
This module evaluates the recurrence, the per-vertex segment radii, and a
brute-force maximisation over all identifier orders for small ``p`` so the
three views can be cross-checked.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

from repro.errors import ConfigurationError
from repro.utils.validation import require_non_negative_int

# Cache of a(0), a(1), ... computed so far; extended on demand.
_A_CACHE: list[int] = [0, 1]


def worst_case_segment_sum(p: int) -> int:
    """``a(p)``: worst-case sum of radii in a ``p``-vertex segment."""
    require_non_negative_int(p, "p")
    while len(_A_CACHE) <= p:
        q = len(_A_CACHE)
        best = 0
        for k in range(1, math.ceil(q / 2) + 1):
            candidate = k + _A_CACHE[k - 1] + _A_CACHE[q - k]
            if candidate > best:
                best = candidate
        _A_CACHE.append(best)
    return _A_CACHE[p]


def worst_case_segment_sums(up_to: int) -> list[int]:
    """The prefix ``[a(0), a(1), ..., a(up_to)]``."""
    require_non_negative_int(up_to, "up_to")
    worst_case_segment_sum(up_to)
    return list(_A_CACHE[: up_to + 1])


def segment_radii(identifiers: Sequence[int]) -> list[int]:
    """Per-vertex radii of the largest-ID algorithm on a segment.

    ``identifiers`` lists the (distinct) identifiers along the path.  The
    radius of vertex ``i`` is the minimum of

    * the distance to the nearest strictly larger identifier in the segment,
    * ``i + 1`` (reach past the left endpoint and meet the global maximum),
    * ``len(identifiers) - i`` (same through the right endpoint).
    """
    values = list(identifiers)
    if len(set(values)) != len(values):
        raise ConfigurationError("segment identifiers must be pairwise distinct")
    p = len(values)
    radii: list[int] = []
    for i, own in enumerate(values):
        best = min(i + 1, p - i)
        for j, other in enumerate(values):
            if other > own:
                best = min(best, abs(i - j))
        radii.append(best)
    return radii


def segment_radius_sum(identifiers: Sequence[int]) -> int:
    """Sum of :func:`segment_radii` over the segment."""
    return sum(segment_radii(identifiers))


def brute_force_segment_maximum(p: int, max_p: int = 9) -> int:
    """Exact worst case over *all* identifier orders of a ``p``-vertex segment.

    Exhaustive over ``p!`` orders, so capped at ``max_p`` vertices.  Used by
    the tests to confirm that the paper's recurrence really is the right
    worst case and not merely an upper bound.
    """
    require_non_negative_int(p, "p")
    if p > max_p:
        raise ConfigurationError(
            f"brute force over {p}! permutations refused (cap is {max_p}); "
            "use worst_case_segment_sum instead"
        )
    if p == 0:
        return 0
    return max(
        segment_radius_sum(permutation) for permutation in itertools.permutations(range(p))
    )


def worst_case_segment_arrangement(identifiers: Sequence[int]) -> list[int]:
    """An arrangement of ``identifiers`` on a segment achieving ``a(p)``.

    Follows the recurrence's optimal split: the largest identifier is placed
    at the maximising position ``k`` (counted from the nearer endpoint) and
    the two sub-segments are arranged recursively.  The returned list
    realises the worst case exactly, i.e.
    ``segment_radius_sum(result) == worst_case_segment_sum(p)``.
    """
    values = sorted(identifiers)
    if len(set(values)) != len(values):
        raise ConfigurationError("segment identifiers must be pairwise distinct")
    p = len(values)
    if p == 0:
        return []
    if p == 1:
        return [values[0]]
    worst_case_segment_sum(p)  # ensure the cache covers 0..p
    best_k = max(
        range(1, math.ceil(p / 2) + 1),
        key=lambda k: k + _A_CACHE[k - 1] + _A_CACHE[p - k],
    )
    maximum = values[-1]
    left_values = values[: best_k - 1]
    right_values = values[best_k - 1 : -1]
    left = worst_case_segment_arrangement(left_values)
    right = worst_case_segment_arrangement(right_values)
    return left + [maximum] + right


def worst_case_cycle_arrangement(n: int) -> list[int]:
    """Identifiers ``0..n-1`` arranged around a cycle to realise the worst case.

    Position 0 carries the global maximum ``n - 1`` (whose radius is the
    cycle's eccentricity regardless of the arrangement) and the remaining
    positions carry a worst-case segment arrangement of ``0..n-2``, so the
    total radius of the largest-ID algorithm on the resulting cycle equals
    ``floor(n/2) + a(n-1)``.
    """
    require_non_negative_int(n, "n")
    if n < 3:
        raise ConfigurationError("a cycle arrangement needs at least 3 identifiers")
    return [n - 1] + worst_case_segment_arrangement(range(n - 1))


def average_radius_upper_bound(n: int) -> float:
    """Paper's upper bound on the worst-case *average* radius on the ``n``-cycle.

    The global maximum needs radius ``floor(n/2)`` (its eccentricity on the
    cycle) and the remaining ``n - 1`` vertices form a segment, so the sum of
    radii is at most ``floor(n/2) + a(n-1)`` and the average is that divided
    by ``n`` — a ``Theta(log n)`` quantity.
    """
    require_non_negative_int(n, "n")
    if n == 0:
        raise ConfigurationError("the bound is undefined for an empty cycle")
    return (n // 2 + worst_case_segment_sum(n - 1)) / n
