"""Linial-style lower-bound machinery.

The proof of the paper's Theorem 1 uses, as a black box, the following
corollary of Linial's lower bound: *for every algorithm that 3-colours a
cycle of length larger than n/2, there exists an identifier permutation for
which some vertex needs radius at least (1/2) log*(n/2)*.  The function
:func:`linial_lower_bound_radius` evaluates that threshold.

For completeness the module also constructs Linial's *neighbourhood graph*
``B_{t,n}`` of the directed ring — whose vertices are the possible radius-
``t`` views and whose chromatic number decides whether a ``t``-round
3-colouring algorithm can exist — together with a small exact colourability
checker usable on the tiny instances where the construction fits in memory.
"""

from __future__ import annotations

import itertools
import math

import networkx as nx

from repro.errors import ConfigurationError
from repro.utils.math_functions import log_star
from repro.utils.validation import require_non_negative_int, require_positive_int


def linial_lower_bound_radius(n: int) -> int:
    """The paper's black-box threshold ``ceil((1/2) log*(n/2))`` (at least 1).

    This is the radius some vertex is forced to use by any 3-colouring
    algorithm on a cycle of length greater than ``n/2``.
    """
    require_positive_int(n, "n")
    return max(1, math.ceil(0.5 * log_star(max(2, n // 2))))


def neighborhood_graph(n: int, t: int) -> nx.Graph:
    """Linial's neighbourhood graph ``B_{t,n}`` of the directed ``n``-cycle.

    Vertices are the ordered ``(2t+1)``-tuples of distinct identifiers from
    ``0..n-1`` (all possible radius-``t`` views along the ring's
    orientation); two views are adjacent when they can belong to two
    neighbouring ring vertices, i.e. when one is the other shifted by one
    position.  A ``t``-round 3-colouring algorithm exists exactly when this
    graph is 3-colourable, which is how Linial's ``Omega(log* n)`` bound is
    proved.

    The graph has ``n! / (n - 2t - 1)!`` vertices, so only small ``n`` and
    ``t`` are practical; the constructor refuses anything above ~20000
    vertices.
    """
    require_positive_int(n, "n")
    require_non_negative_int(t, "t")
    view_length = 2 * t + 1
    if view_length > n:
        raise ConfigurationError(
            f"a radius-{t} view needs {view_length} distinct identifiers, "
            f"but only {n} exist"
        )
    vertex_count = math.perm(n, view_length)
    if vertex_count > 20_000:
        raise ConfigurationError(
            f"B_(t={t}, n={n}) would have {vertex_count} vertices; "
            "refusing to build such a large neighbourhood graph"
        )
    graph = nx.Graph()
    views = list(itertools.permutations(range(n), view_length))
    graph.add_nodes_from(views)
    for view in views:
        suffix = view[1:]
        for extra in range(n):
            if extra not in view:
                neighbour = suffix + (extra,)
                if neighbour != view:
                    graph.add_edge(view, neighbour)
    return graph


def is_k_colorable(graph: nx.Graph, k: int, node_limit: int = 500) -> bool:
    """Exact ``k``-colourability by backtracking (small graphs only).

    Nodes are coloured in decreasing degree order with forward checking; the
    ``node_limit`` guard refuses graphs where exhaustive search could take
    unreasonably long.
    """
    require_positive_int(k, "k")
    nodes = sorted(graph.nodes(), key=graph.degree, reverse=True)
    if len(nodes) > node_limit:
        raise ConfigurationError(
            f"exact colourability limited to {node_limit} nodes, got {len(nodes)}"
        )
    coloring: dict = {}

    def backtrack(index: int) -> bool:
        if index == len(nodes):
            return True
        node = nodes[index]
        forbidden = {coloring[w] for w in graph.neighbors(node) if w in coloring}
        for color in range(k):
            if color in forbidden:
                continue
            coloring[node] = color
            if backtrack(index + 1):
                return True
            del coloring[node]
        return False

    return backtrack(0)


def neighborhood_graph_chromatic_number(graph: nx.Graph, max_colors: int = 8) -> int:
    """Smallest ``k`` for which :func:`is_k_colorable` succeeds."""
    require_positive_int(max_colors, "max_colors")
    if graph.number_of_nodes() == 0:
        return 0
    if graph.number_of_edges() == 0:
        return 1
    for k in range(2, max_colors + 1):
        if is_k_colorable(graph, k):
            return k
    raise ConfigurationError(
        f"chromatic number exceeds {max_colors}; raise max_colors to continue"
    )


def greedy_chromatic_upper_bound(graph: nx.Graph) -> int:
    """Fast upper bound on the chromatic number (largest-first greedy)."""
    if graph.number_of_nodes() == 0:
        return 0
    coloring = nx.greedy_color(graph, strategy="largest_first")
    return max(coloring.values()) + 1
