"""OEIS sequence A000788 and binary-digit-sum helpers.

The paper analyses the largest-ID algorithm through the recurrence

    a(p) = max_{1 <= k <= ceil(p/2)} { k + a(k-1) + a(p-k) },

and notes that this sequence "is known to be in Theta(n ln n) (see for
example the sequence A000788 of the OEIS)".  A000788(n) is the total number
of ones in the binary expansions of ``0, 1, ..., n``; this module provides
both the naive definition and the classical closed-form digit-counting
formula, and :mod:`repro.theory.recurrence` verifies that the recurrence and
the sequence agree term by term.
"""

from __future__ import annotations

from repro.utils.validation import require_non_negative_int


def popcount(value: int) -> int:
    """Number of ones in the binary expansion of ``value`` (A000120)."""
    require_non_negative_int(value, "value")
    return value.bit_count()


def A000788(n: int) -> int:
    """Total number of ones in the binary expansions of ``0..n`` (naive sum)."""
    require_non_negative_int(n, "n")
    return sum(popcount(k) for k in range(n + 1))


def A000788_closed_form(n: int) -> int:
    """A000788 by per-bit counting, in ``O(log n)`` arithmetic operations.

    For bit position ``b`` (value ``2^b``), the numbers ``0..n`` contain
    ``(n + 1) // 2^(b+1)`` complete blocks of ``2^b`` ones plus a partial
    block of ``max(0, (n + 1) mod 2^(b+1) - 2^b)`` ones.
    """
    require_non_negative_int(n, "n")
    total = 0
    block = 2
    bit_value = 1
    while bit_value <= n:
        full_blocks, remainder = divmod(n + 1, block)
        total += full_blocks * bit_value + max(0, remainder - bit_value)
        bit_value = block
        block *= 2
    return total


def A000788_prefix(count: int) -> list[int]:
    """The first ``count`` terms ``A000788(0), ..., A000788(count-1)``."""
    require_non_negative_int(count, "count")
    terms: list[int] = []
    running = 0
    for k in range(count):
        running += popcount(k)
        terms.append(running)
    return terms
