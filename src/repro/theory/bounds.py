"""Closed-form bound predictions used in the experiment tables.

Each function evaluates one of the paper's asymptotic statements at a
concrete size ``n`` so the experiment harness can print "paper prediction"
next to "measured value".  Constants hidden inside Theta/Omega are of course
not specified by the paper; the experiments therefore compare *shapes*
(growth fits, ratios) rather than absolute values, and these functions
return the natural constant-free representative of each bound.
"""

from __future__ import annotations

import math

from repro.theory.linial import linial_lower_bound_radius
from repro.theory.recurrence import average_radius_upper_bound, worst_case_segment_sum
from repro.utils.math_functions import harmonic_number
from repro.utils.validation import require_positive_int


def largest_id_worst_case_bound(n: int) -> int:
    """Classic measure of largest-ID on the ``n``-cycle: ``floor(n/2)`` (linear).

    The vertex with the maximum identifier must see the entire cycle, whose
    eccentricity is ``floor(n/2)``.
    """
    require_positive_int(n, "n")
    return n // 2


def largest_id_average_upper_bound(n: int) -> float:
    """Average measure of largest-ID on the ``n``-cycle (worst case over IDs).

    Exactly ``(floor(n/2) + a(n-1)) / n`` where ``a`` is the paper's segment
    recurrence — a ``Theta(log n)`` quantity.
    """
    require_positive_int(n, "n")
    return average_radius_upper_bound(n)


def largest_id_sum_upper_bound(n: int) -> int:
    """Worst-case total radius of largest-ID on the ``n``-cycle."""
    require_positive_int(n, "n")
    return n // 2 + worst_case_segment_sum(n - 1)


def largest_id_random_ids_expected_average(n: int) -> float:
    """Expected average radius of largest-ID under uniformly random identifiers.

    For a uniformly random permutation, the distance from a vertex to the
    nearest larger identifier has expectation ``Theta(H_n)``; the constant-
    free representative used in the tables is the harmonic number ``H_n``,
    against which the Monte-Carlo estimates of experiment E6 are compared.
    """
    require_positive_int(n, "n")
    return harmonic_number(n)


def coloring_average_lower_bound(n: int) -> float:
    """Theorem 1's lower bound on the average radius of 3-colouring the ring.

    Constant-free representative: the Linial black-box threshold
    ``ceil((1/2) log*(n/2))`` that each slice centre must reach.
    """
    require_positive_int(n, "n")
    return float(linial_lower_bound_radius(n))


def coloring_classic_upper_bound(n: int) -> float:
    """The ``O(log* n)`` classic upper bound achieved by Cole–Vishkin.

    Constant-free representative: ``log*(n) + 3`` (bit-reduction iterations
    plus the three palette-reduction rounds).
    """
    require_positive_int(n, "n")
    from repro.algorithms.cole_vishkin import cv_rounds_needed

    return float(cv_rounds_needed(n)) if n >= 3 else 1.0


def exponential_gap(n: int) -> float:
    """Ratio between the classic and the average bound for largest-ID.

    The paper's headline: the average complexity can be exponentially
    smaller.  The ratio ``(n/2) / Theta(log n)`` grows like ``n / log n``.
    """
    require_positive_int(n, "n")
    average = largest_id_average_upper_bound(n)
    if average == 0:
        return math.inf
    return largest_id_worst_case_bound(n) / average
