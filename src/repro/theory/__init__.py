"""Theory toolkit.

Everything quantitative the paper states without running code lives here:
the iterated logarithm and Linial's lower-bound threshold, OEIS A000788 and
the segment recurrence of Section 2, empirical checkers for the minimality
lemmas (Lemmas 2 and 3), the slice-concatenation construction used in the
proof of Theorem 1, and closed-form bound predictions used by the
experiments to compare measurement against theory.
"""

from repro.theory.bounds import (
    coloring_average_lower_bound,
    largest_id_average_upper_bound,
    largest_id_worst_case_bound,
)
from repro.theory.linial import (
    linial_lower_bound_radius,
    neighborhood_graph,
    neighborhood_graph_chromatic_number,
)
from repro.theory.log_star import log_star, log_star_table, power_tower
from repro.theory.lower_bound import SliceConstruction, build_hard_assignment
from repro.theory.minimality import (
    lemma2_violations,
    lemma3_local_average,
    radii_between,
)
from repro.theory.oeis import A000788, A000788_closed_form, popcount
from repro.theory.recurrence import (
    average_radius_upper_bound,
    brute_force_segment_maximum,
    segment_radii,
    segment_radius_sum,
    worst_case_cycle_arrangement,
    worst_case_segment_arrangement,
    worst_case_segment_sum,
)

__all__ = [
    "A000788",
    "A000788_closed_form",
    "SliceConstruction",
    "average_radius_upper_bound",
    "brute_force_segment_maximum",
    "build_hard_assignment",
    "coloring_average_lower_bound",
    "largest_id_average_upper_bound",
    "largest_id_worst_case_bound",
    "lemma2_violations",
    "lemma3_local_average",
    "linial_lower_bound_radius",
    "log_star",
    "log_star_table",
    "neighborhood_graph",
    "neighborhood_graph_chromatic_number",
    "popcount",
    "power_tower",
    "radii_between",
    "segment_radii",
    "segment_radius_sum",
    "worst_case_cycle_arrangement",
    "worst_case_segment_arrangement",
    "worst_case_segment_sum",
]
