"""The slice-concatenation construction from the proof of Theorem 1.

The proof builds an identifier permutation ``pi`` on which *any* minimal
3-colouring algorithm has average radius ``Omega(log* n)``:

1.  find an identifier arrangement of the currently unused identifiers on a
    cycle for which some vertex needs a large radius (the Linial black box
    guarantees one exists as long as more than ``n/2`` identifiers remain);
2.  cut out the *slice* of identifiers in that vertex's ball and append it
    to ``pi`` — the vertex at the centre of the slice keeps exactly the same
    neighbourhood in ``pi``, hence the same radius;
3.  repeat until fewer than ``n/2`` identifiers remain, then append the rest
    in arbitrary order.

Because every slice centre retains a large radius and Lemma 3 spreads that
radius over its neighbours, the average over ``pi`` is ``Omega(log* n)``.

The executable version below mirrors this construction for a concrete
algorithm: the "large radius vertex" of step 1 is found by probing random
arrangements (exact existence is Linial's theorem; the search only needs to
find a witness), and the returned assignment can then be evaluated by the
experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.algorithm import BallAlgorithm
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.theory.linial import linial_lower_bound_radius
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class SliceConstruction:
    """Result of the slice-concatenation construction."""

    assignment: IdentifierAssignment
    slices: tuple[tuple[int, ...], ...]
    threshold: int
    achieved_center_radii: tuple[int, ...]

    @property
    def slice_count(self) -> int:
        """Number of slices extracted before fewer than n/2 identifiers remained."""
        return len(self.slices)


def _arrange_on_cycle(identifiers: Sequence[int], rng) -> list[int]:
    """A random arrangement of the given identifiers around a cycle."""
    arrangement = list(identifiers)
    rng.shuffle(arrangement)
    return arrangement


def _find_high_radius_slice(
    identifiers: Sequence[int],
    algorithm: BallAlgorithm,
    threshold: int,
    rng,
    attempts: int,
) -> tuple[tuple[int, ...], int]:
    """A slice of ``2*threshold + 1`` identifiers centred on a high-radius vertex.

    Tries random arrangements of ``identifiers`` on a cycle and returns the
    ball slice around the vertex with the largest observed radius; the
    search stops early once the threshold is met.  Returns the slice (in
    ring order) and the radius achieved by its centre.
    """
    pool = list(identifiers)
    if len(pool) < 2 * threshold + 1:
        raise ConfigurationError(
            f"cannot cut a radius-{threshold} slice out of {len(pool)} identifiers"
        )
    best_slice: tuple[int, ...] | None = None
    best_radius = -1
    for _ in range(attempts):
        arrangement = _arrange_on_cycle(pool, rng)
        graph = cycle_graph(len(arrangement))
        ids = IdentifierAssignment(arrangement)
        trace = run_ball_algorithm(graph, ids, algorithm)
        radii = trace.radii()
        center = max(radii, key=lambda position: radii[position])
        radius = radii[center]
        if radius > best_radius:
            best_radius = radius
            half = threshold
            length = len(arrangement)
            window = [
                arrangement[(center + offset) % length] for offset in range(-half, half + 1)
            ]
            best_slice = tuple(window)
        if best_radius >= threshold:
            break
    assert best_slice is not None  # attempts >= 1 and pool large enough
    return best_slice, best_radius


def build_hard_assignment(
    n: int,
    algorithm: BallAlgorithm,
    threshold: int | None = None,
    seed: SeedLike = None,
    attempts_per_slice: int = 8,
) -> SliceConstruction:
    """Build the Theorem 1 permutation ``pi`` for an ``n``-cycle.

    Parameters
    ----------
    n:
        Cycle length; identifiers are ``0..n-1``.
    algorithm:
        The 3-colouring (or 4-colouring) algorithm under attack.
    threshold:
        Target radius per slice; defaults to the Linial black-box value
        ``ceil((1/2) log*(n/2))``.
    seed, attempts_per_slice:
        Control the randomised witness search of step 1.
    """
    require_positive_int(n, "n")
    if n < 8:
        raise ConfigurationError("the slice construction needs a cycle of at least 8 nodes")
    rng = make_rng(seed)
    target = threshold if threshold is not None else linial_lower_bound_radius(n)
    require_positive_int(target, "threshold")
    remaining = list(range(n))
    prefix: list[int] = []
    slices: list[tuple[int, ...]] = []
    center_radii: list[int] = []
    slice_length = 2 * target + 1
    while len(remaining) > n // 2 and len(remaining) >= max(slice_length, 3):
        slice_ids, achieved = _find_high_radius_slice(
            remaining, algorithm, target, rng, attempts_per_slice
        )
        slices.append(slice_ids)
        center_radii.append(achieved)
        prefix.extend(slice_ids)
        used = set(slice_ids)
        remaining = [identifier for identifier in remaining if identifier not in used]
    # Remaining identifiers are appended in arbitrary (here: sorted) order.
    assignment = IdentifierAssignment(prefix + sorted(remaining))
    return SliceConstruction(
        assignment=assignment,
        slices=tuple(slices),
        threshold=target,
        achieved_center_radii=tuple(center_radii),
    )


def evaluate_hard_assignment(
    construction: SliceConstruction, algorithm: BallAlgorithm
) -> float:
    """Average radius of ``algorithm`` on the constructed assignment's cycle."""
    graph = cycle_graph(construction.assignment.n)
    trace = run_ball_algorithm(graph, construction.assignment, algorithm)
    return trace.average_radius
