"""The iterated logarithm and its inverse.

Linial's lower bound, and hence the paper's Theorem 1, are stated in terms
of ``log* n``, the number of times the logarithm must be applied to ``n``
before the value drops to at most 1.  The function grows so slowly that its
value is at most 5 for every input a simulation can ever touch, which is why
the experiments validate the lower bound through its *structure* (the slice
construction and the regularity lemmas) rather than by watching ``log*``
grow.
"""

from __future__ import annotations

from repro.utils.math_functions import log_star, power_tower

__all__ = ["log_star", "log_star_table", "power_tower"]


def log_star_table(max_exponent: int = 20) -> list[tuple[int, int]]:
    """Tabulate ``(n, log* n)`` for ``n = 2^k``, ``k = 0..max_exponent``.

    A convenience for experiment output: it makes visually explicit how flat
    the lower-bound threshold is over the range of sizes the benchmarks can
    reach.
    """
    if max_exponent < 0:
        raise ValueError(f"max_exponent must be non-negative, got {max_exponent}")
    return [(2**k, log_star(2**k)) for k in range(max_exponent + 1)]
