"""Empirical checkers for the regularity lemmas (Lemmas 2 and 3).

The proof of Theorem 1 works with *minimal* algorithms — algorithms whose
radius cannot be strictly decreased on any view without increasing it on
another — and establishes two regularity properties of their radius
distribution on cycles:

* **Lemma 2.**  For a minimal 4-colouring algorithm, the radii of the
  vertices lying between two vertices ``x`` and ``y`` that are ``k`` apart
  are at most ``max(r(x), r(y)) + k``.
* **Lemma 3.**  If a vertex uses radius ``r``, the average radius of the
  vertices within distance ``r/2`` of it is ``Omega(r)``.

The checkers below measure both properties on concrete executions.  They do
not (and cannot) *prove* minimality of an algorithm; they quantify how far a
given execution is from violating the lemmas, which is the empirical
counterpart the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TopologyError
from repro.model.graph import Graph
from repro.model.trace import ExecutionTrace
from repro.utils.validation import require_non_negative_int


def _cycle_order(graph: Graph) -> list[int]:
    """Positions of a cycle listed in ring order starting from position 0."""
    if not graph.is_cycle():
        raise TopologyError("the regularity lemmas are stated for cycles")
    order = [0]
    previous = None
    while len(order) < graph.n:
        current = order[-1]
        nxt = [u for u in graph.neighbors(current) if u != previous][0]
        order.append(nxt)
        previous = current
    return order


def positions_between(graph: Graph, x: int, y: int) -> list[int]:
    """Positions strictly between ``x`` and ``y`` along the shorter arc."""
    order = _cycle_order(graph)
    index_of = {position: index for index, position in enumerate(order)}
    ix, iy = index_of[x], index_of[y]
    n = graph.n
    forward = [(ix + step) % n for step in range(1, (iy - ix) % n)]
    backward = [(iy + step) % n for step in range(1, (ix - iy) % n)]
    arc = forward if len(forward) <= len(backward) else backward
    return [order[index] for index in arc]


def radii_between(trace: ExecutionTrace, graph: Graph, x: int, y: int) -> list[int]:
    """Radii of the vertices strictly between ``x`` and ``y`` (shorter arc)."""
    radii = trace.radii()
    return [radii[position] for position in positions_between(graph, x, y)]


@dataclass(frozen=True)
class Lemma2Violation:
    """One pair of anchors whose in-between radii exceed the Lemma 2 threshold."""

    x: int
    y: int
    separation: int
    threshold: int
    worst_radius: int


def lemma2_violations(
    trace: ExecutionTrace, graph: Graph, max_separation: int | None = None
) -> list[Lemma2Violation]:
    """All anchor pairs violating the Lemma 2 bound in this execution.

    For every pair of vertices ``x`` and ``y`` separated by ``k`` vertices
    (up to ``max_separation``), checks that every vertex between them has
    radius at most ``max(r(x), r(y)) + k``.  An empty result means the
    execution is consistent with the radius profile of a minimal algorithm.
    """
    order = _cycle_order(graph)
    radii = trace.radii()
    n = graph.n
    cap = max_separation if max_separation is not None else n - 2
    require_non_negative_int(cap, "max_separation")
    violations: list[Lemma2Violation] = []
    for start_index in range(n):
        for separation in range(1, min(cap, n - 2) + 1):
            x = order[start_index]
            y = order[(start_index + separation + 1) % n]
            between = [order[(start_index + offset) % n] for offset in range(1, separation + 1)]
            threshold = max(radii[x], radii[y]) + separation
            worst = max(radii[position] for position in between)
            if worst > threshold:
                violations.append(
                    Lemma2Violation(
                        x=x,
                        y=y,
                        separation=separation,
                        threshold=threshold,
                        worst_radius=worst,
                    )
                )
    return violations


@dataclass(frozen=True)
class Lemma3Report:
    """Local average of radii around a vertex, as in Lemma 3."""

    position: int
    radius: int
    window: int
    local_average: float

    @property
    def ratio(self) -> float:
        """``local_average / radius`` — Lemma 3 asserts this is bounded below."""
        if self.radius == 0:
            return 1.0
        return self.local_average / self.radius


def lemma3_local_average(trace: ExecutionTrace, graph: Graph, position: int) -> Lemma3Report:
    """Average radius of the vertices within distance ``r(position)/2``."""
    radii = trace.radii()
    radius = radii[position]
    window = radius // 2
    members = graph.ball_positions(position, window)
    local_average = sum(radii[u] for u in members) / len(members)
    return Lemma3Report(
        position=position, radius=radius, window=window, local_average=local_average
    )


def lemma3_reports(trace: ExecutionTrace, graph: Graph) -> list[Lemma3Report]:
    """Lemma 3 reports for every vertex (sorted by decreasing radius)."""
    reports = [lemma3_local_average(trace, graph, position) for position in graph.positions()]
    return sorted(reports, key=lambda report: report.radius, reverse=True)


def minimum_lemma3_ratio(trace: ExecutionTrace, graph: Graph) -> float:
    """The smallest Lemma 3 ratio over all vertices of an execution."""
    return min(report.ratio for report in lemma3_reports(trace, graph))
