"""Tree topologies: balanced trees, caterpillars and spiders.

Trees give graphs with very heterogeneous eccentricities, which is where the
gap between the average and the worst-case measures can be large even for
simple problems, mirroring the paper's motivation.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.utils.validation import require_non_negative_int, require_positive_int


def balanced_tree(branching: int, height: int) -> Graph:
    """Build the complete ``branching``-ary tree of the given ``height``.

    Height 0 is a single root.  Positions follow breadth-first order, with
    the root at position 0.
    """
    require_positive_int(branching, "branching")
    require_non_negative_int(height, "height")
    edges: list[tuple[int, int]] = []
    current_level = [0]
    next_position = 1
    for _ in range(height):
        next_level = []
        for parent in current_level:
            for _ in range(branching):
                edges.append((parent, next_position))
                next_level.append(next_position)
                next_position += 1
        current_level = next_level
    return Graph.from_edges(next_position, edges, name=f"tree-b{branching}-h{height}")


def caterpillar_tree(spine: int, legs_per_node: int) -> Graph:
    """Build a caterpillar: a path of ``spine`` nodes, each with pendant legs."""
    require_positive_int(spine, "spine")
    require_non_negative_int(legs_per_node, "legs_per_node")
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(spine - 1)]
    next_position = spine
    for spine_node in range(spine):
        for _ in range(legs_per_node):
            edges.append((spine_node, next_position))
            next_position += 1
    return Graph.from_edges(next_position, edges, name=f"caterpillar-{spine}x{legs_per_node}")


def spider_tree(legs: int, leg_length: int) -> Graph:
    """Build a spider: ``legs`` disjoint paths of length ``leg_length`` sharing one centre."""
    require_positive_int(legs, "legs")
    require_positive_int(leg_length, "leg_length")
    if legs < 2:
        raise ConfigurationError("a spider needs at least two legs")
    edges: list[tuple[int, int]] = []
    next_position = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            edges.append((previous, next_position))
            previous = next_position
            next_position += 1
    return Graph.from_edges(next_position, edges, name=f"spider-{legs}x{leg_length}")
