"""The cycle (ring) topology — the graph family studied by the paper.

Positions are laid out in cyclic order ``0, 1, ..., n-1, 0``.  The port
numbering is globally consistent: port 0 of position ``i`` leads to its
*successor* ``(i + 1) mod n`` and port 1 to its *predecessor*
``(i - 1) mod n``.  A consistent orientation is the standard assumption of
the Cole–Vishkin algorithm; algorithms that do not need it (largest-ID,
greedy colouring) simply ignore the port semantics.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.utils.validation import require_positive_int

#: Port number that leads to the successor on a cycle built by :func:`cycle_graph`.
SUCCESSOR_PORT = 0
#: Port number that leads to the predecessor on a cycle built by :func:`cycle_graph`.
PREDECESSOR_PORT = 1


def cycle_graph(n: int) -> Graph:
    """Build the ``n``-node cycle ``C_n`` (``n`` must be at least 3)."""
    require_positive_int(n, "n")
    if n < 3:
        raise ConfigurationError(f"a cycle needs at least 3 nodes, got n={n}")
    adjacency = [((i + 1) % n, (i - 1) % n) for i in range(n)]
    return Graph(adjacency, name=f"cycle-{n}")


def cycle_successor_ports(n: int) -> dict[int, int]:
    """Map every position of :func:`cycle_graph` to its successor port.

    Provided for symmetry with future topologies whose orientation is not
    globally uniform; for the builder above the successor port is always
    :data:`SUCCESSOR_PORT`.
    """
    require_positive_int(n, "n")
    return {position: SUCCESSOR_PORT for position in range(n)}
