"""The path topology.

The paper's analysis of the largest-ID algorithm decomposes the cycle into
*segments*, which are paths: once a node knows it is not the global maximum,
the remaining question ("how far until I see a larger identifier or an
endpoint?") lives on a path.  Having paths as first-class graphs lets the
tests exercise that decomposition directly.
"""

from __future__ import annotations

from repro.model.graph import Graph
from repro.utils.validation import require_positive_int


def path_graph(n: int) -> Graph:
    """Build the ``n``-node path ``P_n`` with positions in line order.

    Interior position ``i`` has port 0 towards ``i + 1`` and port 1 towards
    ``i - 1``; the endpoints have a single port 0 towards their unique
    neighbour.
    """
    require_positive_int(n, "n")
    if n == 1:
        return Graph([()], name="path-1")
    adjacency: list[tuple[int, ...]] = []
    for i in range(n):
        if i == 0:
            adjacency.append((1,))
        elif i == n - 1:
            adjacency.append((n - 2,))
        else:
            adjacency.append((i + 1, i - 1))
    return Graph(adjacency, name=f"path-{n}")
