"""Two-dimensional grid and torus topologies.

Grids are the simplest family beyond rings on which the paper's "further
work" question (does the average measure help on more general graphs?) can
be explored experimentally.
"""

from __future__ import annotations

from repro.model.graph import Graph
from repro.utils.validation import require_positive_int


def _index(row: int, column: int, columns: int) -> int:
    return row * columns + column


def grid_graph(rows: int, columns: int) -> Graph:
    """Build the ``rows x columns`` grid with 4-neighbourhood adjacency."""
    require_positive_int(rows, "rows")
    require_positive_int(columns, "columns")
    edges: list[tuple[int, int]] = []
    for row in range(rows):
        for column in range(columns):
            here = _index(row, column, columns)
            if column + 1 < columns:
                edges.append((here, _index(row, column + 1, columns)))
            if row + 1 < rows:
                edges.append((here, _index(row + 1, column, columns)))
    return Graph.from_edges(rows * columns, edges, name=f"grid-{rows}x{columns}")


def torus_graph(rows: int, columns: int) -> Graph:
    """Build the ``rows x columns`` torus (grid with wrap-around edges).

    Both dimensions must be at least 3 so the graph stays simple (no
    parallel edges from wrapping a dimension of length 2).
    """
    require_positive_int(rows, "rows")
    require_positive_int(columns, "columns")
    if rows < 3 or columns < 3:
        raise ValueError("torus dimensions must both be at least 3")
    edges: set[tuple[int, int]] = set()
    for row in range(rows):
        for column in range(columns):
            here = _index(row, column, columns)
            right = _index(row, (column + 1) % columns, columns)
            down = _index((row + 1) % rows, column, columns)
            edges.add((min(here, right), max(here, right)))
            edges.add((min(here, down), max(here, down)))
    return Graph.from_edges(rows * columns, sorted(edges), name=f"torus-{rows}x{columns}")
