"""Topology builders.

Every builder returns a :class:`repro.model.graph.Graph` with a deterministic
port numbering.  The cycle (ring) is the topology studied by the paper; the
other families exist so that the complexity measures and the generic
algorithms can be exercised beyond the ring (the paper's "further work"
explicitly asks about more general graphs).
"""

from repro.topology.complete import complete_graph, star_graph
from repro.topology.cycle import cycle_graph, cycle_successor_ports
from repro.topology.grid import grid_graph, torus_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import (
    gnp_random_graph,
    random_regular_graph,
    random_tree,
)
from repro.topology.stream import (
    DEFAULT_STREAM_CHUNK,
    STREAM_DETERMINISTIC,
    STREAM_TOPOLOGIES,
    CSRChunk,
    CSRTopology,
    build_csr,
    stream_adjacency,
)
from repro.topology.tree import balanced_tree, caterpillar_tree, spider_tree

__all__ = [
    "CSRChunk",
    "CSRTopology",
    "DEFAULT_STREAM_CHUNK",
    "STREAM_DETERMINISTIC",
    "STREAM_TOPOLOGIES",
    "balanced_tree",
    "build_csr",
    "caterpillar_tree",
    "complete_graph",
    "cycle_graph",
    "cycle_successor_ports",
    "gnp_random_graph",
    "grid_graph",
    "path_graph",
    "random_regular_graph",
    "random_tree",
    "spider_tree",
    "star_graph",
    "stream_adjacency",
    "torus_graph",
]
