"""Complete and star graphs.

These dense/centralised extremes are useful sanity checks for the measures:
on the complete graph every reasonable algorithm finishes with radius 1, so
the average and the worst-case measures coincide; on a star the centre and
the leaves can behave very differently.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.utils.validation import require_positive_int


def complete_graph(n: int) -> Graph:
    """Build ``K_n``: every pair of distinct positions is adjacent."""
    require_positive_int(n, "n")
    adjacency = [tuple(u for u in range(n) if u != v) for v in range(n)]
    return Graph(adjacency, name=f"complete-{n}")


def star_graph(leaves: int) -> Graph:
    """Build a star with one centre (position 0) and ``leaves`` leaves."""
    require_positive_int(leaves, "leaves")
    if leaves < 1:
        raise ConfigurationError("a star needs at least one leaf")
    adjacency: list[tuple[int, ...]] = [tuple(range(1, leaves + 1))]
    adjacency.extend((0,) for _ in range(leaves))
    return Graph(adjacency, name=f"star-{leaves}")
