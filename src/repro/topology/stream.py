"""Streamed CSR topology construction for the million-node scale path.

The object builders in this package (:func:`~repro.topology.cycle.cycle_graph`
and friends) materialise a :class:`~repro.model.graph.Graph` — hundreds of
bytes of Python objects per node — which caps them at ~10^4 nodes.  This
module builds the same families as **flat CSR adjacency** (``indptr`` /
``indices`` in :class:`array.array` storage, 8 bytes per entry), emitted in
node-range chunks, so a 10^6-node instance costs tens of megabytes instead
of gigabytes and never allocates a per-node object.

Three families stream (:data:`STREAM_TOPOLOGIES`):

* ``cycle`` — the paper's ring, bit-compatible with
  :func:`~repro.topology.cycle.cycle_graph` (successor first, predecessor
  second), generated chunk by chunk with no global state at all;
* ``random-tree`` — the uniform random-attachment tree: node ``i`` attaches
  to a uniform parent in ``[0, i)``;
* ``gnp`` — a sparse connected Erdős–Rényi-style family: a random-attachment
  backbone tree plus ``n`` deduplicated uniform extra edges (average degree
  ≈ 4).  The backbone guarantees connectivity without a giant-component
  extraction, which is what makes the family streamable; it is therefore a
  *scale sibling* of :func:`~repro.topology.random_graphs.gnp_random_graph`,
  not the identical distribution.

Determinism: random draws are seeded per fixed-size block of
:data:`SEED_BLOCK` nodes via :func:`~repro.engine.batch.derive_task_seed`,
so the emitted adjacency is a pure function of ``(topology, n, seed)`` —
independent of the caller's emission chunk size, the worker count, and the
process that rebuilds it (sharded kernel workers reconstruct the CSR from
the spec instead of unpickling megabytes of arrays).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator

from repro.engine.batch import derive_task_seed
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.obs.spans import span as _obs_span
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive_int

#: The streamable families (names shared with the object builders where the
#: structure matches; see the module docstring for the ``gnp`` caveat).
STREAM_TOPOLOGIES = ("cycle", "random-tree", "gnp")

#: Stream topologies whose structure ignores the seed entirely.
STREAM_DETERMINISTIC = frozenset({"cycle"})

#: Nodes per emitted adjacency chunk (the caller may override; emission
#: granularity never changes the adjacency).
DEFAULT_STREAM_CHUNK = 65536

#: Nodes (or extra-edge draws) per random block: every block reseeds from
#: ``derive_task_seed(seed, "topology.stream", ...)``, making the draws
#: independent of how the stream is chunked or sharded.
SEED_BLOCK = 4096


@dataclass(frozen=True)
class CSRChunk:
    """One node-range slice of a streamed adjacency.

    ``indptr`` is chunk-local (``indptr[0] == 0``; ``len == stop - start + 1``):
    the neighbours of global node ``start + i`` are
    ``indices[indptr[i]:indptr[i + 1]]``.
    """

    start: int
    stop: int
    indptr: array
    indices: array


class CSRTopology:
    """A topology as flat CSR arrays — the large-n counterpart of ``Graph``.

    Neighbours of node ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, in a
    deterministic per-family order (for ``cycle``: successor then
    predecessor, matching the object builder's ports).  Instances are cheap
    to hold (two ``array('q')`` buffers) and carry their own build spec
    ``(topology, n, seed)``, so a worker process can rebuild an identical
    copy from three scalars instead of receiving megabytes over a pipe.
    """

    __slots__ = ("topology", "n", "seed", "indptr", "indices")

    def __init__(
        self, topology: str, n: int, seed: int, indptr: array, indices: array
    ) -> None:
        self.topology = topology
        self.n = n
        self.seed = seed
        self.indptr = indptr
        self.indices = indices

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    @property
    def name(self) -> str:
        return f"{self.topology}-stream-{self.n}"

    @property
    def spec(self) -> tuple[str, int, int]:
        """The picklable rebuild key: ``build_csr(*spec)`` reproduces this."""
        return (self.topology, self.n, self.seed)

    def degree(self, v: int) -> int:
        return self.indptr[v + 1] - self.indptr[v]

    def neighbors(self, v: int) -> array:
        """The neighbours of ``v`` (a cheap array slice, CSR order)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def to_graph(self) -> Graph:
        """Materialise the object :class:`Graph` (small ``n`` only).

        Ports follow CSR neighbour order; for ``cycle`` the result is
        structurally identical to :func:`~repro.topology.cycle.cycle_graph`.
        This is the parity bridge the scale tests use to compare the sharded
        executor against the compiled-instance kernel.
        """
        adjacency = [
            tuple(self.indices[self.indptr[v] : self.indptr[v + 1]])
            for v in range(self.n)
        ]
        return Graph(adjacency, name=self.name)

    def describe(self) -> dict:
        """JSON-friendly identity (result rows, benchmark artifacts)."""
        return {
            "topology": self.topology,
            "n": self.n,
            "m": self.m,
            "seed": self.seed,
            "bytes": (len(self.indptr) + len(self.indices)) * self.indptr.itemsize,
        }


def _require_stream_topology(topology: str) -> None:
    if topology not in STREAM_TOPOLOGIES:
        raise ConfigurationError(
            f"unknown stream topology {topology!r}; "
            f"known: {', '.join(STREAM_TOPOLOGIES)}"
        )


def _block_rng(seed: int, topology: str, n: int, purpose: str, block: int):
    """The rng of one fixed-size random block (chunking-independent)."""
    return make_rng(derive_task_seed(seed, "topology.stream", topology, n, purpose, block))


def _tree_parents(n: int, seed: int, topology: str, purpose: str = "parents") -> array:
    """Random-attachment parents: ``parents[i]`` uniform in ``[0, i)``.

    Drawn in :data:`SEED_BLOCK`-node blocks, each under its own derived
    seed, so the tree is a pure function of ``(topology, n, seed)``.
    """
    parents = array("q", bytes(8 * n))  # parents[0] unused (the root)
    for block_start in range(0, n, SEED_BLOCK):
        rng = _block_rng(seed, topology, n, purpose, block_start // SEED_BLOCK)
        for i in range(max(1, block_start), min(n, block_start + SEED_BLOCK)):
            parents[i] = rng.randrange(i)
    return parents


def _csr_from_edges(n: int, encoded_edges: list[int]) -> tuple[array, array]:
    """CSR arrays from sorted, unique ``min * n + max`` encoded edges."""
    degrees = array("q", bytes(8 * n))
    for code in encoded_edges:
        a, b = divmod(code, n)
        degrees[a] += 1
        degrees[b] += 1
    indptr = array("q", bytes(8 * (n + 1)))
    running = 0
    for v in range(n):
        indptr[v] = running
        running += degrees[v]
    indptr[n] = running
    cursor = array("q", indptr[:n])
    indices = array("q", bytes(8 * running))
    for code in encoded_edges:
        a, b = divmod(code, n)
        indices[cursor[a]] = b
        cursor[a] += 1
        indices[cursor[b]] = a
        cursor[b] += 1
    return indptr, indices


def _tree_csr(n: int, seed: int, topology: str = "random-tree") -> tuple[array, array]:
    """CSR of the random-attachment tree: parent first, children ascending."""
    parents = _tree_parents(n, seed, topology)
    degrees = array("q", bytes(8 * n))
    for i in range(1, n):
        degrees[i] += 1
        degrees[parents[i]] += 1
    indptr = array("q", bytes(8 * (n + 1)))
    running = 0
    for v in range(n):
        indptr[v] = running
        running += degrees[v]
    indptr[n] = running
    indices = array("q", bytes(8 * running))
    # Non-root rows reserve slot 0 for the parent; children then append to
    # their parent's row in increasing order.
    cursor = array("q", bytes(8 * n))
    for v in range(n):
        cursor[v] = indptr[v] + (1 if v != 0 else 0)
    for i in range(1, n):
        p = parents[i]
        indices[indptr[i]] = p
        indices[cursor[p]] = i
        cursor[p] += 1
    return indptr, indices


def _gnp_csr(n: int, seed: int) -> tuple[array, array]:
    """Backbone tree + ``n`` deduplicated uniform extra edges (see module doc)."""
    parents = _tree_parents(n, seed, "gnp", purpose="backbone")
    encoded = []
    for i in range(1, n):
        p = parents[i]
        encoded.append(p * n + i if p < i else i * n + p)
    extras = n
    for block_start in range(0, extras, SEED_BLOCK):
        rng = _block_rng(seed, "gnp", n, "extras", block_start // SEED_BLOCK)
        for _ in range(min(extras, block_start + SEED_BLOCK) - block_start):
            a = rng.randrange(n)
            b = rng.randrange(n)
            if a == b:
                continue
            encoded.append(a * n + b if a < b else b * n + a)
    encoded.sort()
    unique = []
    previous = -1
    for code in encoded:
        if code != previous:
            unique.append(code)
            previous = code
    return _csr_from_edges(n, unique)


def stream_adjacency(
    topology: str,
    n: int,
    seed: int = 0,
    chunk_nodes: int = DEFAULT_STREAM_CHUNK,
) -> Iterator[CSRChunk]:
    """Yield the adjacency of ``(topology, n, seed)`` in node-range chunks.

    The concatenation of the chunks is identical for every ``chunk_nodes``
    (the property wall asserts this): chunking only controls emission
    granularity, never the structure.  The ``cycle`` family is generated
    chunk by chunk with O(chunk) live memory; the random families hold
    their flat edge arrays (O(n + m) compact ints — the memory bound that
    makes 10^6 nodes feasible) and emit slices.
    """
    _require_stream_topology(topology)
    require_positive_int(n, "n")
    require_positive_int(chunk_nodes, "chunk_nodes")
    if topology == "cycle" and n < 3:
        raise ConfigurationError(f"a cycle needs at least 3 nodes, got n={n}")
    if topology == "cycle":
        for start in range(0, n, chunk_nodes):
            stop = min(n, start + chunk_nodes)
            indptr = array("q", range(0, 2 * (stop - start) + 1, 2))
            indices = array("q", bytes(16 * (stop - start)))
            for offset, v in enumerate(range(start, stop)):
                indices[2 * offset] = (v + 1) % n
                indices[2 * offset + 1] = (v - 1) % n
            yield CSRChunk(start, stop, indptr, indices)
        return
    if topology == "random-tree":
        indptr, indices = _tree_csr(n, seed)
    else:  # gnp
        indptr, indices = _gnp_csr(n, seed)
    for start in range(0, n, chunk_nodes):
        stop = min(n, start + chunk_nodes)
        base = indptr[start]
        local_indptr = array("q", (indptr[v] - base for v in range(start, stop + 1)))
        yield CSRChunk(start, stop, local_indptr, indices[base : indptr[stop]])


def build_csr(
    topology: str,
    n: int,
    seed: int = 0,
    chunk_nodes: int = DEFAULT_STREAM_CHUNK,
) -> CSRTopology:
    """Assemble the full :class:`CSRTopology` from the chunk stream."""
    indptr = array("q", [0])
    indices = array("q")
    chunks = 0
    with _obs_span("topology.stream", topology=topology, n=n):
        for chunk in stream_adjacency(topology, n, seed=seed, chunk_nodes=chunk_nodes):
            base = indptr[-1]
            indptr.extend(base + offset for offset in chunk.indptr[1:])
            indices.extend(chunk.indices)
            chunks += 1
    normalized = 0 if topology in STREAM_DETERMINISTIC else seed
    return CSRTopology(topology, n, normalized, indptr, indices)
