"""Random graph families, built on top of :mod:`networkx` generators.

All builders are deterministic given a seed, return connected graphs, and
relabel nodes to ``0..n-1`` so the resulting :class:`repro.model.graph.Graph`
has the canonical position set.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive_int, require_probability


def _largest_connected_component(graph: nx.Graph) -> nx.Graph:
    """Return the largest connected component relabelled to 0..k-1."""
    if graph.number_of_nodes() == 0:
        return graph
    component = max(nx.connected_components(graph), key=len)
    subgraph = graph.subgraph(component).copy()
    return nx.convert_node_labels_to_integers(subgraph, ordering="sorted")


def gnp_random_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """Erdős–Rényi ``G(n, p)``, restricted to its largest connected component.

    The returned graph may therefore have fewer than ``n`` nodes when ``p``
    is below the connectivity threshold; experiments that need an exact size
    should pick ``p`` comfortably above ``ln(n)/n``.
    """
    require_positive_int(n, "n")
    require_probability(p, "p")
    rng = make_rng(seed)
    generated = nx.gnp_random_graph(n, p, seed=rng.getrandbits(32))
    component = _largest_connected_component(generated)
    if component.number_of_nodes() == 0:
        raise ConfigurationError("random graph came out empty; increase n or p")
    return Graph.from_networkx(component, name=f"gnp-{n}-{p}")


def random_regular_graph(degree: int, n: int, seed: SeedLike = None) -> Graph:
    """A uniformly random ``degree``-regular simple graph on ``n`` nodes."""
    require_positive_int(degree, "degree")
    require_positive_int(n, "n")
    if degree >= n or (degree * n) % 2 != 0:
        raise ConfigurationError(
            f"no {degree}-regular simple graph exists on {n} nodes"
        )
    rng = make_rng(seed)
    generated = nx.random_regular_graph(degree, n, seed=rng.getrandbits(32))
    component = _largest_connected_component(generated)
    return Graph.from_networkx(component, name=f"regular-{degree}-{n}")


def random_tree(n: int, seed: SeedLike = None) -> Graph:
    """A uniformly random labelled tree on ``n`` nodes (Prüfer sampling)."""
    require_positive_int(n, "n")
    rng = make_rng(seed)
    if n <= 2:
        generated = nx.path_graph(n)
    else:
        generated = nx.random_labeled_tree(n, seed=rng.getrandbits(32))
    return Graph.from_networkx(generated, name=f"random-tree-{n}")
