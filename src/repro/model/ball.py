"""Ball views: what a node sees at a given radius.

The paper describes the LOCAL model as "every node gathers all the
information in a ball around itself and outputs a function of this ball".
:class:`BallView` is that ball: the subgraph induced by the positions within
distance ``r`` of the centre, where nodes are exposed only through their
identifiers (never through global positions), together with each node's
degree *in the full graph*.

Including the full-graph degree of every ball member is the standard
convention that lets a node detect when its ball already covers the whole
connected graph (every member's degree inside the ball equals its true
degree), which is exactly the stopping criterion the paper's largest-ID
algorithm uses ("until it has seen all the cycle") in the setting where ``n``
is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.errors import TopologyError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment


@dataclass(frozen=True, eq=False)
class BallView:
    """The radius-``radius`` view of a node, keyed by identifiers.

    Attributes
    ----------
    center_id:
        Identifier of the node at the centre of the ball.
    radius:
        Radius at which the ball was collected.
    distance_by_id:
        Identifier -> distance from the centre (``0`` for the centre itself).
    degree_by_id:
        Identifier -> degree of that node in the *full* graph.
    edges:
        Frozenset of unordered identifier pairs present inside the ball.
    port_by_pair:
        ``(from_id, to_id) -> port`` for every edge of the ball, in both
        directions.  Ports are part of a node's view in the LOCAL model and
        are required to simulate round-based (message-passing) algorithms
        from a ball (:mod:`repro.algorithms.full_gather`).
    """

    center_id: int
    radius: int
    distance_by_id: Mapping[int, int]
    degree_by_id: Mapping[int, int]
    edges: frozenset[frozenset[int]]
    port_by_pair: Mapping[tuple[int, int], int]
    #: Optional builder hint for :meth:`covers_whole_graph`: a definite
    #: boolean when the builder already knows whether the ball is saturated
    #: (the engine compares the member count against the reachable-component
    #: size, which is equivalent to the degree criterion).  ``None`` means
    #: "unknown" and the answer is derived from the degrees.  Derived data:
    #: excluded from equality, hashing and canonical signatures.
    full_graph: Optional[bool] = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes visible in the ball."""
        return len(self.distance_by_id)

    def ids(self) -> frozenset[int]:
        """Identifiers of all visible nodes."""
        return frozenset(self.distance_by_id)

    def distance(self, identifier: int) -> int:
        """Distance from the centre to ``identifier`` (must be in the ball)."""
        return self.distance_by_id[identifier]

    def degree(self, identifier: int) -> int:
        """Full-graph degree of ``identifier`` (must be in the ball)."""
        return self.degree_by_id[identifier]

    def degree_inside(self, identifier: int) -> int:
        """Degree of ``identifier`` counting only edges inside the ball."""
        return sum(1 for edge in self.edges if identifier in edge)

    def neighbors_in_ball(self, identifier: int) -> frozenset[int]:
        """Identifiers adjacent to ``identifier`` inside the ball."""
        result = set()
        for edge in self.edges:
            if identifier in edge:
                (other,) = edge - {identifier}
                result.add(other)
        return frozenset(result)

    def port(self, from_id: int, to_id: int) -> int:
        """Port through which ``from_id`` reaches its ball neighbour ``to_id``."""
        return self.port_by_pair[(from_id, to_id)]

    def neighbor_by_port(self, identifier: int, port: int) -> Optional[int]:
        """Ball member reached from ``identifier`` through ``port``, if visible."""
        for (source, target), p in self.port_by_pair.items():
            if source == identifier and p == port:
                return target
        return None

    def max_id(self) -> int:
        """Largest identifier visible in the ball."""
        return max(self.distance_by_id)

    def contains_id_larger_than(self, identifier: int) -> bool:
        """Whether some visible node carries an identifier above ``identifier``."""
        return self.max_id() > identifier

    def covers_whole_graph(self) -> bool:
        """Whether the ball provably contains the entire connected graph.

        True exactly when every visible node's full-graph degree equals its
        degree inside the ball, i.e. no visible node has an edge leading
        outside the ball.
        """
        if self.full_graph is not None:
            return self.full_graph
        inside_degree: dict[int, int] = {}
        for edge in self.edges:
            a, b = tuple(edge)
            inside_degree[a] = inside_degree.get(a, 0) + 1
            inside_degree[b] = inside_degree.get(b, 0) + 1
        return all(
            inside_degree.get(identifier, 0) == degree
            for identifier, degree in self.degree_by_id.items()
        )

    # ------------------------------------------------------------------
    # path/cycle helpers (used by the ring algorithms)
    # ------------------------------------------------------------------
    def as_path_sequence(self) -> Optional[tuple[int, ...]]:
        """If the ball induces a simple path, return its identifiers in order.

        Returns ``None`` when the induced subgraph is not a path (for
        example, when the ball has wrapped all the way around a cycle, or on
        non-ring topologies).  The centre sits somewhere in the returned
        sequence; callers can locate it with ``index(center_id)``.
        """
        if self.size == 1:
            return (self.center_id,)
        inside_degree = {identifier: self.degree_inside(identifier) for identifier in self.ids()}
        endpoints = [identifier for identifier, d in inside_degree.items() if d == 1]
        if len(endpoints) != 2 or any(d > 2 for d in inside_degree.values()):
            return None
        # Walk from one endpoint to the other.
        sequence = [min(endpoints)]
        previous = None
        while True:
            current = sequence[-1]
            next_candidates = [
                u for u in self.neighbors_in_ball(current) if u != previous
            ]
            if not next_candidates:
                break
            previous = current
            sequence.append(next_candidates[0])
        if len(sequence) != self.size:
            return None
        return tuple(sequence)

    def as_cycle_sequence(self) -> Optional[tuple[int, ...]]:
        """If the ball induces a single cycle, return its identifiers in order."""
        if self.size < 3:
            return None
        if any(self.degree_inside(identifier) != 2 for identifier in self.ids()):
            return None
        start = self.center_id
        sequence = [start]
        previous = None
        while True:
            current = sequence[-1]
            candidates = [u for u in self.neighbors_in_ball(current) if u != previous]
            if not candidates:
                return None
            nxt = candidates[0]
            if nxt == start:
                break
            previous = current
            sequence.append(nxt)
            if len(sequence) > self.size:
                return None
        if len(sequence) != self.size:
            return None
        return tuple(sequence)

    # ------------------------------------------------------------------
    # canonical form
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """A hashable canonical encoding of the view.

        Two balls with the same canonical key are indistinguishable to a
        deterministic LOCAL algorithm, so an algorithm *must* behave
        identically on them.  Used by the minimality and lower-bound
        machinery in :mod:`repro.theory`.
        """
        return ball_signature(
            self.center_id,
            self.radius,
            self.distance_by_id,
            self.degree_by_id,
            self.edges,
            self.port_by_pair,
            relabel_ids=False,
        )

    def signature(self, relabel_ids: bool = True) -> tuple:
        """A hashable canonical signature of the view.

        With ``relabel_ids=True`` (the default) identifiers are replaced by
        their rank within the ball (id-order normalisation), so two balls
        that differ only by an order-preserving renaming of identifiers get
        the same signature.  This is the key the engine's
        :class:`~repro.engine.cache.DecisionCache` uses for algorithms that
        declare themselves ``order_invariant``, and it is also handy for
        deduplicating structurally identical balls in tests.

        With ``relabel_ids=False`` the signature keeps the actual
        identifiers and coincides with :meth:`canonical_key`.
        """
        return ball_signature(
            self.center_id,
            self.radius,
            self.distance_by_id,
            self.degree_by_id,
            self.edges,
            self.port_by_pair,
            relabel_ids=relabel_ids,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BallView):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        cached = getattr(self, "_cached_hash", None)
        if cached is None:
            cached = hash(self.canonical_key())
            object.__setattr__(self, "_cached_hash", cached)
        return cached


def ball_signature(
    center_id: int,
    radius: int,
    distance_by_id: Mapping[int, int],
    degree_by_id: Mapping[int, int],
    edges: Iterable[frozenset[int]],
    port_by_pair: Mapping[tuple[int, int], int],
    relabel_ids: bool = True,
) -> tuple:
    """Canonical signature of a ball given as its raw parts.

    Shared by :meth:`BallView.signature` and the engine's incremental
    frontier states, which compute signatures without materialising a
    :class:`BallView` first.  Two balls with the same non-relabeled signature
    have identical contents; two balls with the same relabeled signature are
    related by an order-preserving renaming of identifiers, which a
    deterministic *order-invariant* algorithm cannot distinguish.
    """
    if relabel_ids:
        ordered = sorted(distance_by_id)
        rank = {identifier: index for index, identifier in enumerate(ordered)}
        nodes = tuple(
            (distance_by_id[identifier], degree_by_id[identifier]) for identifier in ordered
        )
        edge_keys = []
        for edge in edges:
            a, b = tuple(edge)
            ra, rb = rank[a], rank[b]
            edge_keys.append((ra, rb) if ra < rb else (rb, ra))
        ports = tuple(
            sorted((rank[a], rank[b], port) for (a, b), port in port_by_pair.items())
        )
        return (rank[center_id], radius, nodes, tuple(sorted(edge_keys)), ports)
    nodes = tuple(
        sorted(
            (identifier, distance_by_id[identifier], degree_by_id[identifier])
            for identifier in distance_by_id
        )
    )
    edges_key = tuple(sorted(tuple(sorted(edge)) for edge in edges))
    ports = tuple(sorted(port_by_pair.items()))
    return (center_id, radius, nodes, edges_key, ports)


def extract_ball(
    graph: Graph, ids: IdentifierAssignment, position: int, radius: int
) -> BallView:
    """Collect the :class:`BallView` of ``position`` at the given ``radius``."""
    if ids.n != graph.n:
        raise TopologyError(
            f"identifier assignment covers {ids.n} positions but graph has {graph.n}"
        )
    if not 0 <= position < graph.n:
        raise TopologyError(f"position {position} outside 0..{graph.n - 1}")
    members = graph.ball_positions(position, radius)
    distance_by_id = {ids[u]: d for u, d in members.items()}
    degree_by_id = {ids[u]: graph.degree(u) for u in members}
    ball_edges = [
        (u, v)
        for u in members
        for v in graph.neighbors(u)
        if u < v and v in members
    ]
    edges = frozenset(frozenset((ids[u], ids[v])) for u, v in ball_edges)
    port_by_pair: dict[tuple[int, int], int] = {}
    for u, v in ball_edges:
        port_by_pair[(ids[u], ids[v])] = graph.port_to(u, v)
        port_by_pair[(ids[v], ids[u])] = graph.port_to(v, u)
    return BallView(
        center_id=ids[position],
        radius=radius,
        distance_by_id=distance_by_id,
        degree_by_id=degree_by_id,
        edges=edges,
        port_by_pair=port_by_pair,
    )
