"""Synchronous round-based simulator (the classic view of the LOCAL model).

Each round, every node sends one (unbounded) message through each of its
ports, receives the messages sent to it, and updates its state.  A node may
*commit* to an output at any round; following the paper's setting, a
committed node does not halt — it keeps participating in later rounds so
that information can still flow through it.

The number of the round at which a node commits is exactly the "radius" used
by the complexity measures: after ``r`` communication rounds a node's state
is a function of its radius-``r`` ball, and conversely.
:mod:`repro.algorithms.full_gather` exploits this equivalence to compile any
ball-based algorithm into a round-based one.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping, Optional

from repro.errors import AlgorithmError, TopologyError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.node import NodeState
from repro.model.trace import ExecutionTrace, NodeRecord


class RoundAlgorithm(abc.ABC):
    """A synchronous message-passing algorithm.

    Subclasses implement three hooks.  ``initialize`` builds the node's
    private memory from the only facts available before communication (its
    identifier and degree).  ``send`` produces the payloads for the current
    round, keyed by port.  ``receive`` consumes the inbox and returns the new
    memory together with the node's output (or ``None`` to stay undecided).

    The simulator also consults :meth:`decide_initially` before any
    communication, so algorithms whose nodes can answer with radius 0 are
    measured correctly.
    """

    #: Human-readable name used in experiment tables.
    name: str = "round-algorithm"

    @abc.abstractmethod
    def initialize(self, identifier: int, degree: int) -> Any:
        """Return the initial private memory of a node."""

    def decide_initially(self, memory: Any) -> Optional[Any]:
        """Output decided before any communication (radius 0), or ``None``."""
        return None

    def supports_graph(self, graph: Any) -> bool:
        """Whether the algorithm's structural assumptions hold on ``graph``.

        Mirrors :meth:`repro.core.algorithm.BallAlgorithm.supports_graph`:
        the default accepts everything, and topology-restricted algorithms
        (e.g. ring-only ones) override it so simulators — including the
        :class:`~repro.algorithms.full_gather.BallSimulationOfRounds`
        compiler, which forwards this check — can fail fast instead of
        raising mid-run.
        """
        return True

    def compile_ball_kernel_rule(self, instance: Any) -> Optional[Any]:
        """A vectorised batch rule for the *ball simulation* of this algorithm.

        The round-based counterpart of
        :meth:`repro.core.algorithm.BallAlgorithm.compile_kernel_rule`:
        ``instance`` is the :class:`~repro.kernel.compile.CompiledInstance`
        being built for
        :class:`~repro.algorithms.full_gather.BallSimulationOfRounds`
        wrapping this algorithm, which forwards the call here.  Algorithms
        whose commit round has an array-friendly description (Cole–Vishkin's
        fixed ``log* n + 3`` schedule, say) return a
        :class:`~repro.kernel.rules.KernelRule`; the default ``None`` keeps
        the decide-backed fallback.
        """
        return None

    @abc.abstractmethod
    def send(self, memory: Any, round_number: int) -> Mapping[int, Any]:
        """Payloads to emit this round, keyed by port number."""

    @abc.abstractmethod
    def receive(
        self, memory: Any, inbox: Mapping[int, Any], round_number: int
    ) -> tuple[Any, Optional[Any]]:
        """Consume the inbox; return ``(new_memory, output_or_None)``."""


class SynchronousExecution:
    """Drives a :class:`RoundAlgorithm` on a graph with identifiers."""

    def __init__(
        self,
        graph: Graph,
        ids: IdentifierAssignment,
        algorithm: RoundAlgorithm,
        max_rounds: Optional[int] = None,
    ) -> None:
        if ids.n != graph.n:
            raise TopologyError(
                f"identifier assignment covers {ids.n} positions but graph has {graph.n}"
            )
        self.graph = graph
        self.ids = ids
        self.algorithm = algorithm
        # Any correct LOCAL algorithm outputs once it has seen the whole
        # graph, i.e. within diameter(G) rounds; the default cap leaves
        # generous slack and exists only to turn non-terminating algorithm
        # bugs into clear errors.
        self.max_rounds = max_rounds if max_rounds is not None else 2 * graph.n + 2
        self.states: dict[int, NodeState] = {}
        self.current_round = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _initialize_states(self) -> None:
        self.states = {}
        for position in self.graph.positions():
            identifier = self.ids[position]
            degree = self.graph.degree(position)
            memory = self.algorithm.initialize(identifier, degree)
            state = NodeState(identifier=identifier, degree=degree, memory=memory)
            initial_output = self.algorithm.decide_initially(memory)
            if initial_output is not None:
                state.commit(initial_output, round_number=0)
            self.states[position] = state

    def _run_one_round(self) -> None:
        self.current_round += 1
        outboxes: dict[int, Mapping[int, Any]] = {}
        for position, state in self.states.items():
            outboxes[position] = dict(self.algorithm.send(state.memory, self.current_round))
            for port in outboxes[position]:
                if not 0 <= port < self.graph.degree(position):
                    raise AlgorithmError(
                        f"node {state.identifier} sent through invalid port {port}"
                    )
        inboxes: dict[int, dict[int, Any]] = {position: {} for position in self.states}
        for sender, outbox in outboxes.items():
            for port, payload in outbox.items():
                receiver = self.graph.neighbors(sender)[port]
                receiver_port = self.graph.port_to(receiver, sender)
                inboxes[receiver][receiver_port] = payload
        for position, state in self.states.items():
            new_memory, output = self.algorithm.receive(
                state.memory, inboxes[position], self.current_round
            )
            state.memory = new_memory
            if output is not None and not state.has_output:
                state.commit(output, round_number=self.current_round)

    def run(self) -> ExecutionTrace:
        """Run until every node has committed; return the execution trace."""
        self._initialize_states()
        self.current_round = 0
        while any(not state.has_output for state in self.states.values()):
            if self.current_round >= self.max_rounds:
                undecided = [
                    state.identifier
                    for state in self.states.values()
                    if not state.has_output
                ]
                raise AlgorithmError(
                    f"algorithm {self.algorithm.name!r} did not terminate within "
                    f"{self.max_rounds} rounds; undecided identifiers: {undecided[:10]}"
                )
            self._run_one_round()
        records = {
            position: NodeRecord(
                position=position,
                identifier=state.identifier,
                radius=state.output_round if state.output_round is not None else 0,
                output=state.output,
            )
            for position, state in self.states.items()
        }
        return ExecutionTrace(records)


def run_round_algorithm(
    graph: Graph,
    ids: IdentifierAssignment,
    algorithm: RoundAlgorithm,
    max_rounds: Optional[int] = None,
) -> ExecutionTrace:
    """Convenience wrapper: build a :class:`SynchronousExecution` and run it."""
    return SynchronousExecution(graph, ids, algorithm, max_rounds=max_rounds).run()
