"""Execution traces: the raw material of the complexity measures.

Running an algorithm (in either the ball view or the round view) produces,
for every position, the radius/round at which that node committed to its
output and the output itself.  :class:`ExecutionTrace` stores those records
and exposes the two quantities the paper compares:

* ``max_radius``     — the classic worst-case-over-nodes running time, and
* ``average_radius`` — the paper's average-over-nodes running time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import AlgorithmError


@dataclass(frozen=True)
class NodeRecord:
    """Outcome of one node's execution."""

    position: int
    identifier: int
    radius: int
    output: Any


class ExecutionTrace:
    """Per-node radii and outputs for one (graph, identifiers, algorithm) run."""

    def __init__(self, records: Mapping[int, NodeRecord]) -> None:
        if not records:
            raise AlgorithmError("an execution trace must contain at least one node")
        expected = set(range(len(records)))
        if set(records) != expected:
            raise AlgorithmError(
                "trace records must cover positions 0..n-1 exactly; "
                f"got positions {sorted(records)}"
            )
        self._records: dict[int, NodeRecord] = dict(sorted(records.items()))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes in the run."""
        return len(self._records)

    def record(self, position: int) -> NodeRecord:
        """The record of one position."""
        return self._records[position]

    def __iter__(self) -> Iterator[NodeRecord]:
        return iter(self._records.values())

    def radii(self) -> dict[int, int]:
        """Position -> radius at which that node output."""
        return {position: record.radius for position, record in self._records.items()}

    def radius_of_identifier(self, identifier: int) -> int:
        """Radius used by the node carrying ``identifier``."""
        for record in self._records.values():
            if record.identifier == identifier:
                return record.radius
        raise AlgorithmError(f"no node carries identifier {identifier}")

    def outputs_by_position(self) -> dict[int, Any]:
        """Position -> committed output."""
        return {position: record.output for position, record in self._records.items()}

    def outputs_by_identifier(self) -> dict[int, Any]:
        """Identifier -> committed output."""
        return {record.identifier: record.output for record in self._records.values()}

    # ------------------------------------------------------------------
    # the two running-time measures
    # ------------------------------------------------------------------
    @property
    def max_radius(self) -> int:
        """Classic measure: the largest radius over all nodes."""
        return max(record.radius for record in self._records.values())

    @property
    def sum_radius(self) -> int:
        """Sum of all radii (the quantity bounded by the paper's recurrence)."""
        return sum(record.radius for record in self._records.values())

    @property
    def average_radius(self) -> float:
        """The paper's measure: the average radius over all nodes."""
        return self.sum_radius / self.n

    def radius_histogram(self) -> dict[int, int]:
        """Radius value -> how many nodes used exactly that radius."""
        histogram: dict[int, int] = {}
        for record in self._records.values():
            histogram[record.radius] = histogram.get(record.radius, 0) + 1
        return dict(sorted(histogram.items()))

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace(n={self.n}, max_radius={self.max_radius}, "
            f"average_radius={self.average_radius:.3f})"
        )
