"""Per-node state carried by the round-based simulator.

A :class:`NodeState` bundles the immutable facts a node knows at start-up
(its identifier and degree) with the algorithm-defined mutable state and the
output bookkeeping.  Crucially — and following the paper's setting where
``n`` is unknown — a node that has *output* does **not** halt: it keeps
relaying messages in later rounds, it has merely committed to its answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class NodeState:
    """The complete state of one simulated node.

    Attributes
    ----------
    identifier:
        The node's globally unique identifier.
    degree:
        Number of incident edges (and therefore of ports).
    memory:
        Algorithm-defined state; the simulator never inspects it.
    output:
        The committed output, or ``None`` while undecided.
    output_round:
        Round index (0-based, counted as "number of completed communication
        rounds") at which the node committed, or ``None`` while undecided.
    """

    identifier: int
    degree: int
    memory: Any = None
    output: Optional[Any] = None
    output_round: Optional[int] = None
    halted: bool = field(default=False)

    @property
    def has_output(self) -> bool:
        """Whether the node has already committed to an output."""
        return self.output_round is not None

    def commit(self, output: Any, round_number: int) -> None:
        """Record the node's output at ``round_number``.

        Committing twice is a programming error in the algorithm and raises
        ``ValueError`` so that buggy algorithms fail loudly in tests.
        """
        if self.has_output:
            raise ValueError(
                f"node {self.identifier} attempted to output twice "
                f"(first at round {self.output_round}, again at round {round_number})"
            )
        self.output = output
        self.output_round = round_number
