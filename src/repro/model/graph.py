"""Port-numbered graphs.

The LOCAL model runs on a simple, connected, undirected graph whose nodes are
anonymous *positions* ``0 .. n-1``; identities are supplied separately by an
:class:`~repro.model.identifiers.IdentifierAssignment`.  Each node orders its
incident edges with *port numbers* ``0 .. deg(v)-1``; algorithms may only
refer to neighbours through ports, never through global positions.

The class below is a thin, validated adjacency-list structure with the graph
queries the simulators need (BFS balls, distances, eccentricities) plus
conversions to and from :mod:`networkx` for the random-topology builders.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import networkx as nx

from repro.errors import TopologyError
from repro.utils.validation import require_non_negative_int


class Graph:
    """An undirected, simple, port-numbered graph on positions ``0..n-1``.

    Parameters
    ----------
    adjacency:
        ``adjacency[v]`` is the sequence of neighbours of ``v`` in port
        order; ``adjacency[v][p]`` is the position reached through port ``p``
        of ``v``.  The structure must be symmetric (if ``u`` lists ``v`` then
        ``v`` lists ``u``), without self-loops or repeated neighbours.
    name:
        Optional human-readable label (used in experiment tables).
    """

    def __init__(self, adjacency: Sequence[Sequence[int]], name: str = "graph") -> None:
        self._adjacency: tuple[tuple[int, ...], ...] = tuple(
            tuple(neighbours) for neighbours in adjacency
        )
        self.name = name
        self._validate()
        self._distance_cache: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]], name: str = "graph") -> "Graph":
        """Build a graph on ``n`` positions from an edge list.

        Ports are assigned in the order edges are listed, which makes the
        construction deterministic for a fixed edge ordering.
        """
        require_non_negative_int(n, "n")
        adjacency: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"edge ({u}, {v}) references a position outside 0..{n - 1}")
            if u == v:
                raise TopologyError(f"self-loop at position {u} is not allowed")
            key = (min(u, v), max(u, v))
            if key in seen:
                raise TopologyError(f"duplicate edge ({u}, {v})")
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        return cls(adjacency, name=name)

    @classmethod
    def from_networkx(cls, graph: nx.Graph, name: str | None = None) -> "Graph":
        """Convert a :class:`networkx.Graph`; node labels must be ``0..n-1``."""
        n = graph.number_of_nodes()
        labels = set(graph.nodes())
        if labels != set(range(n)):
            raise TopologyError(
                "networkx graph must be labelled 0..n-1; "
                "use networkx.convert_node_labels_to_integers first"
            )
        edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
        return cls.from_edges(n, edges, name=name or str(graph))

    def to_networkx(self) -> nx.Graph:
        """Return an equivalent :class:`networkx.Graph` (ports are dropped)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.edges())
        return graph

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = len(self._adjacency)
        for v, neighbours in enumerate(self._adjacency):
            if len(set(neighbours)) != len(neighbours):
                raise TopologyError(f"position {v} lists a neighbour twice")
            for u in neighbours:
                if not isinstance(u, int) or not 0 <= u < n:
                    raise TopologyError(f"position {v} lists invalid neighbour {u!r}")
                if u == v:
                    raise TopologyError(f"self-loop at position {v}")
                if v not in self._adjacency[u]:
                    raise TopologyError(
                        f"asymmetric adjacency: {v} lists {u} but {u} does not list {v}"
                    )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of positions."""
        return len(self._adjacency)

    @property
    def m(self) -> int:
        """Number of edges."""
        return sum(len(neighbours) for neighbours in self._adjacency) // 2

    def positions(self) -> range:
        """All positions, ``0..n-1``."""
        return range(self.n)

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbours of ``v`` in port order."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of position ``v``."""
        return len(self._adjacency[v])

    def max_degree(self) -> int:
        """Maximum degree over all positions (0 for the empty graph)."""
        return max((self.degree(v) for v in self.positions()), default=0)

    def port_to(self, v: int, u: int) -> int:
        """Port number through which ``v`` reaches its neighbour ``u``."""
        try:
            return self._adjacency[v].index(u)
        except ValueError as exc:
            raise TopologyError(f"{u} is not a neighbour of {v}") from exc

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for v in self.positions():
            for u in self._adjacency[v]:
                if v < u:
                    yield (v, u)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether positions ``u`` and ``v`` are adjacent."""
        return v in self._adjacency[u]

    # ------------------------------------------------------------------
    # distances and balls
    # ------------------------------------------------------------------
    def distances_from(self, v: int) -> dict[int, int]:
        """BFS distances from ``v`` to every reachable position (cached)."""
        cached = self._distance_cache.get(v)
        if cached is not None:
            return cached
        dist = {v: 0}
        queue: deque[int] = deque([v])
        while queue:
            current = queue.popleft()
            for neighbour in self._adjacency[current]:
                if neighbour not in dist:
                    dist[neighbour] = dist[current] + 1
                    queue.append(neighbour)
        self._distance_cache[v] = dist
        return dist

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance between ``u`` and ``v``.

        Raises :class:`TopologyError` when ``v`` is unreachable from ``u``.
        """
        dist = self.distances_from(u).get(v)
        if dist is None:
            raise TopologyError(f"position {v} is unreachable from {u}")
        return dist

    def ball_positions(self, v: int, radius: int) -> dict[int, int]:
        """Positions within distance ``radius`` of ``v`` mapped to distances."""
        require_non_negative_int(radius, "radius")
        return {u: d for u, d in self.distances_from(v).items() if d <= radius}

    def eccentricity(self, v: int) -> int:
        """Largest distance from ``v`` to any reachable position."""
        return max(self.distances_from(v).values())

    def diameter(self) -> int:
        """Largest eccentricity; raises on a disconnected graph."""
        if not self.is_connected():
            raise TopologyError("diameter is undefined on a disconnected graph")
        return max(self.eccentricity(v) for v in self.positions())

    def is_connected(self) -> bool:
        """Whether every position is reachable from position 0."""
        if self.n == 0:
            return True
        return len(self.distances_from(0)) == self.n

    # ------------------------------------------------------------------
    # structural predicates used by cycle/path-specific algorithms
    # ------------------------------------------------------------------
    def is_cycle(self) -> bool:
        """Whether the graph is a single cycle (n >= 3, connected, 2-regular)."""
        return (
            self.n >= 3
            and self.is_connected()
            and all(self.degree(v) == 2 for v in self.positions())
        )

    def is_complete(self) -> bool:
        """Whether every pair of distinct positions is adjacent.

        Complete graphs are special-cased by the symmetry machinery of
        :mod:`repro.search.automorphisms`: their adjacency automorphism
        group is all of ``S_n``, so exact adversary searches collapse to a
        single canonical identifier assignment.
        """
        return all(self.degree(v) == self.n - 1 for v in self.positions())

    def is_path(self) -> bool:
        """Whether the graph is a single simple path (n >= 1)."""
        if self.n == 0 or not self.is_connected():
            return False
        if self.n == 1:
            return True
        degrees = sorted(self.degree(v) for v in self.positions())
        return degrees[:2] == [1, 1] and all(d == 2 for d in degrees[2:])

    # ------------------------------------------------------------------
    # dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash(self._adjacency)

    def __repr__(self) -> str:
        return f"Graph(name={self.name!r}, n={self.n}, m={self.m})"
