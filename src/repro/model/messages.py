"""Messages exchanged in the round-based (message-passing) view.

The LOCAL model places no bound on message size, so a message is simply an
arbitrary (hashable or not) payload tagged with the port it was sent through
and the port it arrives on.  Keeping the tags explicit lets tests assert that
the simulator delivers messages on the correct ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """A single point-to-point message.

    Attributes
    ----------
    payload:
        Arbitrary content chosen by the sending algorithm.
    sender_port:
        Port through which the *sender* emitted the message.
    receiver_port:
        Port through which the *receiver* sees the message arrive.
    """

    payload: Any
    sender_port: int
    receiver_port: int

    def __repr__(self) -> str:
        return (
            f"Message(payload={self.payload!r}, "
            f"sender_port={self.sender_port}, receiver_port={self.receiver_port})"
        )
