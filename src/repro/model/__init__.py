"""The LOCAL-model substrate.

This package implements the two equivalent views of the LOCAL model used in
the paper:

* the **ball view** (:mod:`repro.model.ball`): a node grows the radius of the
  ball it sees around itself until it has enough information to output; and
* the **round view** (:mod:`repro.model.rounds`): synchronous message passing
  where each round every node sends to, and receives from, its neighbours.

Shared infrastructure lives in :mod:`repro.model.graph` (port-numbered
graphs), :mod:`repro.model.identifiers` (identifier assignments) and
:mod:`repro.model.trace` (per-node radius/round records).
"""

from repro.model.ball import BallView, extract_ball
from repro.model.graph import Graph
from repro.model.identifiers import (
    IdentifierAssignment,
    adversarial_block_assignment,
    bit_reversal_assignment,
    identity_assignment,
    random_assignment,
    reversed_assignment,
)
from repro.model.messages import Message
from repro.model.node import NodeState
from repro.model.rounds import RoundAlgorithm, SynchronousExecution, run_round_algorithm
from repro.model.trace import ExecutionTrace, NodeRecord

__all__ = [
    "BallView",
    "ExecutionTrace",
    "Graph",
    "IdentifierAssignment",
    "Message",
    "NodeRecord",
    "NodeState",
    "RoundAlgorithm",
    "SynchronousExecution",
    "adversarial_block_assignment",
    "bit_reversal_assignment",
    "extract_ball",
    "identity_assignment",
    "random_assignment",
    "reversed_assignment",
    "run_round_algorithm",
]
