"""Identifier assignments.

In the LOCAL model every node carries a globally unique identifier.  The
paper's complexity measures take a *worst case over the identifier
assignment*, so the library treats the assignment as a first-class object
that adversaries (:mod:`repro.core.adversary`) can permute and that
experiments can sample.

An :class:`IdentifierAssignment` maps graph positions ``0..n-1`` to distinct
integer identifiers.  Several deterministic families (identity, reversed,
bit-reversal, adversarial blocks) plus uniform random assignments are
provided; all of them draw identifiers from ``0..n-1`` unless an explicit
identifier pool is supplied.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import IdentifierError
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive_int


class IdentifierAssignment(Mapping[int, int]):
    """An injective map from positions ``0..n-1`` to integer identifiers."""

    def __init__(self, ids: Sequence[int]) -> None:
        self._ids: tuple[int, ...] = tuple(ids)
        self._validate()
        self._position_of = {identifier: pos for pos, identifier in enumerate(self._ids)}

    def _validate(self) -> None:
        for identifier in self._ids:
            if not isinstance(identifier, int) or isinstance(identifier, bool) or identifier < 0:
                raise IdentifierError(f"identifiers must be non-negative ints, got {identifier!r}")
        if len(set(self._ids)) != len(self._ids):
            raise IdentifierError("identifiers must be pairwise distinct")

    # ------------------------------------------------------------------
    # Mapping interface (position -> identifier)
    # ------------------------------------------------------------------
    def __getitem__(self, position: int) -> int:
        return self._ids[position]

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._ids)))

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # extra queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of positions covered by the assignment."""
        return len(self._ids)

    def identifiers(self) -> tuple[int, ...]:
        """Identifiers listed by position (position ``i`` -> ``identifiers()[i]``)."""
        return self._ids

    def position_of(self, identifier: int) -> int:
        """Position carrying ``identifier``; raises if the identifier is unused."""
        try:
            return self._position_of[identifier]
        except KeyError as exc:
            raise IdentifierError(f"identifier {identifier} is not assigned") from exc

    def max_identifier(self) -> int:
        """The largest identifier in use."""
        if not self._ids:
            raise IdentifierError("empty assignment has no maximum identifier")
        return max(self._ids)

    def argmax_position(self) -> int:
        """The position that carries the largest identifier."""
        return self.position_of(self.max_identifier())

    # ------------------------------------------------------------------
    # transformations (used by adversarial search)
    # ------------------------------------------------------------------
    def with_swap(self, position_a: int, position_b: int) -> "IdentifierAssignment":
        """Return a copy with the identifiers of two positions exchanged."""
        ids = list(self._ids)
        ids[position_a], ids[position_b] = ids[position_b], ids[position_a]
        return IdentifierAssignment(ids)

    def permuted(self, permutation: Sequence[int]) -> "IdentifierAssignment":
        """Return the assignment ``position i -> self[permutation[i]]``."""
        if sorted(permutation) != list(range(self.n)):
            raise IdentifierError("permutation must be a rearrangement of 0..n-1")
        return IdentifierAssignment([self._ids[p] for p in permutation])

    def rotated(self, shift: int) -> "IdentifierAssignment":
        """Return the assignment cyclically shifted by ``shift`` positions."""
        if self.n == 0:
            return self
        shift %= self.n
        return IdentifierAssignment(self._ids[shift:] + self._ids[:shift])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdentifierAssignment):
            return NotImplemented
        return self._ids == other._ids

    def __hash__(self) -> int:
        return hash(self._ids)

    def __repr__(self) -> str:
        preview = ", ".join(str(i) for i in self._ids[:8])
        suffix = ", ..." if self.n > 8 else ""
        return f"IdentifierAssignment([{preview}{suffix}], n={self.n})"


# ----------------------------------------------------------------------
# assignment families
# ----------------------------------------------------------------------
def identity_assignment(n: int) -> IdentifierAssignment:
    """Position ``i`` carries identifier ``i``."""
    require_positive_int(n, "n")
    return IdentifierAssignment(range(n))


def reversed_assignment(n: int) -> IdentifierAssignment:
    """Position ``i`` carries identifier ``n - 1 - i``."""
    require_positive_int(n, "n")
    return IdentifierAssignment(range(n - 1, -1, -1))


def random_assignment(n: int, seed: SeedLike = None) -> IdentifierAssignment:
    """A uniformly random permutation of ``0..n-1``."""
    require_positive_int(n, "n")
    rng = make_rng(seed)
    ids = list(range(n))
    rng.shuffle(ids)
    return IdentifierAssignment(ids)


def bit_reversal_assignment(n: int) -> IdentifierAssignment:
    """Identifiers ordered by the bit-reversal of their position.

    Bit-reversal orderings spread large identifiers roughly evenly around the
    graph, a classical "hard-ish but structured" input for comparison against
    adversarial and random assignments.
    """
    require_positive_int(n, "n")
    width = max(1, (n - 1).bit_length())
    reversed_rank = sorted(
        range(n), key=lambda pos: int(format(pos, f"0{width}b")[::-1], 2)
    )
    ids = [0] * n
    for identifier, position in enumerate(reversed_rank):
        ids[position] = identifier
    return IdentifierAssignment(ids)


def worst_largest_id_assignment(n: int) -> IdentifierAssignment:
    """The provably worst arrangement for largest-ID on the ``n``-cycle.

    Built from the segment recurrence of the paper
    (:func:`repro.theory.recurrence.worst_case_cycle_arrangement`); the
    import is deferred so the model layer stays import-acyclic.
    """
    require_positive_int(n, "n")
    from repro.theory.recurrence import worst_case_cycle_arrangement

    return IdentifierAssignment(worst_case_cycle_arrangement(n))


#: The canonical identifier-family registry: family name -> builder
#: ``(n, seed) -> IdentifierAssignment``.  This is the single source of
#: truth shared by the CLI (``simulate --ids``), the unified query API
#: (:mod:`repro.api`) and the experiments; deterministic families simply
#: ignore the seed.
ID_FAMILIES: dict[str, Callable[[int, int], IdentifierAssignment]] = {
    "random": lambda n, seed: random_assignment(n, seed=seed),
    "sorted": lambda n, seed: identity_assignment(n),
    "reversed": lambda n, seed: reversed_assignment(n),
    "bit-reversal": lambda n, seed: bit_reversal_assignment(n),
    "worst-largest-id": lambda n, seed: worst_largest_id_assignment(n),
}


def make_identifier_assignment(
    family: str, n: int, seed: int = 0
) -> IdentifierAssignment:
    """Build an assignment from a registered family (raises on unknown names).

    >>> make_identifier_assignment("sorted", 4).identifiers()
    (0, 1, 2, 3)
    >>> make_identifier_assignment("oracle", 4)
    Traceback (most recent call last):
        ...
    repro.errors.IdentifierError: unknown identifier family 'oracle'; known: bit-reversal, random, reversed, sorted, worst-largest-id
    """
    try:
        builder = ID_FAMILIES[family]
    except KeyError as exc:
        raise IdentifierError(
            f"unknown identifier family {family!r}; known: {', '.join(sorted(ID_FAMILIES))}"
        ) from exc
    return builder(n, seed)


def adversarial_block_assignment(n: int, block: int = 2) -> IdentifierAssignment:
    """A structured assignment that interleaves blocks of small and large IDs.

    Positions are filled block by block, alternately taking the smallest and
    the largest unused identifiers.  On cycles this creates long stretches in
    which a node must travel far before meeting a larger identifier, which
    stresses the largest-ID algorithm more than a random permutation does.
    """
    require_positive_int(n, "n")
    require_positive_int(block, "block")
    low, high = 0, n - 1
    ids: list[int] = []
    take_low = True
    while len(ids) < n:
        for _ in range(min(block, n - len(ids))):
            if take_low:
                ids.append(low)
                low += 1
            else:
                ids.append(high)
                high -= 1
        take_low = not take_low
    return IdentifierAssignment(ids)
