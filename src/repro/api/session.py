"""Sessions: one owner for the shared execution infrastructure.

Before this layer, every entry point built its own world per call — a fresh
graph, fresh frontier plans, a fresh :class:`~repro.engine.cache.DecisionCache`,
a fresh automorphism group.  A :class:`Session` owns all of that *across*
calls:

* built graphs are cached per ``(topology, n, seed)`` — and because frontier
  plans and automorphism groups live on the :class:`~repro.model.graph.Graph`
  object, every later query on the same instance reuses them;
* ball-compiled algorithm instances are cached per ``(name, n)``;
* one :class:`~repro.engine.frontier.FrontierRunner` +
  :class:`~repro.engine.cache.DecisionCache` pair is kept per
  ``(graph, algorithm)``, so repeated ``simulate`` queries skip both the
  plan construction and most ``decide`` calls;
* process fan-out goes through one :class:`~repro.engine.batch.BatchExecutor`
  configuration.

``benchmarks/test_bench_api.py`` measures the effect: a warm session beats
fresh per-call setup by well over the asserted 1.5× on repeated-query
workloads (artifact ``BENCH_api.json``).

The five public methods — :meth:`Session.simulate`, :meth:`Session.worst_case`,
:meth:`Session.distribution`, :meth:`Session.sweep`,
:meth:`Session.scale` — all accept a
:class:`~repro.api.query.Query` (or its keyword arguments) and return a
:class:`~repro.api.results.Result`.  Module level,
:func:`query` runs against a lazily created default session — the one-liner
``repro.query(...)`` of the README quickstart.

Determinism: cell seeds derive from the query seed and the cell coordinates
(:func:`~repro.engine.batch.derive_task_seed`), so a query returns the same
rows at any worker count — warm or cold, only the ``cache``/``wall_time_s``
diagnostics differ.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.api.query import Query
from repro.api.results import Result
from repro.core.certification import certify
from repro.core.measures import ComplexityReport
from repro.engine.batch import BatchExecutor, derive_task_seed
from repro.engine.cache import DecisionCache
from repro.engine.campaign import (
    DETERMINISTIC_TOPOLOGIES,
    build_topology,
    dist_cell_row,
    dist_cell_rows_batched,
    make_adversary,
    make_ball_algorithm,
    run_cell,
    run_dist_cell,
    search_cell_row,
)
from repro.dist.sampling import fold_scale_stats
from repro.engine.frontier import FrontierRunner
from repro.errors import ConfigurationError
from repro.kernel.compile import CompiledInstance, compile_instance
from repro.kernel.shard import ShardedKernelExecutor
from repro.topology.stream import STREAM_DETERMINISTIC, CSRTopology, build_csr
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment, make_identifier_assignment
from repro.model.trace import ExecutionTrace
from repro.obs import build_profile, metrics as _metrics
from repro.obs.spans import span as _obs_span

#: Bound on each per-(graph, algorithm) decision-cache table, matching the
#: adversaries' session caches.
SESSION_CACHE_MAX_ENTRIES = 1 << 18

#: Bounds on how many graphs / algorithm instances / engine runners /
#: compiled kernel instances a session retains.  Long-lived sessions (the
#: process-wide default behind ``repro.query``) stream arbitrarily many
#: distinct instances through, so each cache evicts its least-recently-used
#: entry once full instead of growing without bound — eviction only costs
#: warmth, never correctness.
SESSION_MAX_GRAPHS = 256
SESSION_MAX_ALGORITHMS = 256
SESSION_MAX_RUNNERS = 64
SESSION_MAX_KERNELS = 64

#: Bound on retained streamed CSR topologies.  Deliberately small: one
#: million-node CSR is tens of megabytes, so the scale cache trades warmth
#: for a hard memory ceiling.
SESSION_MAX_CSRS = 8


class _LruCache:
    """A bounded mapping with least-recently-used eviction and counters.

    Lookups move the hit entry to the most-recent end, so a *hot* entry —
    one the session keeps coming back to between misses — survives a cold
    sweep of one-shot instances that would evict it under plain
    oldest-insertion eviction.  Hit/miss/eviction counts feed the
    ``cache["session"]`` diagnostics of every :class:`~repro.api.results.Result`.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"cache limit must be >= 1, got {limit}")
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """The cached value (refreshing its recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, value) -> None:
        """Insert ``value``, evicting the least recently used beyond the limit."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def pop(self, key) -> None:
        """Drop one entry if present (external invalidation, e.g. store GC)."""
        self._entries.pop(key, None)


@dataclass(frozen=True)
class SimulateCell:
    """One fully specified point of a ``simulate`` grid.

    ``graph_seed`` is derived without the algorithm (all algorithms of one
    coordinate see the identical random graph); ``seed`` additionally folds
    the algorithm and the identifier family in, and feeds the family
    builder.
    """

    index: int
    topology: str
    n: int
    algorithm: str
    ids: str
    graph_seed: int
    seed: int


def simulate_cells(query: Query) -> list[SimulateCell]:
    """Expand a ``simulate`` query into deterministic, individually seeded cells."""
    import itertools

    grid = itertools.product(query.topologies, query.sizes, query.algorithms)
    return [
        SimulateCell(
            index=index,
            topology=topology,
            n=n,
            algorithm=algorithm,
            ids=query.ids,
            graph_seed=derive_task_seed(query.seed, "simulate", topology, n),
            seed=derive_task_seed(
                query.seed, "simulate", topology, n, algorithm, query.ids
            ),
        )
        for index, (topology, n, algorithm) in enumerate(grid)
    ]


def simulate_cell_row(
    cell: SimulateCell,
    graph: Optional[Graph] = None,
    algorithm=None,
    runner: Optional[FrontierRunner] = None,
) -> dict:
    """Execute one simulate cell and return its JSON-friendly result row.

    The defaults build everything fresh (the worker-process path); a
    :class:`Session` passes its cached graph/algorithm/runner so repeated
    queries share plans and memoised decisions.  The ``cache`` entry of the
    row is the *delta* of the runner's cache counters over this run.
    """
    if graph is None:
        graph = build_topology(cell.topology, cell.n, cell.graph_seed)
    if algorithm is None:
        algorithm = make_ball_algorithm(cell.algorithm, graph.n)
    if runner is None:
        runner = FrontierRunner(
            graph,
            algorithm,
            cache=DecisionCache(algorithm, max_entries=SESSION_CACHE_MAX_ENTRIES),
        )
    ids = make_identifier_assignment(cell.ids, graph.n, cell.seed)
    stats = runner.cache.stats if runner.cache is not None else None
    hits_before = stats.hits if stats else 0
    misses_before = stats.misses if stats else 0
    started = time.perf_counter()
    with _obs_span(
        "engine.simulate_cell",
        topology=cell.topology,
        n=cell.n,
        algorithm=cell.algorithm,
    ):
        trace = runner.run(ids)
    elapsed = time.perf_counter() - started
    certify(algorithm.problem, graph, ids, trace)
    cache = None
    if stats is not None:
        hits = stats.hits - hits_before
        misses = stats.misses - misses_before
        lookups = hits + misses
        cache = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
    return {
        "index": cell.index,
        "topology": cell.topology,
        "n": cell.n,
        "graph_n": graph.n,
        "graph_m": graph.m,
        "graph": graph.name,
        "algorithm": cell.algorithm,
        "ids": cell.ids,
        "identifiers": list(ids.identifiers()),
        "seed": cell.seed,
        "graph_seed": cell.graph_seed,
        "classic": trace.max_radius,
        "average": trace.average_radius,
        "sum": trace.sum_radius,
        "histogram": {str(radius): count for radius, count in trace.radius_histogram().items()},
        "certified": True,
        "cache": cache,
        "wall_time_s": elapsed,
    }


def run_simulate_cell(cell: SimulateCell) -> dict:
    """Worker entry point: execute one simulate cell from a picklable payload."""
    return simulate_cell_row(cell)


@dataclass(frozen=True)
class ScaleCell:
    """One fully specified point of a ``scale`` grid.

    ``csr_seed`` builds the streamed topology (all algorithms of one
    coordinate sample the identical CSR); ``seed`` additionally folds the
    algorithm in and seeds the per-row identifier permutations.
    """

    index: int
    topology: str
    n: int
    algorithm: str
    csr_seed: int
    seed: int


def scale_cells(query: Query) -> list[ScaleCell]:
    """Expand a ``scale`` query into deterministic, individually seeded cells."""
    import itertools

    grid = itertools.product(query.topologies, query.sizes, query.algorithms)
    return [
        ScaleCell(
            index=index,
            topology=topology,
            n=n,
            algorithm=algorithm,
            csr_seed=derive_task_seed(query.seed, "scale", topology, n),
            seed=derive_task_seed(query.seed, "scale", topology, n, algorithm),
        )
        for index, (topology, n, algorithm) in enumerate(grid)
    ]


def scale_cell_row(
    cell: ScaleCell,
    csr: CSRTopology,
    algorithm,
    samples: int,
    workers: int,
    row_block: int,
    center_chunk: int,
) -> dict:
    """Execute one scale cell and return its JSON-friendly result row.

    The row mirrors the sampled-distribution shape (``average`` / ``max``
    estimate dicts, ``exact: False``) so the Result table and headline
    machinery treat both sampling modes uniformly — but it carries no joint
    distribution: the scale path never materialises per-node radii.
    """
    executor = ShardedKernelExecutor(
        csr,
        algorithm,
        workers=workers,
        row_block=row_block,
        center_chunk=center_chunk,
    )
    started = time.perf_counter()
    stats = executor.sample_measures(samples, seed=cell.seed)
    elapsed = time.perf_counter() - started
    folded = fold_scale_stats(stats, seed=cell.seed)
    nodes = csr.n * folded.samples
    return {
        "index": cell.index,
        "topology": cell.topology,
        "n": cell.n,
        "graph_n": csr.n,
        "graph_m": csr.m,
        "graph": csr.name,
        "algorithm": cell.algorithm,
        "samples": folded.samples,
        "seed": cell.seed,
        "csr_seed": cell.csr_seed,
        "average": folded.average.as_dict(),
        "max": folded.maximum.as_dict(),
        "uncertainty": {
            "average": folded.average.as_dict(),
            "max": folded.maximum.as_dict(),
        },
        "nodes_per_s": nodes / elapsed if elapsed > 0 else float("inf"),
        "exact": False,
        "kernel": executor.describe(),
        "wall_time_s": elapsed,
    }


class Session:
    """Shared-infrastructure owner executing :class:`~repro.api.query.Query` objects.

    Parameters
    ----------
    workers:
        Optional override of every query's ``workers`` field.  ``None``
        (the default) respects the per-query setting.

    A session is cheap to create and safe to keep for a whole process; its
    caches only ever make repeated queries faster, never change their
    answers, and they are bounded (least-recently-used eviction at
    :data:`SESSION_MAX_GRAPHS` / :data:`SESSION_MAX_ALGORITHMS` /
    :data:`SESSION_MAX_RUNNERS` / :data:`SESSION_MAX_KERNELS` entries), so
    memory stays flat even when a long-lived session streams arbitrarily
    many distinct instances — and a hot instance keeps its warmth through a
    sweep of cold ones.  The combined hit/miss/eviction counters surface on
    every result under ``cache["session"]``.  Sessions are not thread-safe.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_graphs: int = SESSION_MAX_GRAPHS,
        max_algorithms: int = SESSION_MAX_ALGORITHMS,
        max_runners: int = SESSION_MAX_RUNNERS,
        max_kernels: int = SESSION_MAX_KERNELS,
        max_csrs: int = SESSION_MAX_CSRS,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._graphs = _LruCache(max_graphs)
        self._algorithms = _LruCache(max_algorithms)
        self._runners = _LruCache(max_runners)
        self._kernels = _LruCache(max_kernels)
        self._csrs = _LruCache(max_csrs)
        #: Queries executed so far (diagnostic only).
        self.queries = 0

    # ------------------------------------------------------------------
    # shared infrastructure
    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        """Combined hit/miss/eviction counters of the session's object caches."""
        caches = (self._graphs, self._algorithms, self._runners, self._kernels, self._csrs)
        return {
            "hits": sum(cache.hits for cache in caches),
            "misses": sum(cache.misses for cache in caches),
            "evictions": sum(cache.evictions for cache in caches),
        }

    def _query_profile(self, root) -> Optional[dict]:
        """The ``profile`` block of one query — ``None`` while obs is off.

        ``root`` is the query's ``api.query`` span: the no-op singleton when
        instrumentation is disabled (in which case no profile is recorded),
        a finished :class:`~repro.obs.spans.Span` otherwise.  Publishes the
        session's cache counters into the metrics registry before taking
        the snapshot, so every profile carries them.
        """
        if not getattr(root, "enabled", False):
            return None
        info = self.cache_info()
        _metrics.set_gauge("api.session.cache_hits", info["hits"])
        _metrics.set_gauge("api.session.cache_misses", info["misses"])
        _metrics.set_gauge("api.session.cache_evictions", info["evictions"])
        _metrics.add("api.queries")
        return build_profile(root)

    def graph(self, topology: str, n: int, seed: int = 0) -> Graph:
        """A built topology, cached per ``(topology, n, seed)``.

        Frontier plans and automorphism groups live on the returned object,
        so reuse compounds across every later query touching it.  Topologies
        whose builders ignore the seed (cycle, path, grid, complete) share
        one instance across seeds; random families key by seed.
        """
        key = (topology, n, 0 if topology in DETERMINISTIC_TOPOLOGIES else seed)
        graph = self._graphs.get(key)
        if graph is None:
            graph = build_topology(topology, n, seed)
            self._graphs.put(key, graph)
        return graph

    def ball_algorithm(self, name: str, n: int):
        """A registered algorithm instance (ball-compiled), cached per ``(name, n)``."""
        key = (name, n)
        algorithm = self._algorithms.get(key)
        if algorithm is None:
            algorithm = make_ball_algorithm(name, n)
            self._algorithms.put(key, algorithm)
        return algorithm

    def runner(self, graph: Graph, algorithm) -> FrontierRunner:
        """The session's engine runner for ``(graph, algorithm)``, with its cache.

        Cached per object-identity pair — sound because every cached entry
        keeps its graph and algorithm alive, so a key can only collide with
        the identical objects.
        """
        key = (id(graph), id(algorithm))
        entry = self._runners.get(key)
        if entry is None:
            runner = FrontierRunner(
                graph,
                algorithm,
                cache=DecisionCache(algorithm, max_entries=SESSION_CACHE_MAX_ENTRIES),
            )
            entry = (graph, algorithm, runner)
            self._runners.put(key, entry)
        return entry[2]

    def kernel(self, graph: Graph, algorithm) -> CompiledInstance:
        """The session's compiled batch instance for ``(graph, algorithm)``.

        Cached next to the engine runners under the same object-identity
        keying; distribution queries stream their sample chunks through it,
        so repeated queries on one instance skip the compilation too.
        """
        key = (id(graph), id(algorithm))
        entry = self._kernels.get(key)
        if entry is None:
            instance = compile_instance(graph, algorithm, validate=False)
            entry = (graph, algorithm, instance)
            self._kernels.put(key, entry)
        return entry[2]

    def csr(self, topology: str, n: int, seed: int = 0) -> CSRTopology:
        """A streamed CSR topology, cached per ``(topology, n, seed)``.

        The scale-mode sibling of :meth:`graph`: deterministic stream
        families (cycle) share one instance across seeds.  The cache is
        small (:data:`SESSION_MAX_CSRS`) because each entry can be tens of
        megabytes at n = 10^6.
        """
        key = (topology, n, 0 if topology in STREAM_DETERMINISTIC else seed)
        csr = self._csrs.get(key)
        if csr is None:
            csr = build_csr(topology, n, seed)
            self._csrs.put(key, csr)
        return csr

    def trace(self, graph: Graph, ids: IdentifierAssignment, algorithm) -> ExecutionTrace:
        """Run one algorithm on one explicit instance through the session.

        The object-level sibling of :meth:`simulate` for callers that hold a
        :class:`Graph` already (experiments, examples): same engine path,
        same caches, no declarative grid.
        """
        return self.runner(graph, algorithm).run(ids)

    def report(
        self, graph: Graph, ids: IdentifierAssignment, algorithm
    ) -> ComplexityReport:
        """Both measures of one explicit instance (a cached-session run)."""
        return ComplexityReport.from_trace(self.trace(graph, ids, algorithm), graph, algorithm)

    def _workers_for(self, query: Query) -> int:
        return self.workers if self.workers is not None else query.workers

    # ------------------------------------------------------------------
    # the four modes
    # ------------------------------------------------------------------
    def run(self, query: Optional[Query] = None, **kwargs) -> Result:
        """Execute a query in whatever mode it declares."""
        query = _coerce(query, kwargs)
        method = {
            "simulate": self.simulate,
            "worst-case": self.worst_case,
            "distribution": self.distribution,
            "sweep": self.sweep,
            "scale": self.scale,
        }[query.mode]
        return method(query)

    def simulate(self, query: Optional[Query] = None, **kwargs) -> Result:
        """Single runs over the grid: both measures of one assignment per cell."""
        query = _coerce(query, kwargs, mode="simulate")
        self.queries += 1
        cells = simulate_cells(query)
        workers = self._workers_for(query)
        with _obs_span("api.query", mode="simulate", cells=len(cells)) as root:
            if workers > 1 and len(cells) > 1:
                rows = BatchExecutor(workers).map(run_simulate_cell, cells)
            else:
                rows = []
                for cell in cells:
                    graph = self.graph(cell.topology, cell.n, cell.graph_seed)
                    algorithm = self.ball_algorithm(cell.algorithm, graph.n)
                    rows.append(
                        simulate_cell_row(
                            cell, graph, algorithm, self.runner(graph, algorithm)
                        )
                    )
            rows.sort(key=lambda row: row["index"])
        return Result.from_rows(
            "simulate",
            query.to_dict(),
            rows,
            session_cache=self.cache_info(),
            profile=self._query_profile(root),
        )

    def worst_case(self, query: Optional[Query] = None, **kwargs) -> Result:
        """Worst case over identifier assignments, one adversary search per cell.

        Cells run in-process (sharing the session's graphs, and therefore
        their automorphism groups and frontier plans); ``workers`` feeds the
        portfolio adversary's strategy fan-out instead of sharding cells —
        the historical ``repro search --workers`` semantics.
        """
        query = _coerce(query, kwargs, mode="worst-case")
        self.queries += 1
        spec = query.to_campaign_spec()
        workers = self._workers_for(query)
        cells = spec.cells()
        with _obs_span("api.query", mode="worst-case", cells=len(cells)) as root:
            rows = []
            for cell in cells:
                graph = self.graph(cell.topology, cell.n, cell.seed)
                algorithm = self.ball_algorithm(cell.algorithm, graph.n)
                adversary = make_adversary(
                    cell.adversary, spec, seed=cell.seed, workers=workers
                )
                rows.append(search_cell_row(spec, cell, graph, algorithm, adversary))
        return Result.from_rows(
            "worst-case",
            query.to_dict(),
            rows,
            session_cache=self.cache_info(),
            profile=self._query_profile(root),
        )

    def sweep(self, query: Optional[Query] = None, **kwargs) -> Result:
        """A full campaign grid of adversarial searches (the ``repro sweep`` mode).

        With ``workers > 1`` the cells are sharded across processes exactly
        like the legacy :func:`~repro.engine.campaign.run_campaign_rows`;
        serial runs stay in-process and reuse the session's cached graphs.
        Rows are identical either way.
        """
        query = _coerce(query, kwargs, mode="sweep")
        self.queries += 1
        spec = query.to_campaign_spec()
        cells = spec.cells()
        workers = self._workers_for(query)
        with _obs_span("api.query", mode="sweep", cells=len(cells)) as root:
            if workers > 1 and len(cells) > 1:
                rows = BatchExecutor(workers).map(
                    run_cell, [(spec, cell) for cell in cells]
                )
            else:
                rows = []
                for cell in cells:
                    graph = self.graph(cell.topology, cell.n, cell.seed)
                    algorithm = self.ball_algorithm(cell.algorithm, graph.n)
                    rows.append(search_cell_row(spec, cell, graph, algorithm))
            rows = sorted(rows, key=lambda row: row["index"])
        return Result.from_rows(
            "sweep",
            query.to_dict(),
            rows,
            session_cache=self.cache_info(),
            profile=self._query_profile(root),
        )

    def scale(self, query: Optional[Query] = None, **kwargs) -> Result:
        """Sharded million-node sampling on streamed CSR topologies.

        ``workers`` feeds the :class:`~repro.kernel.shard.ShardedKernelExecutor`
        process pool *inside* each cell (shard-level fan-out), not cell
        sharding — one million-node cell dominates any grid, so fanning the
        shards out is where the parallelism lives.  Results are
        bit-identical at any worker count (the executor's decomposition is
        fixed by ``row_block`` × ``center_chunk``).
        """
        query = _coerce(query, kwargs, mode="scale")
        self.queries += 1
        cells = scale_cells(query)
        workers = self._workers_for(query)
        with _obs_span("api.query", mode="scale", cells=len(cells)) as root:
            rows = []
            for cell in cells:
                csr = self.csr(cell.topology, cell.n, cell.csr_seed)
                algorithm = self.ball_algorithm(cell.algorithm, cell.n)
                rows.append(
                    scale_cell_row(
                        cell,
                        csr,
                        algorithm,
                        samples=query.samples,
                        workers=workers,
                        row_block=query.row_block,
                        center_chunk=query.center_chunk,
                    )
                )
            rows.sort(key=lambda row: row["index"])
        return Result.from_rows(
            "scale",
            query.to_dict(),
            rows,
            session_cache=self.cache_info(),
            profile=self._query_profile(root),
        )

    def distribution(self, query: Optional[Query] = None, **kwargs) -> Result:
        """Exact and/or sampled measure distributions over identifier assignments."""
        query = _coerce(query, kwargs, mode="distribution")
        self.queries += 1
        spec = query.to_dist_spec()
        cells = spec.cells()
        workers = self._workers_for(query)
        with _obs_span("api.query", mode="distribution", cells=len(cells)) as root:
            rows = []
            # Sampled cells go through the kernel as ONE cross-cell
            # multi-instance batch (cells sharing a cached compiled
            # instance merge into a single row stream); with workers > 1
            # the batch fans out over the warm pool instead — same radii,
            # same rows, bit-identical at any worker count.  The exact
            # cells evaluate leaves inside their own search sessions
            # (pooled per cell when parallel).
            sampled = [cell for cell in cells if cell.method == "sample"]
            exact = [cell for cell in cells if cell.method != "sample"]
            if sampled:
                rows.extend(
                    dist_cell_rows_batched(
                        spec,
                        sampled,
                        graph_for=lambda cell: self.graph(
                            cell.topology, cell.n, cell.graph_seed
                        ),
                        algorithm_for=lambda cell, graph: self.ball_algorithm(
                            cell.algorithm, graph.n
                        ),
                        kernel_for=self.kernel,
                        workers=workers,
                    )
                )
            if workers > 1 and len(exact) > 1:
                rows.extend(
                    BatchExecutor(workers).map(
                        run_dist_cell, [(spec, cell) for cell in exact]
                    )
                )
            else:
                for cell in exact:
                    graph = self.graph(cell.topology, cell.n, cell.graph_seed)
                    algorithm = self.ball_algorithm(cell.algorithm, graph.n)
                    rows.append(dist_cell_row(spec, cell, graph, algorithm))
            rows = sorted(rows, key=lambda row: row["index"])
        return Result.from_rows(
            "distribution",
            query.to_dict(),
            rows,
            session_cache=self.cache_info(),
            profile=self._query_profile(root),
        )


def _coerce(query: Optional[Query], kwargs: dict, mode: Optional[str] = None) -> Query:
    """Normalise the ``(query, **kwargs)`` calling convention of every mode.

    An explicit :class:`Query` whose declared mode contradicts the method
    being called is rejected rather than silently rewritten — the caller
    either meant :meth:`Session.run` (which dispatches on the query's own
    mode) or built the wrong query.
    """
    if query is None:
        if mode is not None:
            kwargs.setdefault("mode", mode)
        return Query(**kwargs)
    if not isinstance(query, Query):
        raise ConfigurationError(
            f"expected a Query or keyword arguments, got {type(query).__name__}"
        )
    changes = dict(kwargs)
    effective_mode = changes.get("mode", query.mode)
    if mode is not None and effective_mode != mode:
        raise ConfigurationError(
            f"query declares mode {effective_mode!r} but the session's "
            f"{mode.replace('-', '_')}() method was called; use Session.run() "
            f"to dispatch on the query's mode, or build the query with "
            f"mode={mode!r}"
        )
    return query.with_changes(**changes) if changes else query


#: The lazily created process-wide session behind :func:`query`.
_default_session: Optional[Session] = None


def default_session() -> Session:
    """The shared module-level session (created on first use)."""
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session


def reset_default_session() -> None:
    """Drop the shared session (and all its cached graphs and runners)."""
    global _default_session
    _default_session = None


def query(spec=None, **kwargs) -> Result:
    """Run one query on the default session — the library's one-line front door.

    ``spec`` may be a :class:`~repro.api.query.Query`, a mode name (with the
    remaining fields as keyword arguments), or omitted entirely::

        import repro

        repro.query(mode="simulate", topologies="cycle", sizes=64)
        repro.query("worst-case", topologies="cycle", sizes=10,
                    adversaries="branch-and-bound", measure="sum")
        repro.query(repro.Query.load("examples/spec.json"))
    """
    if spec is None:
        built = Query(**kwargs)
    elif isinstance(spec, str):
        built = Query(mode=spec, **kwargs)
    elif isinstance(spec, Query):
        built = spec.with_changes(**kwargs) if kwargs else spec
    else:
        raise ConfigurationError(
            f"repro.query expects a Query, a mode name or keyword arguments; "
            f"got {type(spec).__name__}"
        )
    return default_session().run(built)
