"""The single, versioned result type of the unified API.

Every mode of the API — simulate, worst-case, distribution, sweep — answers
with the same :class:`Result` shape: the spec echo of the query that asked,
one JSON-friendly row per grid cell, headline ``measures``, aggregate cache
statistics and timing.  Certificates (exact searches, exact distributions)
and standard errors (sampled distributions) travel inside the rows, exactly
where the engine produced them.

The JSON document (``kind: "repro-result"``, ``version: 1``; schema in
``docs/api.md``) round-trips through :meth:`Result.to_json` /
:meth:`Result.from_json`.  ``from_json`` additionally *adopts* the two
pre-API document kinds — ``repro-sweep`` and ``repro-dist`` — so archived
campaign outputs remain readable through the new surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.measures import get_measure
from repro.errors import AnalysisError
from repro.utils.tables import Table

#: Document tag and schema version (see ``docs/api.md``).
RESULT_KIND = "repro-result"
RESULT_VERSION = 1

#: Per-row keys that vary between runs of the same query (timings, cache
#: luck across worker counts, instrumentation output); parity comparisons
#: strip them.
VOLATILE_ROW_KEYS = ("wall_time_s", "cache", "profile")

#: Table columns per mode (the CLI renders these).
_TABLE_COLUMNS = {
    "simulate": ("topology", "n", "algorithm", "ids", "classic", "average", "sum"),
    "worst-case": (
        "topology", "n", "algorithm", "adversary", "value",
        "evaluations", "exact", "cache_hit_rate",
    ),
    "sweep": (
        "topology", "n", "algorithm", "adversary", "value",
        "evaluations", "exact", "cache_hit_rate",
    ),
    "distribution": (
        "topology", "n", "algorithm", "method", "weight", "avg_mean",
        "avg_std", "avg_q90", "avg_se", "max_mean", "max_std",
    ),
    "scale": (
        "topology", "n", "algorithm", "samples", "avg_mean", "avg_se",
        "max_mean", "max_q90", "nodes_per_s",
    ),
}


def strip_volatile(rows: Sequence[Mapping]) -> list[dict]:
    """Rows without their run-dependent keys (for old-vs-new parity checks)."""
    return [
        {key: value for key, value in row.items() if key not in VOLATILE_ROW_KEYS}
        for row in rows
    ]


def _aggregate_cache(rows: Sequence[Mapping]) -> Optional[dict]:
    """Sum the per-row decision-cache counters (None when no row has any)."""
    hits = misses = 0
    seen = False
    for row in rows:
        cache = row.get("cache")
        if cache:
            seen = True
            hits += int(cache.get("hits", 0))
            misses += int(cache.get("misses", 0))
    if not seen:
        return None
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }


def _aggregate_kernel(rows: Sequence[Mapping]) -> Optional[dict]:
    """Summarise the per-row batch-kernel identities (None when untracked).

    Rows evaluated through the batch kernel carry a ``kernel`` entry
    (backend, rule, vectorised flag); the aggregate records the backends and
    rules that contributed plus how many rows the kernel answered.
    """
    backends: set = set()
    rules: set = set()
    vectorized_rows = 0
    seen = 0
    for row in rows:
        kernel = row.get("kernel")
        if kernel:
            seen += 1
            backends.add(kernel.get("backend"))
            rules.add(kernel.get("rule"))
            if kernel.get("vectorized"):
                vectorized_rows += 1
    if not seen:
        return None
    return {
        "backends": sorted(backend for backend in backends if backend),
        "rules": sorted(rule for rule in rules if rule),
        "rows": seen,
        "vectorized_rows": vectorized_rows,
    }


def _headline_measures(mode: str, rows: Sequence[Mapping]) -> dict:
    """The headline scalars of a row set (documented per mode in docs/api.md).

    ``simulate``: the worst value of each measure over the grid cells.
    ``worst-case``/``sweep``: the worst objective value found, keyed by the
    measure's paper-facing name.  ``distribution``: the worst *mean* of each
    measure's marginal over the cells (full statistics stay in the rows).
    """
    if not rows:
        return {}
    if mode == "simulate":
        return {
            "classic": max(row["classic"] for row in rows),
            "average": max(row["average"] for row in rows),
            "sum": max(row["sum"] for row in rows),
        }
    if mode in ("worst-case", "sweep"):
        name = get_measure(rows[0]["objective"]).name
        return {name: max(row["value"] for row in rows)}
    if mode in ("distribution", "scale"):
        return {
            "average": max(row["average"]["mean"] for row in rows),
            "classic": max(row["max"]["mean"] for row in rows),
        }
    raise AnalysisError(f"unknown result mode {mode!r}")


@dataclass(frozen=True)
class Result:
    """Uniform answer of every API mode: spec echo, rows, measures, stats.

    ``rows`` keep the exact per-cell dictionaries the engine layers emit
    (including certificates and standard errors where present), so the
    Result is a lossless superset of every legacy return shape.
    """

    #: The mode that produced the rows (one of :data:`repro.api.query.MODES`).
    mode: str
    #: Spec echo: the originating query's :meth:`~repro.api.query.Query.to_dict`.
    query: dict
    #: One JSON-friendly dict per grid cell, in cell-index order.
    rows: tuple = ()
    #: Headline scalars (see :func:`_headline_measures` / ``docs/api.md``).
    measures: dict = field(default_factory=dict)
    #: Whether *every* row's answer is certified exact (None for simulate).
    exact: Optional[bool] = None
    #: Aggregated decision-cache counters across rows (None when untracked).
    #: When the executing :class:`~repro.api.session.Session` reports its
    #: object-cache counters, they appear under the ``session`` sub-key
    #: (hits / misses / evictions of the graph, algorithm, runner and
    #: kernel caches combined).
    cache: Optional[dict] = None
    #: Batch-kernel summary across rows (backends/rules used; None when no
    #: row went through the kernel).
    kernel: Optional[dict] = None
    #: Timing summary: total wall time across cells.
    timing: dict = field(default_factory=dict)
    #: Per-query instrumentation profile (span tree summary + metrics
    #: snapshot, see :func:`repro.obs.build_profile`); ``None`` unless the
    #: query ran with observability on (``REPRO_OBS=on`` or
    #: ``repro query --profile``).  Volatile, like ``wall_time_s``.
    profile: Optional[dict] = None

    @classmethod
    def from_rows(
        cls,
        mode: str,
        query: Mapping,
        rows: Sequence[Mapping],
        session_cache: Optional[Mapping] = None,
        profile: Optional[Mapping] = None,
    ) -> "Result":
        """Assemble a Result from engine rows (aggregates computed here).

        ``session_cache`` optionally attaches the executing session's
        object-cache counters (hit/miss/eviction) under ``cache["session"]``;
        ``profile`` the instrumentation profile of the producing query.
        """
        rows = tuple(dict(row) for row in rows)
        if mode == "simulate":
            exact = None
        else:
            exact = bool(rows) and all(bool(row.get("exact")) for row in rows)
        cache = _aggregate_cache(rows)
        if session_cache is not None:
            cache = dict(cache or {})
            cache["session"] = dict(session_cache)
        return cls(
            mode=mode,
            query=dict(query),
            rows=rows,
            measures=_headline_measures(mode, rows),
            exact=exact,
            cache=cache,
            kernel=_aggregate_kernel(rows),
            timing={"wall_time_s": sum(row.get("wall_time_s", 0.0) for row in rows)},
            profile=dict(profile) if profile is not None else None,
        )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def table(self) -> Table:
        """Render the rows as the mode's standard ASCII table."""
        columns = _TABLE_COLUMNS[self.mode]
        measure = self.query.get("measure", "")
        titles = {
            "simulate": "simulate: both measures per instance",
            "worst-case": f"worst-case {measure} over identifier assignments",
            "sweep": f"sweep: worst-case {measure} over identifier assignments",
            "distribution": "dist: measure distributions over identifier assignments",
            "scale": "scale: sharded sampling on streamed topologies",
        }
        table = Table(columns=columns, title=titles[self.mode])
        for row in self.rows:
            table.add_row(**{name: self._cell(row, name) for name in columns})
        return table

    def profile_table(self) -> Table:
        """Render the profile's span tree as an ASCII table (hottest first).

        One row per aggregated span-tree node, indented by depth, with call
        count, total and self wall seconds and the share of the profile's
        total.  Raises :class:`~repro.errors.AnalysisError` when the result
        carries no profile (run with ``REPRO_OBS=on``, ``repro query
        --profile``, or enable :mod:`repro.obs` before querying).
        """
        if not self.profile:
            raise AnalysisError(
                "this result carries no profile; run the query with "
                "REPRO_OBS=on (or `repro query --profile`) to record one"
            )
        total = self.profile.get("total_s") or 0.0
        table = Table(
            columns=("span", "count", "total_s", "self_s", "share"),
            title="per-query span profile",
        )

        def walk(nodes, depth: int) -> None:
            for node in nodes:
                table.add_row(
                    span="  " * depth + node["name"],
                    count=node["count"],
                    total_s=f"{node['total_s']:.6f}",
                    self_s=f"{node['self_s']:.6f}",
                    share=f"{(node['total_s'] / total):.1%}" if total else "-",
                )
                walk(node.get("children", ()), depth + 1)

        walk(self.profile.get("spans", ()), 0)
        return table

    @staticmethod
    def _cell(row: Mapping, column: str):
        """One table cell (flattening the nested distribution statistics)."""
        if column == "cache_hit_rate":
            return (row.get("cache") or {}).get("hit_rate", 0.0)
        if column == "weight":
            return row["total_weight"]
        if column.startswith("avg_") or column.startswith("max_"):
            marginal = row["average"] if column.startswith("avg_") else row["max"]
            statistic = column.split("_", 1)[1]
            if statistic == "se":
                uncertainty = row.get("uncertainty") or {}
                value = (uncertainty.get("average") or {}).get("std_error")
                return "-" if value is None else value
            return marginal[statistic]
        return row.get(column)

    # ------------------------------------------------------------------
    # the versioned JSON document
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """The versioned plain-dict form of the whole result."""
        return {
            "kind": RESULT_KIND,
            "version": RESULT_VERSION,
            "mode": self.mode,
            "query": self.query,
            "rows": list(self.rows),
            "measures": self.measures,
            "exact": self.exact,
            "cache": self.cache,
            "kernel": self.kernel,
            "timing": self.timing,
            "profile": self.profile,
        }

    def to_json(self) -> str:
        """Serialise as a ``repro-result`` JSON document."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        """Write :meth:`to_json` to ``path`` atomically (temp + ``os.replace``).

        An interrupted ``repro query --output`` therefore never leaves a
        truncated document behind — the destination holds either the old
        content or the complete new one.
        """
        from repro.utils.io import atomic_write_text

        atomic_write_text(path, self.to_json())

    @classmethod
    def from_dict(cls, document: Mapping) -> "Result":
        """Parse a result document (native, or an adopted legacy kind).

        Native ``repro-result`` documents reconstruct the Result exactly.
        The two pre-API kinds are adopted by recomputing the aggregates
        from their rows: ``repro-sweep`` becomes a ``sweep`` result and
        ``repro-dist`` a ``distribution`` result (with an empty spec echo,
        since the legacy documents never recorded their spec).
        """
        if not isinstance(document, Mapping):
            raise AnalysisError(
                f"a result document must be an object, got {type(document).__name__}"
            )
        kind = document.get("kind")
        if kind == RESULT_KIND:
            if document.get("version") != RESULT_VERSION:
                raise AnalysisError(
                    f"unsupported {RESULT_KIND} version {document.get('version')!r} "
                    f"(this library reads version {RESULT_VERSION})"
                )
            return cls(
                mode=document["mode"],
                query=dict(document["query"]),
                rows=tuple(document["rows"]),
                measures=dict(document["measures"]),
                exact=document.get("exact"),
                cache=document.get("cache"),
                kernel=document.get("kernel"),
                timing=dict(document.get("timing") or {}),
                profile=document.get("profile"),
            )
        if kind == "repro-sweep":
            return cls.from_rows("sweep", {}, document["rows"])
        if kind == "repro-dist":
            return cls.from_rows("distribution", {}, document["rows"])
        raise AnalysisError(
            f"not a result document: kind={kind!r} (expected {RESULT_KIND}, "
            f"repro-sweep or repro-dist)"
        )

    @classmethod
    def from_json(cls, text: str) -> "Result":
        """Parse a document previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "Result":
        """Read a result (or adoptable legacy) JSON document from ``path``."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
