"""The unified query API — one façade over simulate · worst-case · distribution · sweep.

Four generations of entry points answered four kinds of question about the
paper's measures, each with its own argument conventions and result shapes.
This package is the consolidated public surface on top of all of them:

* :mod:`repro.api.query` — :class:`Query`, the declarative, validated spec
  (graph grid × algorithm × measure × mode × budget) that subsumes
  :class:`~repro.engine.campaign.CampaignSpec` and
  :class:`~repro.engine.campaign.DistSpec`, constructible from keyword
  arguments, a fluent builder, or a versioned JSON document;
* :mod:`repro.api.session` — :class:`Session`, the owner of shared
  execution infrastructure (cached graphs with their frontier plans and
  automorphism groups, decision caches, the process pool) behind
  ``session.simulate/worst_case/distribution/sweep``, plus the module-level
  default session behind :func:`repro.query <repro.api.session.query>`;
* :mod:`repro.api.results` — :class:`Result`, the single versioned result
  type every mode returns (spec echo, rows with certificates/standard
  errors, headline measures, cache stats, timing), with ``.table()`` and a
  JSON round trip.

The legacy entry points (``run_campaign``, ``run_dist_campaign``,
``worst_case_over_assignments``, ``evaluate_assignment``) remain as thin
delegating shims that emit :class:`DeprecationWarning`;
``tests/property/test_property_api.py`` asserts old-vs-new parity on
cycles, paths, trees and G(n, p).  See ``docs/api.md`` for the guide and
the JSON schemas.
"""

from repro.api.query import MODES, Query, QueryBuilder
from repro.api.results import Result
from repro.api.session import Session, default_session, query, reset_default_session
from repro.model.identifiers import ID_FAMILIES

__all__ = [
    "ID_FAMILIES",
    "MODES",
    "Query",
    "QueryBuilder",
    "Result",
    "Session",
    "default_session",
    "query",
    "reset_default_session",
]
