"""The declarative, validated query spec of the unified API.

A :class:`Query` describes one question about the paper's measures as pure
data — *which* grid of instances (topologies × sizes × algorithms), *which*
measure, *which* mode of answering (a single simulation, a worst case over
identifier assignments, the whole distribution, or a sweep campaign) and
*which* budgets — without running anything.  It unifies and subsumes the
engine's :class:`~repro.engine.campaign.CampaignSpec` and
:class:`~repro.engine.campaign.DistSpec`: both convert losslessly in either
direction, and every legacy argument convention (``seed=``, ``samples=``,
``workers=`` scattered across call sites) has exactly one home here.

A query can be built three ways:

* directly from keyword arguments — ``Query(mode="sweep", topologies="cycle",
  sizes=(8, 16))`` (scalars are promoted to 1-tuples);
* fluently, via :meth:`Query.builder`;
* from a versioned JSON document (``kind: "repro-query"``) with
  :meth:`Query.from_json` — the schema consumed by ``repro query --spec``.

Validation is eager and complete: every registry name (topology, algorithm,
adversary, distribution method, identifier family, measure) is checked at
construction time, so a misspelt grid fails before any simulation runs.
:class:`~repro.api.session.Session` executes queries;
:class:`~repro.api.results.Result` carries the answers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.algorithms.registry import algorithm_registry
from repro.core.measures import get_measure
from repro.engine.campaign import (
    ADVERSARY_NAMES,
    DIST_METHODS,
    TOPOLOGY_BUILDERS,
    CampaignSpec,
    DistSpec,
)
from repro.errors import ConfigurationError
from repro.kernel.shard import SCALE_ALGORITHMS
from repro.model.identifiers import ID_FAMILIES
from repro.topology.stream import STREAM_TOPOLOGIES

#: The five kinds of question the API answers.  ``scale`` is the
#: million-node sampling mode: streamed CSR topologies, sharded plan-free
#: kernel execution, sampling-only measures (see ``docs/performance.md``).
MODES = ("simulate", "worst-case", "distribution", "sweep", "scale")

#: Document tag and schema version of the JSON form (see ``docs/api.md``).
QUERY_KIND = "repro-query"
QUERY_VERSION = 1

#: Budget/execution fields excluded from the *family* hash: two sampling
#: queries that differ only here describe the same estimand, so a stored
#: result for one can be resumed (its estimators continued) to answer the
#: other.  ``workers`` never changes any row (the determinism contract);
#: ``samples`` is the resumable budget itself.
FAMILY_EXCLUDED_FIELDS = ("samples", "workers")


def _as_tuple(value, kind) -> tuple:
    """Promote a scalar to a 1-tuple and any sequence to a tuple."""
    if isinstance(value, (str, int)):
        return (value,)
    try:
        return tuple(value)
    except TypeError as exc:
        raise ConfigurationError(f"{kind} must be a name or a sequence, got {value!r}") from exc


@dataclass(frozen=True)
class Query:
    """One declarative question: graph grid × algorithm × measure × mode × budget.

    Scalar values are accepted wherever a tuple field is declared
    (``topologies="cycle"`` means ``("cycle",)``); all names are validated
    against the live registries at construction time.

    >>> Query(mode="sweep", topologies="cycle", sizes=8).topologies
    ('cycle',)
    >>> Query(topologies="hypercube")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown topology 'hypercube'; known: complete, cycle, gnp, grid, path, random-tree
    """

    #: One of :data:`MODES`.
    mode: str = "simulate"
    #: Names from :data:`repro.engine.campaign.TOPOLOGY_BUILDERS`.
    topologies: tuple = ("cycle",)
    #: Node counts of the grid.
    sizes: tuple = (8,)
    #: Registered algorithm names.
    algorithms: tuple = ("largest-id",)
    #: Measure name (``classic``/``average``/``sum``) or objective key.
    measure: str = "average"
    #: Identifier family for ``simulate`` mode (see :data:`ID_FAMILIES`).
    ids: str = "random"
    #: Adversary names for ``worst-case``/``sweep`` modes.
    adversaries: tuple = ("branch-and-bound",)
    #: Distribution methods (``exact``/``sample``) for ``distribution`` mode.
    methods: tuple = ("exact",)
    #: Base seed; every cell derives a private seed from it.
    seed: int = 0
    #: Randomised budget: random-search draws / Monte-Carlo samples per cell.
    samples: int = 64
    #: Local-search restarts per cell.
    restarts: int = 2
    #: Process fan-out (cells in ``sweep``/``distribution``, portfolio
    #: strategies in ``worst-case``).
    workers: int = 1
    #: Local-search swap candidates per step.
    swaps_per_step: int = 16
    #: Local-search step cap.
    max_steps: int = 32
    #: Node cap of the legacy exhaustive adversary.
    exhaustive_max_nodes: int = 9
    #: Node cap of the symmetry-pruned exact searches.
    exact_max_nodes: int = 12
    #: Cap on ``n!/|Aut|`` canonical classes for exact distributions.
    max_classes: int = 250_000
    #: ``scale`` mode: sampled assignment rows per sharded task.
    row_block: int = 4
    #: ``scale`` mode: centres per sharded task (the memory/fan-out knob).
    center_chunk: int = 65536

    def __post_init__(self) -> None:
        object.__setattr__(self, "topologies", _as_tuple(self.topologies, "topologies"))
        object.__setattr__(self, "sizes", _as_tuple(self.sizes, "sizes"))
        object.__setattr__(self, "algorithms", _as_tuple(self.algorithms, "algorithms"))
        object.__setattr__(self, "adversaries", _as_tuple(self.adversaries, "adversaries"))
        object.__setattr__(self, "methods", _as_tuple(self.methods, "methods"))
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; known: {', '.join(MODES)}"
            )
        for name in self.topologies:
            if name not in TOPOLOGY_BUILDERS:
                raise ConfigurationError(
                    f"unknown topology {name!r}; known: {', '.join(sorted(TOPOLOGY_BUILDERS))}"
                )
        registry = algorithm_registry()
        for name in self.algorithms:
            if name not in registry:
                raise ConfigurationError(
                    f"unknown algorithm {name!r}; known: {', '.join(sorted(registry))}"
                )
        for name in self.adversaries:
            if name not in ADVERSARY_NAMES:
                raise ConfigurationError(
                    f"unknown adversary {name!r}; known: {', '.join(ADVERSARY_NAMES)}"
                )
        for name in self.methods:
            if name not in DIST_METHODS:
                raise ConfigurationError(
                    f"unknown distribution method {name!r}; known: {', '.join(DIST_METHODS)}"
                )
        if self.ids not in ID_FAMILIES:
            raise ConfigurationError(
                f"unknown identifier family {self.ids!r}; known: {', '.join(sorted(ID_FAMILIES))}"
            )
        for n in self.sizes:
            if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
                raise ConfigurationError(f"sizes must be positive ints, got {n!r}")
        if self.samples <= 0:
            raise ConfigurationError(f"samples must be positive, got {self.samples}")
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        for knob, value in (("row_block", self.row_block), ("center_chunk", self.center_chunk)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigurationError(f"{knob} must be a positive int, got {value!r}")
        if self.mode == "scale":
            # The scale path has its own, stricter registries: only streamed
            # CSR families and plan-free (compile_scale_rule) algorithms.
            for name in self.topologies:
                if name not in STREAM_TOPOLOGIES:
                    raise ConfigurationError(
                        f"topology {name!r} does not stream; scale mode supports: "
                        f"{', '.join(STREAM_TOPOLOGIES)}"
                    )
            for name in self.algorithms:
                if name not in SCALE_ALGORITHMS:
                    raise ConfigurationError(
                        f"algorithm {name!r} has no scale rule; scale mode "
                        f"supports: {', '.join(sorted(SCALE_ALGORITHMS))}"
                    )
        try:
            get_measure(self.measure)
        except Exception as exc:  # AnalysisError; re-tag as a spec problem
            raise ConfigurationError(str(exc)) from exc

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def objective(self) -> str:
        """The adversary/trace objective key of :attr:`measure`."""
        return get_measure(self.measure).objective

    def with_changes(self, **changes) -> "Query":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # legacy-spec interop (Query subsumes CampaignSpec and DistSpec)
    # ------------------------------------------------------------------
    def to_campaign_spec(self) -> CampaignSpec:
        """The equivalent engine :class:`CampaignSpec` (worst-case/sweep grids)."""
        return CampaignSpec(
            topologies=self.topologies,
            sizes=self.sizes,
            algorithms=self.algorithms,
            adversaries=self.adversaries,
            objective=self.objective,
            seed=self.seed,
            samples=self.samples,
            restarts=self.restarts,
            swaps_per_step=self.swaps_per_step,
            max_steps=self.max_steps,
            exhaustive_max_nodes=self.exhaustive_max_nodes,
            exact_max_nodes=self.exact_max_nodes,
        )

    def to_dist_spec(self) -> DistSpec:
        """The equivalent engine :class:`DistSpec` (distribution grids)."""
        return DistSpec(
            topologies=self.topologies,
            sizes=self.sizes,
            algorithms=self.algorithms,
            methods=self.methods,
            seed=self.seed,
            samples=self.samples,
            exact_max_nodes=self.exact_max_nodes,
            max_classes=self.max_classes,
        )

    @classmethod
    def from_campaign_spec(cls, spec: CampaignSpec, mode: str = "sweep") -> "Query":
        """Adopt a legacy :class:`CampaignSpec` (mode defaults to ``sweep``)."""
        return cls(
            mode=mode,
            topologies=spec.topologies,
            sizes=spec.sizes,
            algorithms=spec.algorithms,
            adversaries=spec.adversaries,
            measure=spec.objective,
            seed=spec.seed,
            samples=spec.samples,
            restarts=spec.restarts,
            swaps_per_step=spec.swaps_per_step,
            max_steps=spec.max_steps,
            exhaustive_max_nodes=spec.exhaustive_max_nodes,
            exact_max_nodes=spec.exact_max_nodes,
        )

    @classmethod
    def from_dist_spec(cls, spec: DistSpec) -> "Query":
        """Adopt a legacy :class:`DistSpec` as a ``distribution`` query."""
        return cls(
            mode="distribution",
            topologies=spec.topologies,
            sizes=spec.sizes,
            algorithms=spec.algorithms,
            methods=spec.methods,
            seed=spec.seed,
            samples=spec.samples,
            exact_max_nodes=spec.exact_max_nodes,
            max_classes=spec.max_classes,
        )

    # ------------------------------------------------------------------
    # the versioned JSON document
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The versioned plain-dict form (``kind``/``version`` + all fields)."""
        document = {"kind": QUERY_KIND, "version": QUERY_VERSION}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            document[field.name] = list(value) if isinstance(value, tuple) else value
        return document

    def to_json(self) -> str:
        """Serialise as a ``repro-query`` JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # ------------------------------------------------------------------
    # content addressing (the service's cache keys, see docs/service.md)
    # ------------------------------------------------------------------
    def canonical_preimage(self) -> str:
        """The canonical serialisation the content hash is computed over.

        Compact key-sorted JSON of :meth:`to_dict` — i.e. of the *validated*
        query, after scalar→tuple promotion and with every defaulted field
        written out explicitly, with the document kind and schema version in
        the preimage.  Two semantically equal queries (scalar vs tuple
        spellings, any key order, defaulted vs explicit fields) therefore
        serialise identically, and a schema bump re-keys the store.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def canonical_hash(self) -> str:
        """The content address of this query: SHA-256 of the canonical preimage.

        Stable across processes and interpreters (no dependence on
        ``PYTHONHASHSEED``): the exact-result store keys on it, because
        exact answers are pure functions of the spec.

        >>> Query(topologies="cycle").canonical_hash() == Query(
        ...     topologies=("cycle",)).canonical_hash()
        True
        """
        return hashlib.sha256(self.canonical_preimage().encode("ascii")).hexdigest()

    def family_hash(self) -> str:
        """The resume key: the canonical hash minus the resumable budgets.

        Strips :data:`FAMILY_EXCLUDED_FIELDS` (``samples``, ``workers``)
        from the preimage and tags it as a family document, so a sampling
        query finds stored estimator state written under a smaller budget.
        """
        document = self.to_dict()
        document["kind"] = QUERY_KIND + "-family"
        for field in FAMILY_EXCLUDED_FIELDS:
            document.pop(field, None)
        preimage = json.dumps(
            document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
        return hashlib.sha256(preimage.encode("ascii")).hexdigest()

    @classmethod
    def from_dict(cls, document: Mapping) -> "Query":
        """Parse the dict form; unknown keys and wrong kind/version are errors.

        >>> Query.from_dict({"kind": "repro-query", "version": 1, "mode": "sweep"}).mode
        'sweep'
        """
        if not isinstance(document, Mapping):
            raise ConfigurationError(f"a query document must be an object, got {type(document).__name__}")
        if document.get("kind") != QUERY_KIND:
            raise ConfigurationError(
                f"not a {QUERY_KIND} document: kind={document.get('kind')!r}"
            )
        if document.get("version") != QUERY_VERSION:
            raise ConfigurationError(
                f"unsupported {QUERY_KIND} version {document.get('version')!r} "
                f"(this library reads version {QUERY_VERSION})"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        fields = {}
        for key, value in document.items():
            if key in ("kind", "version"):
                continue
            if key not in known:
                raise ConfigurationError(
                    f"unknown query field {key!r}; known: {', '.join(sorted(known))}"
                )
            fields[key] = value
        return cls(**fields)

    @classmethod
    def from_json(cls, text: str) -> "Query":
        """Parse a document previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "Query":
        """Read a ``repro-query`` JSON document from ``path``."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def builder(cls, mode: str = "simulate") -> "QueryBuilder":
        """Start a fluent :class:`QueryBuilder` (terminated by ``.build()``)."""
        return QueryBuilder(mode)


class QueryBuilder:
    """Fluent construction of a :class:`Query`; every method returns ``self``.

    >>> (Query.builder().worst_case().on("cycle").sizes(8)
    ...     .adversaries("branch-and-bound").measure("sum").build().mode)
    'worst-case'
    """

    def __init__(self, mode: str = "simulate") -> None:
        self._fields: dict = {"mode": mode}

    # -- mode selectors -------------------------------------------------
    def simulate(self) -> "QueryBuilder":
        """Answer with single runs (one per grid cell)."""
        self._fields["mode"] = "simulate"
        return self

    def worst_case(self) -> "QueryBuilder":
        """Answer with the worst case over identifier assignments."""
        self._fields["mode"] = "worst-case"
        return self

    def distribution(self) -> "QueryBuilder":
        """Answer with the measure distribution over assignments."""
        self._fields["mode"] = "distribution"
        return self

    def sweep(self) -> "QueryBuilder":
        """Answer with a full campaign grid of adversarial searches."""
        self._fields["mode"] = "sweep"
        return self

    def scale(self) -> "QueryBuilder":
        """Answer with sharded million-node sampling (streamed topologies)."""
        self._fields["mode"] = "scale"
        return self

    # -- the grid -------------------------------------------------------
    def on(self, *topologies: str) -> "QueryBuilder":
        """Set the topology names of the grid."""
        self._fields["topologies"] = topologies
        return self

    def sizes(self, *sizes: int) -> "QueryBuilder":
        """Set the node counts of the grid."""
        self._fields["sizes"] = sizes
        return self

    def algorithms(self, *names: str) -> "QueryBuilder":
        """Set the registered algorithm names of the grid."""
        self._fields["algorithms"] = names
        return self

    def measure(self, name: str) -> "QueryBuilder":
        """Set the measure (``classic``/``average``/``sum`` or objective key)."""
        self._fields["measure"] = name
        return self

    def identifiers(self, family: str) -> "QueryBuilder":
        """Set the identifier family used by ``simulate`` mode."""
        self._fields["ids"] = family
        return self

    def adversaries(self, *names: str) -> "QueryBuilder":
        """Set the adversaries raced by ``worst-case``/``sweep`` modes."""
        self._fields["adversaries"] = names
        return self

    def methods(self, *names: str) -> "QueryBuilder":
        """Set the distribution methods (``exact``/``sample``)."""
        self._fields["methods"] = names
        return self

    # -- budgets --------------------------------------------------------
    def budget(self, **budgets) -> "QueryBuilder":
        """Set budget fields (``seed``, ``samples``, ``restarts``, ``workers``, ...)."""
        self._fields.update(budgets)
        return self

    def build(self) -> Query:
        """Validate and freeze the accumulated fields into a :class:`Query`."""
        return Query(**self._fields)
