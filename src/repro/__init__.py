"""repro — Average complexity for the LOCAL model.

A Python reproduction of Feuilloley, *Brief Announcement: Average Complexity
for the LOCAL Model* (PODC 2015).  The library provides:

* a LOCAL-model simulator in both of the paper's formulations (ball views
  and synchronous message passing), with per-node radius accounting;
* the paper's algorithms (largest-ID on a cycle, Cole–Vishkin 3-colouring)
  plus greedy baselines;
* the *average* and *classic* complexity measures, worst-case over
  identifier assignments, with exhaustive and heuristic adversaries;
* the theory toolkit behind the paper's two results (the segment recurrence
  and OEIS A000788; Linial's threshold, the regularity lemmas and the slice
  construction of Theorem 1); and
* the applications sketched in the introduction (dynamic-network repair and
  parallel simulation), an experiment harness (E1-E12) and benchmarks; and
* a high-throughput execution engine (:mod:`repro.engine`) — incremental
  frontier ball growth, memoised decisions, multiprocessing fan-out and
  declarative sweep campaigns — that powers all of the above; and
* a second-generation adversary search (:mod:`repro.search`) — graph
  automorphism pruning, exact branch and bound with certificates,
  incremental swap evaluation and a parallel strategy portfolio — for the
  outer worst-case-over-assignments maximisation; and
* a distributional measure layer (:mod:`repro.dist`) — the exact joint
  distribution of both measures over all ``n!`` identifier assignments
  (orbit-weighted canonical enumeration, ``n!/|Aut|`` simulations) and
  seeded streaming Monte-Carlo estimators with standard errors; and
* the batch kernel (:mod:`repro.kernel`) — compiled instances that flatten
  one ``(graph, algorithm)`` pair into integer arrays and evaluate whole
  matrices of identifier assignments per call, with a numpy fast path and
  a pure-stdlib fallback (``REPRO_KERNEL={numpy,python}``); and
* the unified query API (:mod:`repro.api`) — one declarative, validated
  :class:`Query` over all four answer modes (simulate, worst-case,
  distribution, sweep), executed by a cache-owning :class:`Session` and
  answered with a single versioned :class:`Result` type; and
* the cross-cutting instrumentation subsystem (:mod:`repro.obs`) —
  hierarchical spans, a process-wide metrics registry, per-query
  ``profile`` blocks and Chrome trace export, switched by
  ``REPRO_OBS={on,off}`` and near-free while off; and
* the query service (:mod:`repro.service`) — ``repro serve``: a stdlib
  HTTP front door over a persistent content-addressed result store
  (compute once, serve forever), a multi-process worker pool, and
  resumable sampling estimates whose confidence intervals tighten across
  requests.

Quick start::

    import repro

    result = repro.query(mode="simulate", topologies="cycle", sizes=64, seed=1)
    print(result.measures)           # {'classic': ..., 'average': ..., 'sum': ...}

    worst = repro.query("worst-case", topologies="cycle", sizes=10,
                        adversaries="branch-and-bound", measure="average")
    print(worst.exact, worst.measures)
"""

from repro.algorithms import (
    BallSimulationOfRounds,
    ColeVishkinRing,
    FullGatherRoundAlgorithm,
    GreedyColoringByID,
    GreedyMISByID,
    LargestIdAlgorithm,
    make_algorithm,
)
from repro.core import (
    BallAlgorithm,
    ExhaustiveAdversary,
    LocalSearchAdversary,
    RandomSearchAdversary,
    certify,
    evaluate_assignment,
    fit_growth,
    run_ball_algorithm,
    worst_case_over_assignments,
)
from repro.dist import (
    DiscreteDistribution,
    RoundDistribution,
    exact_round_distribution,
    sample_round_distribution,
)
from repro.engine import (
    BatchExecutor,
    CampaignSpec,
    DecisionCache,
    FrontierRunner,
    run_campaign,
    run_simulation_batch,
)
from repro.core.measures import Measure, exact_worst_case, get_measure
from repro.errors import (
    AlgorithmError,
    AnalysisError,
    CertificationError,
    ConfigurationError,
    ExperimentError,
    IdentifierError,
    ReproError,
    TopologyError,
)
from repro.model import (
    BallView,
    ExecutionTrace,
    Graph,
    IdentifierAssignment,
    RoundAlgorithm,
    extract_ball,
    random_assignment,
    run_round_algorithm,
)
from repro.search import (
    BranchAndBoundAdversary,
    PortfolioAdversary,
    PrunedExhaustiveAdversary,
    SwapEvaluator,
    automorphism_group,
)
from repro.topology import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)

# The unified query API sits on top of every other layer, so it is imported
# last; `repro.query(...)` is the library's declarative front door.
from repro.api import (
    ID_FAMILIES,
    Query,
    QueryBuilder,
    Result,
    Session,
    default_session,
    query,
)

# The query service sits on top of the API (store-backed `repro serve`).
from repro.service import QueryService, ResultStore

__version__ = "1.4.0"

__all__ = [
    "AlgorithmError",
    "AnalysisError",
    "BallAlgorithm",
    "BallSimulationOfRounds",
    "BallView",
    "BatchExecutor",
    "BranchAndBoundAdversary",
    "CampaignSpec",
    "CertificationError",
    "ColeVishkinRing",
    "ConfigurationError",
    "DecisionCache",
    "DiscreteDistribution",
    "ExecutionTrace",
    "ExhaustiveAdversary",
    "ExperimentError",
    "FrontierRunner",
    "FullGatherRoundAlgorithm",
    "Graph",
    "GreedyColoringByID",
    "GreedyMISByID",
    "ID_FAMILIES",
    "IdentifierAssignment",
    "IdentifierError",
    "LargestIdAlgorithm",
    "LocalSearchAdversary",
    "Measure",
    "PortfolioAdversary",
    "PrunedExhaustiveAdversary",
    "Query",
    "QueryBuilder",
    "QueryService",
    "RandomSearchAdversary",
    "ReproError",
    "Result",
    "ResultStore",
    "RoundAlgorithm",
    "RoundDistribution",
    "Session",
    "SwapEvaluator",
    "TopologyError",
    "__version__",
    "automorphism_group",
    "certify",
    "complete_graph",
    "cycle_graph",
    "default_session",
    "evaluate_assignment",
    "exact_round_distribution",
    "exact_worst_case",
    "extract_ball",
    "fit_growth",
    "get_measure",
    "grid_graph",
    "make_algorithm",
    "path_graph",
    "query",
    "random_assignment",
    "random_tree",
    "run_ball_algorithm",
    "run_campaign",
    "run_round_algorithm",
    "run_simulation_batch",
    "sample_round_distribution",
    "worst_case_over_assignments",
]
