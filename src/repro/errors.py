"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so that callers can catch library-level failures with a
single ``except`` clause while letting genuine bugs (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid (e.g. a negative graph size)."""


class TopologyError(ReproError):
    """A graph does not satisfy the structural assumptions of an algorithm.

    Raised, for instance, when a cycle-only algorithm is run on a tree, or
    when a port numbering is inconsistent.
    """


class IdentifierError(ReproError):
    """An identifier assignment is malformed (duplicates, wrong domain, ...)."""


class AlgorithmError(ReproError):
    """An algorithm violated the execution contract.

    Examples: refusing to output even after seeing the entire graph, or
    producing an output outside the problem's output domain.
    """


class CertificationError(ReproError):
    """A produced global output fails the problem's validity predicate."""


class AnalysisError(ReproError):
    """A statistical or curve-fitting routine received unusable data."""


class ExperimentError(ReproError):
    """An experiment was configured or executed inconsistently."""
