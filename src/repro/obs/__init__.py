"""Observability: hierarchical spans, process metrics, per-query profiles.

The instrumentation subsystem of the library (``docs/observability.md``),
cross-cutting every execution layer:

* :mod:`repro.obs.spans` — hierarchical span tracing (``with
  span("dist.exact"):``) with Chrome trace-event export, switched by
  ``REPRO_OBS={on,off}`` and free when off (the no-op singleton pattern);
* :mod:`repro.obs.metrics` — the process-wide counter/gauge/timer registry
  the scattered cache/kernel/search counters publish into.

:func:`build_profile` combines both into the ``profile`` block a
:class:`~repro.api.results.Result` carries when instrumentation is on:
the aggregated span tree of one query plus a metrics snapshot.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    add,
    metrics_snapshot,
    observe,
    registry,
    reset_metrics,
    set_gauge,
)
from repro.obs.spans import (
    NOOP_SPAN,
    OBS_ENV,
    OBS_MODES,
    Span,
    Tracer,
    chrome_trace_events,
    disable,
    enable,
    finished_roots,
    obs_enabled,
    reset_spans,
    span,
    summarize_spans,
    top_spans,
    tracer,
    write_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "NOOP_SPAN",
    "OBS_ENV",
    "OBS_MODES",
    "Span",
    "Tracer",
    "add",
    "build_profile",
    "chrome_trace_events",
    "disable",
    "enable",
    "finished_roots",
    "metrics_snapshot",
    "obs_enabled",
    "observe",
    "registry",
    "reset_metrics",
    "reset_spans",
    "set_gauge",
    "span",
    "summarize_spans",
    "top_spans",
    "tracer",
    "write_chrome_trace",
]


def build_profile(root) -> dict:
    """The ``profile`` block of one query: its span tree + a metrics snapshot.

    ``root`` is the query's finished root :class:`~repro.obs.spans.Span`;
    the summary tree covers exactly that query's spans, while the metrics
    snapshot is the process-wide registry state at profile time (documented
    as such in ``docs/api.md``).
    """
    return {
        "spans": summarize_spans([root]),
        "metrics": metrics_snapshot(),
        "total_s": root.duration_s,
    }
