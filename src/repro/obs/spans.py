"""Hierarchical span tracing with a near-zero disabled path.

A **span** is one timed region of work — ``with span("dist.exact", n=8):``
— and spans opened while another span is active become its children, so a
query leaves behind a tree mirroring the call structure: the Session's
``api.query`` root, the campaign cells under it, the kernel batches under
those.  Each span records its wall time (``time.perf_counter``) and a small
dict of attributes.

The whole subsystem follows the ``REPRO_KERNEL`` pattern of
:mod:`repro.kernel.backend`: the switch is **resolved once per process**,
on first use, from ``REPRO_OBS`` (``on`` or ``off``, default off) and then
frozen; :func:`enable` / :func:`disable` override it explicitly (the CLI's
``--profile`` / ``--trace`` flags, the benchmarks).  While disabled,
:func:`span` returns the process-wide :data:`NOOP_SPAN` singleton — no
span object is ever allocated, a guarantee the test suite enforces with a
subprocess check — so instrumented hot paths cost one module-global read.

Finished root spans accumulate on a process-wide :class:`Tracer` (bounded:
the oldest roots are dropped beyond :data:`MAX_ROOT_SPANS`, and a parent
folds children beyond :data:`MAX_CHILD_SPANS` into an aggregate instead of
retaining them), from which three read-out forms are derived:

* :func:`summarize_spans` — the aggregated span tree (name, call count,
  total and self wall time) that becomes the ``profile`` block of a
  :class:`~repro.api.results.Result`;
* :func:`top_spans` — the flattened hottest-first view the CLI prints;
* :func:`write_chrome_trace` — Chrome trace-event JSON (``ph: "X"``
  complete events), loadable in ``chrome://tracing`` or Perfetto.

The tracer is process-global and not thread-safe, matching the library's
single-threaded execution model (parallelism is process-based).
"""

from __future__ import annotations

import json
import os
from collections import deque
from time import perf_counter
from typing import Iterable, Optional, Sequence

from repro.errors import ConfigurationError

#: Environment variable switching the instrumentation on or off.
OBS_ENV = "REPRO_OBS"

#: The recognised ``REPRO_OBS`` values (unset means ``off``).
OBS_MODES = ("on", "off")

#: Bound on retained finished *root* spans (oldest dropped beyond it), so
#: an instrumented long-running process keeps flat memory.
MAX_ROOT_SPANS = 4096

#: Bound on retained children per parent span.  Beyond it a child is still
#: timed but folded into the parent's per-name aggregate (count + total
#: seconds) instead of being kept as an object — exhaustive adversaries run
#: the engine once per assignment, and none of the read-outs need more than
#: the aggregate for those.
MAX_CHILD_SPANS = 8192


def _resolve_default() -> bool:
    """Resolve the process default from ``REPRO_OBS`` (unset = off)."""
    requested = os.environ.get(OBS_ENV, "").strip().lower()
    if requested in ("", "off"):
        return False
    if requested == "on":
        return True
    raise ConfigurationError(
        f"{OBS_ENV} must be one of {', '.join(OBS_MODES)}; got {requested!r}"
    )


#: The process-wide switch; ``None`` until first use, then frozen (or set
#: explicitly through :func:`enable` / :func:`disable`).
_state: Optional[bool] = None


def obs_enabled() -> bool:
    """Whether instrumentation is on (resolving ``REPRO_OBS`` on first use)."""
    global _state
    if _state is None:
        _state = _resolve_default()
    return _state


def enable() -> None:
    """Switch instrumentation on, overriding the environment resolution."""
    global _state
    _state = True


def disable() -> None:
    """Switch instrumentation off, overriding the environment resolution."""
    global _state
    _state = False


class _NoopSpan:
    """The do-nothing span returned while instrumentation is disabled.

    A process-wide singleton (:data:`NOOP_SPAN`): identity-comparable, so a
    subprocess test can assert that disabled hot paths never allocate.
    """

    __slots__ = ()

    #: Discriminates real spans (profile attachment checks this).
    enabled = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        """Ignore the attributes (the enabled-span API, at zero cost)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<noop span>"


#: The singleton every :func:`span` call returns while disabled.
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of work in the span tree.

    Use through :func:`span` as a context manager; entering records the
    start time and pushes the span on the tracer stack (making it the
    parent of spans opened inside), exiting records the end time and
    attaches it to its parent (or to the tracer's finished roots).
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "children", "overflow")

    #: Discriminates real spans from :data:`NOOP_SPAN`.
    enabled = True

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s = 0.0
        self.children: list["Span"] = []
        #: Folded children beyond :data:`MAX_CHILD_SPANS`:
        #: name -> [count, total_seconds].
        self.overflow: Optional[dict] = None

    @property
    def duration_s(self) -> float:
        """Wall seconds between enter and exit (0.0 while still open)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes after creation; returns self."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        _tracer.stack.append(self)
        self.start_s = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = perf_counter()
        stack = _tracer.stack
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            parent = stack[-1]
            if len(parent.children) < MAX_CHILD_SPANS:
                parent.children.append(self)
            else:
                folded = parent.overflow
                if folded is None:
                    folded = parent.overflow = {}
                entry = folded.get(self.name)
                if entry is None:
                    folded[self.name] = [1, self.duration_s]
                else:
                    entry[0] += 1
                    entry[1] += self.duration_s
        else:
            roots = _tracer.roots
            if len(roots) == roots.maxlen:
                _tracer.dropped_roots += 1
            roots.append(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span {self.name!r} {self.duration_s:.6f}s>"


class Tracer:
    """Process-wide holder of the span stack and the finished root spans.

    ``roots`` is bounded (:data:`MAX_ROOT_SPANS`, oldest dropped first,
    counted in ``dropped_roots``); ``origin_s`` anchors the Chrome trace
    timeline so exported timestamps start near zero.
    """

    def __init__(self) -> None:
        self.stack: list[Span] = []
        self.roots: deque = deque(maxlen=MAX_ROOT_SPANS)
        self.origin_s = perf_counter()
        self.dropped_roots = 0

    def reset(self) -> None:
        """Drop every recorded span and restart the export timeline."""
        self.stack.clear()
        self.roots.clear()
        self.origin_s = perf_counter()
        self.dropped_roots = 0


#: The process-wide tracer behind :func:`span`.
_tracer = Tracer()


def tracer() -> Tracer:
    """The process-wide :class:`Tracer` (for export and inspection)."""
    return _tracer


def span(name: str, **attrs):
    """Open a span named ``name`` (a context manager).

    While instrumentation is disabled this returns :data:`NOOP_SPAN`
    without allocating anything; while enabled it returns a fresh
    :class:`Span` carrying ``attrs``.

    >>> from repro.obs import spans
    >>> spans.enable(); spans.reset_spans()
    >>> with spans.span("dist.exact", n=6):
    ...     with spans.span("kernel.simulate_batch", rows=3):
    ...         pass
    >>> [root.name for root in spans.finished_roots()]
    ['dist.exact']
    >>> spans.disable()
    >>> spans.span("dist.exact") is spans.NOOP_SPAN
    True
    """
    state = _state
    if not (state if state is not None else obs_enabled()):
        return NOOP_SPAN
    return Span(name, attrs or None)


def reset_spans() -> None:
    """Clear all recorded spans (the CLI calls this before a traced query)."""
    _tracer.reset()


def finished_roots() -> list[Span]:
    """The finished root spans recorded so far, oldest first."""
    return list(_tracer.roots)


# ----------------------------------------------------------------------
# read-outs: aggregated tree, hottest-first list, Chrome trace
# ----------------------------------------------------------------------
def summarize_spans(roots: Optional[Iterable] = None) -> list[dict]:
    """Aggregate a span forest by name into a JSON-friendly summary tree.

    Sibling spans sharing a name merge into one node with ``count``,
    ``total_s`` (summed wall time), ``self_s`` (total minus the children's
    totals) and recursively summarised ``children`` (hottest first).
    Children a parent folded beyond :data:`MAX_CHILD_SPANS` re-enter the
    summary from the fold, so the tree's times stay complete.
    """
    spans_list = finished_roots() if roots is None else list(roots)
    return _summarize(spans_list)


def _summarize(spans_list: Sequence) -> list[dict]:
    buckets: dict[str, dict] = {}
    for item in spans_list:
        bucket = buckets.get(item.name)
        if bucket is None:
            bucket = buckets[item.name] = {
                "count": 0,
                "total_s": 0.0,
                "children": [],
                "overflow": {},
            }
        bucket["count"] += 1
        bucket["total_s"] += item.duration_s
        bucket["children"].extend(item.children)
        if item.overflow:
            for name, (count, total_s) in item.overflow.items():
                entry = bucket["overflow"].get(name)
                if entry is None:
                    bucket["overflow"][name] = [count, total_s]
                else:
                    entry[0] += count
                    entry[1] += total_s
    nodes = []
    for name, bucket in buckets.items():
        children = _summarize(bucket["children"])
        for folded_name, (count, total_s) in sorted(bucket["overflow"].items()):
            for child in children:
                if child["name"] == folded_name:
                    child["count"] += count
                    child["total_s"] += total_s
                    child["self_s"] += total_s
                    break
            else:
                children.append(
                    {
                        "name": folded_name,
                        "count": count,
                        "total_s": total_s,
                        "self_s": total_s,
                        "children": [],
                    }
                )
        children.sort(key=lambda child: child["total_s"], reverse=True)
        child_total = sum(child["total_s"] for child in children)
        nodes.append(
            {
                "name": name,
                "count": bucket["count"],
                "total_s": bucket["total_s"],
                "self_s": max(0.0, bucket["total_s"] - child_total),
                "children": children,
            }
        )
    nodes.sort(key=lambda node: node["total_s"], reverse=True)
    return nodes


def top_spans(summary: Sequence[dict], k: int = 3) -> list[dict]:
    """The ``k`` hottest summary nodes by *self* time, flattened.

    Self time (wall time not covered by child spans) ranks the nodes, so
    wrapper spans that merely contain hot children do not crowd out the
    leaves actually burning the time.  Entries keep ``name`` / ``count`` /
    ``total_s`` / ``self_s`` but drop the subtree.
    """
    flat: list[dict] = []

    def walk(nodes: Sequence[dict]) -> None:
        for node in nodes:
            flat.append(
                {
                    "name": node["name"],
                    "count": node["count"],
                    "total_s": node["total_s"],
                    "self_s": node["self_s"],
                }
            )
            walk(node["children"])

    walk(summary)
    flat.sort(key=lambda node: node["self_s"], reverse=True)
    return flat[: max(0, k)]


def chrome_trace_events(roots: Optional[Iterable] = None) -> list[dict]:
    """The span forest as Chrome trace-event dicts (``ph: "X"`` completes).

    Timestamps and durations are microseconds relative to the tracer's
    origin; nesting is implied by time containment, exactly how
    ``chrome://tracing`` and Perfetto render complete events.
    """
    spans_list = finished_roots() if roots is None else list(roots)
    origin = _tracer.origin_s
    pid = os.getpid()
    events: list[dict] = []

    def emit(item) -> None:
        event = {
            "name": item.name,
            "ph": "X",
            "ts": round((item.start_s - origin) * 1e6, 3),
            "dur": round(item.duration_s * 1e6, 3),
            "pid": pid,
            "tid": 1,
            "cat": item.name.split(".", 1)[0],
        }
        if item.attrs:
            event["args"] = dict(item.attrs)
        events.append(event)
        for child in item.children:
            emit(child)

    for root in spans_list:
        emit(root)
    return events


def write_chrome_trace(path: str, roots: Optional[Iterable] = None) -> int:
    """Write the span forest as a Chrome trace-event JSON file.

    The document is the object form (``{"traceEvents": [...]}``) both
    ``chrome://tracing`` and Perfetto load directly; returns the number of
    events written.
    """
    events = chrome_trace_events(roots)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return len(events)
