"""The process-wide metrics registry: counters, gauges and timers.

Before this module the library's operational counters were scattered —
:class:`~repro.engine.cache.CacheStats` hit/miss pairs, the session's
:class:`~repro.api.session._LruCache` counters, the kernel's
:class:`~repro.kernel.compile.KernelStats`, the branch-and-bound pruning
dict — each with its own read-out.  Those cheap local counters stay (they
are load-bearing inside the hot loops); what this registry adds is one
**publication surface**: at each subsystem's existing bulk flush point the
local counts are pushed into named process-wide metrics, so a single
:func:`snapshot` answers "what did this process do" across every layer.

Naming follows the span convention (``layer.metric``, see
``docs/observability.md`` for the catalog): ``engine.decide_hits``,
``kernel.rows``, ``search.pruned_by_symmetry``, ``api.queries``, ...

The module-level helpers :func:`add`, :func:`set_gauge` and
:func:`observe` are gated on the same ``REPRO_OBS`` switch as the spans
(:func:`repro.obs.spans.obs_enabled`): while instrumentation is disabled
they return after one module-global check and allocate nothing.  Direct
:func:`registry` access is never gated — tests and tools that want to
count regardless of the switch may.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import spans as _spans


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        """Add ``delta`` (default 1) to the counter."""
        self.value += delta


class Gauge:
    """A point-in-time value metric (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value


class Timer:
    """An accumulating duration metric (observation count + total seconds)."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observed duration."""
        self.count += 1
        self.total_s += seconds


class MetricsRegistry:
    """A named collection of counters, gauges and timers.

    Instruments are created on first access and live for the registry's
    lifetime; :meth:`snapshot` renders everything JSON-friendly and
    :meth:`reset` drops all instruments (tests, per-run isolation).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first access)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first access)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def timer(self, name: str) -> Timer:
        """The timer named ``name`` (created on first access)."""
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer()
        return instrument

    def snapshot(self) -> dict:
        """JSON-friendly state of every instrument, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "timers": {
                name: {
                    "count": self._timers[name].count,
                    "total_s": self._timers[name].total_s,
                }
                for name in sorted(self._timers)
            },
        }

    def reset(self) -> None:
        """Drop every instrument (counts restart from zero)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


#: The process-wide registry behind the module-level helpers.
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` (never gated)."""
    return _registry


def add(name: str, delta: int = 1) -> None:
    """Increment counter ``name`` by ``delta`` — no-op while obs is off.

    >>> from repro.obs import metrics, spans
    >>> spans.enable(); metrics.reset_metrics()
    >>> metrics.add("kernel.rows", 256)
    >>> metrics.metrics_snapshot()["counters"]["kernel.rows"]
    256
    >>> spans.disable(); metrics.add("kernel.rows", 256)
    >>> metrics.metrics_snapshot()["counters"]["kernel.rows"]
    256
    """
    if _spans.obs_enabled():
        _registry.counter(name).inc(delta)


def set_gauge(name: str, value) -> None:
    """Set gauge ``name`` to ``value`` — no-op while obs is off."""
    if _spans.obs_enabled():
        _registry.gauge(name).set(value)


def observe(name: str, seconds: float) -> None:
    """Record a duration on timer ``name`` — no-op while obs is off."""
    if _spans.obs_enabled():
        _registry.timer(name).observe(seconds)


def metrics_snapshot() -> dict:
    """JSON-friendly snapshot of the process-wide registry."""
    return _registry.snapshot()


def reset_metrics() -> None:
    """Reset the process-wide registry (counts restart from zero)."""
    _registry.reset()
