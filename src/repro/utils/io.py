"""Crash-safe file writes.

Every JSON artifact the library persists — ``repro-result`` documents,
campaign row dumps, the service's content-addressed store objects and its
manifest — goes through :func:`atomic_write_text`: the content is written to
a temporary sibling file and moved into place with :func:`os.replace`, which
is atomic on POSIX and Windows.  An interrupted run therefore never leaves a
truncated document at the destination path: readers observe either the old
content or the new content, nothing in between.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` via a temporary file and :func:`os.replace`.

    The temporary file lives in the destination directory (``os.replace``
    must not cross filesystems) and is cleaned up on any write failure, so a
    crash mid-write leaves the destination untouched and no stray temp file
    behind on the happy path.
    """
    path = Path(path)
    directory = path.parent
    if directory and not directory.exists():
        directory.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(directory) or None
    )
    try:
        with os.fdopen(descriptor, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: Union[str, Path], document) -> None:
    """Serialise ``document`` as indented, key-sorted JSON and write atomically."""
    import json

    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
