"""Shared utilities: validation helpers, deterministic RNG management and
plain-text table rendering used by the experiment harness."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import Table, format_table
from repro.utils.validation import (
    require,
    require_non_negative_int,
    require_positive_int,
    require_probability,
)

__all__ = [
    "Table",
    "format_table",
    "make_rng",
    "require",
    "require_non_negative_int",
    "require_positive_int",
    "require_probability",
    "spawn_rngs",
]
