"""Small mathematical helpers shared across layers.

The iterated logarithm lives here (rather than only in :mod:`repro.theory`)
because the analysis layer uses it as one of its candidate growth functions
and the theory layer builds the Linial bound on top of it; keeping the
definition in a leaf module avoids an import cycle between those packages.
"""

from __future__ import annotations

import math


def log_star(value: float, base: float = 2.0) -> int:
    """The iterated logarithm ``log*``: how many times ``log`` must be applied
    to ``value`` before the result drops to at most 1.

    ``log*`` of anything at most 1 is 0.  For base 2: ``log*(2) = 1``,
    ``log*(4) = 2``, ``log*(16) = 3``, ``log*(65536) = 4`` and ``log*`` of
    every astronomically larger practical input is 5.
    """
    if base <= 1:
        raise ValueError(f"base must exceed 1, got {base}")
    if value != value:  # NaN
        raise ValueError("log_star is undefined for NaN")
    count = 0
    current = float(value)
    while current > 1.0:
        current = math.log(current, base)
        count += 1
        if count > 256:  # unreachable for finite floats; guards against bugs
            raise ValueError(f"log_star did not converge for value {value!r}")
    return count


def power_tower(height: int, base: float = 2.0) -> float:
    """The tower function ``base ^ base ^ ... ^ base`` of the given height.

    ``power_tower(0) == 1``; the tower function is the inverse of
    :func:`log_star` in the sense that ``log_star(power_tower(h)) == h``
    for small heights.  Overflows to ``math.inf`` for heights above 5.
    """
    if height < 0:
        raise ValueError(f"height must be non-negative, got {height}")
    result = 1.0
    for _ in range(height):
        try:
            result = base**result
        except OverflowError:
            return math.inf
    return result


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n = 1 + 1/2 + ... + 1/n``.

    Appears in the exact expectation of the largest-ID algorithm's average
    radius under a uniformly random identifier permutation.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return sum(1.0 / k for k in range(1, n + 1))
