"""Deterministic random-number management.

Every stochastic component of the library (identifier permutations, random
topologies, Monte-Carlo experiments) takes either an integer seed or an
existing :class:`random.Random` instance.  Centralising the conversion in
:func:`make_rng` keeps experiments reproducible: re-running a benchmark with
the same seed yields bit-identical series.
"""

from __future__ import annotations

import random
from typing import Optional, Union

SeedLike = Union[None, int, random.Random]

_DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` built from ``seed``.

    ``None`` maps to a fixed library-wide default so that *forgetting* a seed
    still produces deterministic runs; pass an explicit integer to vary the
    stream, or an existing ``Random`` to share state with the caller.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(_DEFAULT_SEED)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be None, an int, or a random.Random, got {seed!r}")
    return random.Random(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[random.Random]:
    """Derive ``count`` independent generators from a single seed.

    Useful when an experiment runs several independent repetitions and wants
    each repetition to own a private stream (so that adding repetitions does
    not perturb earlier ones).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    master = make_rng(seed)
    return [random.Random(master.getrandbits(64)) for _ in range(count)]
