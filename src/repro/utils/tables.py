"""Plain-text table rendering for the experiment harness.

The benchmarks print the same rows that the paper's claims describe (size,
worst-case radius, average radius, fitted growth rate, ...).  The helpers
here render a list of dictionaries as an aligned monospace table without any
third-party dependency, so the output reads well both in a terminal and in
``EXPERIMENTS.md`` code blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence


def _format_cell(value: Any) -> str:
    """Render a single cell: floats get four significant decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.4g}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Format ``rows`` (dictionaries) as an aligned plain-text table.

    ``columns`` fixes the column order; when omitted, the keys of the first
    row are used.  Missing values render as an empty cell.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(columns))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for line in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """A mutable collection of result rows with a fixed column order.

    The experiment modules accumulate one row per parameter setting and then
    either print the table or feed the rows to the analysis helpers.
    """

    columns: Sequence[str]
    title: str | None = None
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unexpected column names raise ``KeyError``."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; declared {list(self.columns)}")
        self.rows.append(dict(values))

    def column(self, name: str) -> list[Any]:
        """Return all values of one column, in insertion order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows at once (each validated like :meth:`add_row`)."""
        for row in rows:
            self.add_row(**dict(row))

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return format_table(self.rows, self.columns, self.title)
