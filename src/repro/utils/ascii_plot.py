"""Dependency-free ASCII plots for experiment series.

The experiment harness is deliberately plot-library-free (the reproduction
environment has no display and no matplotlib), but growth shapes are much
easier to read as a picture than as a column of numbers.  This module renders
one or more series against a shared x-axis as a fixed-size character grid,
which the CLI and the examples print under the corresponding table.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import AnalysisError

#: Characters used for the successive series, in order.
SERIES_MARKERS = "*o+x#@"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    """Map ``value`` in ``[low, high]`` to a cell index in ``[0, cells - 1]``."""
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def ascii_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render ``series`` (name -> y-values over the shared ``xs``) as text.

    The plot is a scatter of one marker character per series on a
    ``height`` x ``width`` grid, with the y-range annotated on the left and
    the x-range underneath, followed by a legend.  Values are plotted on
    linear axes; callers who want a log-scale picture can transform their
    data first.
    """
    if not series:
        raise AnalysisError("ascii_plot needs at least one series")
    if width < 10 or height < 4:
        raise AnalysisError("ascii_plot needs a grid of at least 10x4 characters")
    for name, values in series.items():
        if len(values) != len(xs):
            raise AnalysisError(
                f"series {name!r} has {len(values)} points but there are {len(xs)} x-values"
            )
    if len(xs) == 0:
        raise AnalysisError("ascii_plot needs at least one data point")
    all_values = [float(v) for values in series.values() for v in values]
    y_low, y_high = min(all_values), max(all_values)
    x_low, x_high = float(min(xs)), float(max(xs))
    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(SERIES_MARKERS, series.items()):
        for x, y in zip(xs, values):
            column = _scale(float(x), x_low, x_high, width)
            row = height - 1 - _scale(float(y), y_low, y_high, height)
            grid[row][column] = marker
    left_labels = [f"{y_high:>10.3g} |", *[" " * 10 + " |"] * (height - 2), f"{y_low:>10.3g} |"]
    lines = []
    if title:
        lines.append(title)
    for label, row in zip(left_labels, grid):
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_low:<.4g}" + " " * max(1, width - 16) + f"{x_high:>.4g}")
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(SERIES_MARKERS, series.keys())
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def plot_experiment_column(
    table_rows: Sequence[Mapping[str, float]],
    x_column: str,
    y_columns: Sequence[str],
    title: str | None = None,
    width: int = 60,
    height: int = 16,
) -> str:
    """Plot chosen numeric columns of an experiment table against ``x_column``."""
    if not table_rows:
        raise AnalysisError("plot_experiment_column needs at least one row")
    xs = [float(row[x_column]) for row in table_rows]
    series = {
        column: [float(row[column]) for row in table_rows] for column in y_columns
    }
    return ascii_plot(xs, series, width=width, height=height, title=title)
