"""Small argument-validation helpers.

These helpers keep constructor bodies flat: each check raises
:class:`repro.errors.ConfigurationError` with a message naming the offending
parameter, which is considerably more useful than a bare ``assert``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an ``int`` strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a real number in the closed interval [0, 1]."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value!r}") from exc
    if not 0.0 <= as_float <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value!r}")
    return as_float
