"""The persistent, content-addressed result store behind ``repro serve``.

Exact answers — worst cases, exact distributions, deterministic simulate
rows — are pure functions of their validated
:class:`~repro.api.query.Query`, so the store keys each ``repro-result``
document by the query's :meth:`~repro.api.query.Query.canonical_hash` and
serves it forever.  Two cache tiers answer a lookup:

* **L1** — an in-process :class:`~repro.api.session._LruCache` of
  recently served documents (the PR-5 LRU, promoted to the store's front);
* **L2** — a sharded on-disk layout, ``objects/<hash[:2]>/<hash>.json``,
  written atomically (temp file + ``os.replace``) so a crash mid-write
  never leaves a torn object, plus a ``manifest.json`` index.

Sampling queries additionally persist their **estimator state**
(:data:`~repro.dist.sampling.ESTIMATOR_STATE_KIND` documents: Welford
moments, P² sketches, draw counts) under the query's
:meth:`~repro.api.query.Query.family_hash` in ``state/<hash[:2]>/``, so a
repeat query with a larger ``samples`` budget resumes the stored
estimators instead of restarting (see ``docs/service.md``).

The on-disk tier is bounded by :meth:`ResultStore.gc`: manifest entries
carry a monotone access ``stamp`` (refreshed on every write and L2 read)
and their object's ``bytes``, and the sweep evicts least-recently-used
objects until both ``max_objects`` and ``max_bytes`` hold — removing the
object file, the manifest entry, the L1 copy and, when no surviving entry
references it, the evicted query's family estimator state.  ``repro serve
--store-max-objects/--store-max-bytes`` runs the sweep at startup and
after every store write.

Metrics (``REPRO_OBS=on``): ``service.store.l1_hits`` /
``service.store.l2_hits`` / ``service.store.misses`` count lookups by the
tier that answered; ``service.store.objects`` gauges the persisted count
and ``service.store.evictions`` counts GC removals.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.api.session import _LruCache
from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics
from repro.utils.io import atomic_write_json

#: Document tag and schema version of ``manifest.json``.
MANIFEST_KIND = "repro-store-manifest"
MANIFEST_VERSION = 1

#: Document tag and schema version of the per-family estimator-state files.
STATE_KIND = "repro-store-state"
STATE_VERSION = 1

#: Default bound on the L1 tier (documents, not bytes).
DEFAULT_L1_LIMIT = 128


def _check_digest(digest: str) -> str:
    """Reject anything that is not a lowercase hex SHA-256 digest.

    The digest becomes a path component, so this is also the traversal
    guard for hashes arriving over HTTP (``GET /v1/result/<hash>``).
    """
    if (
        not isinstance(digest, str)
        or len(digest) != 64
        or any(ch not in "0123456789abcdef" for ch in digest)
    ):
        raise ConfigurationError(f"not a canonical query hash: {digest!r}")
    return digest


class ResultStore:
    """Content-addressed persistence of ``repro-result`` documents.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).  Layout::

            root/
              manifest.json                    # index of stored objects
              objects/<hash[:2]>/<hash>.json   # repro-result documents
              state/<hash[:2]>/<hash>.json     # per-family estimator state

    l1_limit:
        Bound on the in-process L1 document cache.
    """

    def __init__(self, root: Union[str, Path], l1_limit: int = DEFAULT_L1_LIMIT) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.state_dir = self.root / "state"
        self.manifest_path = self.root / "manifest.json"
        self._l1 = _LruCache(l1_limit)
        self._manifest: Optional[dict] = None

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def object_path(self, digest: str) -> Path:
        """The sharded on-disk location of one stored result document."""
        digest = _check_digest(digest)
        return self.objects_dir / digest[:2] / f"{digest}.json"

    def state_path(self, family: str) -> Path:
        """The sharded on-disk location of one family's estimator state."""
        family = _check_digest(family)
        return self.state_dir / family[:2] / f"{family}.json"

    # ------------------------------------------------------------------
    # the manifest
    # ------------------------------------------------------------------
    def manifest(self) -> dict:
        """The store's index document (loaded lazily, empty when absent)."""
        if self._manifest is None:
            if self.manifest_path.exists():
                with open(self.manifest_path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
                if document.get("kind") != MANIFEST_KIND:
                    raise ConfigurationError(
                        f"not a store manifest: kind={document.get('kind')!r} "
                        f"at {self.manifest_path}"
                    )
                if document.get("version") != MANIFEST_VERSION:
                    raise ConfigurationError(
                        f"unsupported store manifest version "
                        f"{document.get('version')!r} at {self.manifest_path}"
                    )
                self._manifest = document
            else:
                self._manifest = {
                    "kind": MANIFEST_KIND,
                    "version": MANIFEST_VERSION,
                    "entries": {},
                }
        return self._manifest

    def _save_manifest(self) -> None:
        atomic_write_json(self.manifest_path, self.manifest())

    # ------------------------------------------------------------------
    # result documents
    # ------------------------------------------------------------------
    def get(self, digest: str) -> tuple[Optional[dict], str]:
        """Look one document up; returns ``(document, tier)``.

        ``tier`` is ``"l1"`` or ``"l2"`` on a hit and ``"miss"`` otherwise
        (document ``None``).  An L2 hit promotes the document into L1.
        """
        digest = _check_digest(digest)
        document = self._l1.get(digest)
        if document is not None:
            _metrics.add("service.store.l1_hits")
            return document, "l1"
        path = self.object_path(digest)
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            self._l1.put(digest, document)
            self._touch(digest)
            _metrics.add("service.store.l2_hits")
            return document, "l2"
        _metrics.add("service.store.misses")
        return None, "miss"

    def _next_stamp(self) -> int:
        """Advance the manifest's monotone access clock."""
        manifest = self.manifest()
        stamp = int(manifest.get("clock", 0)) + 1
        manifest["clock"] = stamp
        return stamp

    def _touch(self, digest: str) -> None:
        """Refresh one entry's recency stamp (persisted with the next save)."""
        entry = self.manifest()["entries"].get(digest)
        if entry is not None:
            entry["stamp"] = self._next_stamp()

    def put(self, digest: str, document: Mapping, meta: Optional[Mapping] = None) -> Path:
        """Persist one result document under its content address.

        Writes the sharded object atomically, records it in the manifest
        (``meta`` — e.g. the producing query's mode — travels with the
        entry) and seeds the L1 tier.  Returns the object path.
        """
        digest = _check_digest(digest)
        path = self.object_path(digest)
        atomic_write_json(path, dict(document))
        self._l1.put(digest, dict(document))
        entries = self.manifest()["entries"]
        entry = {
            "path": str(path.relative_to(self.root)),
            "stamp": self._next_stamp(),
            "bytes": path.stat().st_size,
        }
        if meta:
            entry.update(dict(meta))
        entries[digest] = entry
        self._save_manifest()
        _metrics.add("service.store.writes")
        _metrics.set_gauge("service.store.objects", len(entries))
        return path

    def __contains__(self, digest: str) -> bool:
        return digest in self._l1 or self.object_path(digest).exists()

    def __len__(self) -> int:
        return len(self.manifest()["entries"])

    # ------------------------------------------------------------------
    # estimator state (the resume path)
    # ------------------------------------------------------------------
    def get_state(self, family: str) -> Optional[dict]:
        """The stored estimator-state document of one query family, if any."""
        path = self.state_path(family)
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("kind") != STATE_KIND or document.get("version") != STATE_VERSION:
            return None
        return document

    def put_state(self, family: str, samples: int, states: Mapping) -> Optional[Path]:
        """Persist one family's estimator states at budget ``samples``.

        ``states`` maps cell keys (``topology|n|algorithm``) to
        :data:`~repro.dist.sampling.ESTIMATOR_STATE_KIND` documents.  The
        write is *monotone*: a state drawn under a smaller budget never
        overwrites one drawn under a larger budget (resume always continues
        the furthest estimate), in which case ``None`` is returned.
        """
        family = _check_digest(family)
        existing = self.get_state(family)
        if existing is not None and int(existing.get("samples", 0)) >= samples:
            return None
        path = self.state_path(family)
        atomic_write_json(
            path,
            {
                "kind": STATE_KIND,
                "version": STATE_VERSION,
                "family": family,
                "samples": samples,
                "states": dict(states),
            },
        )
        _metrics.add("service.store.state_writes")
        return path

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _entry_bytes(self, digest: str, entry: Mapping) -> int:
        """One entry's object size (stat'd lazily for pre-GC manifests)."""
        size = entry.get("bytes")
        if size is None:
            try:
                size = self.object_path(digest).stat().st_size
            except OSError:
                size = 0
        return int(size)

    def total_bytes(self) -> int:
        """Persisted result-document bytes the manifest accounts for."""
        return sum(
            self._entry_bytes(digest, entry)
            for digest, entry in self.manifest()["entries"].items()
        )

    def gc(
        self, max_objects: Optional[int] = None, max_bytes: Optional[int] = None
    ) -> dict:
        """Evict least-recently-used objects until both bounds hold.

        ``None`` bounds don't constrain.  Evicting a document removes its
        object file, its manifest entry and its L1 copy; after the sweep,
        estimator-state files whose query family no longer appears among the
        surviving entries are removed too (a family's state is only useful
        to resume queries the store still remembers).  The manifest is saved
        once, atomically — a crash mid-sweep leaves at worst already-deleted
        objects that the next manifest save forgets.

        Returns a JSON-friendly summary: ``{"evicted", "objects", "bytes"}``.
        """
        entries = self.manifest()["entries"]
        evicted = 0
        if max_objects is not None or max_bytes is not None:
            by_age = sorted(
                entries, key=lambda digest: int(entries[digest].get("stamp", 0))
            )
            total = self.total_bytes()
            cursor = 0
            while cursor < len(by_age) and (
                (max_objects is not None and len(entries) > max_objects)
                or (max_bytes is not None and total > max_bytes)
            ):
                digest = by_age[cursor]
                cursor += 1
                entry = entries.pop(digest)
                total -= self._entry_bytes(digest, entry)
                try:
                    self.object_path(digest).unlink()
                except OSError:
                    pass
                self._l1.pop(digest)
                evicted += 1
            if evicted:
                surviving_families = {
                    entry.get("family") for entry in entries.values()
                } - {None}
                state_files = (
                    sorted(self.state_dir.glob("*/*.json"))
                    if self.state_dir.exists()
                    else []
                )
                for path in state_files:
                    if path.stem not in surviving_families:
                        try:
                            path.unlink()
                        except OSError:
                            pass
                self._save_manifest()
                _metrics.add("service.store.evictions", evicted)
                _metrics.set_gauge("service.store.objects", len(entries))
        return {"evicted": evicted, "objects": len(entries), "bytes": self.total_bytes()}

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly store statistics (the ``/v1/healthz`` payload)."""
        return {
            "root": str(self.root),
            "objects": len(self),
            "bytes": self.total_bytes(),
            "l1": {
                "entries": len(self._l1),
                "limit": self._l1.limit,
                "hits": self._l1.hits,
                "misses": self._l1.misses,
                "evictions": self._l1.evictions,
            },
        }
