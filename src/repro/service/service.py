"""The query service: cache tiers, resume, worker dispatch — one front door.

:class:`QueryService` sits on top of the Session/Query API and answers one
question: *given this validated query document, what is its result
document?* — as cheaply as truth allows:

1. **L1/L2 hit** — the query's canonical hash is in the store: the stored
   ``repro-result`` document is returned verbatim, zero recomputation.
2. **Resume** — a *sampling* query misses, but its family hash (the spec
   minus ``samples``/``workers``) has stored estimator state with a draw
   count within the requested budget: the Welford moments and P² sketches
   continue from where they stopped, so only the *new* draws are simulated
   and the answer is bit-for-bit the one a fresh run with the combined
   budget would produce.
3. **Miss** — the query computes cold: distribution queries with sampled
   cells go through the resumable per-cell path in-process (capturing the
   estimator state that makes step 2 possible next time); everything else
   dispatches through the :class:`~repro.service.workers.QueryWorkerPool`.

Every compute is bracketed by a crash-safety job file (see
:mod:`repro.service.workers`); :meth:`QueryService.recover` re-runs jobs a
previous process left behind.  The service is thread-safe (one internal
lock serialises execution — Sessions are not thread-safe), which is what
the threading HTTP front door in :mod:`repro.service.http` relies on.

Metrics (``REPRO_OBS=on``): ``service.requests``, per-tier counters
``service.cache.{l1_hits,l2_hits,resumes,misses}``, the
``service.queue_depth`` gauge and the ``service.latency`` timer; spans
``service.execute`` / ``service.compute`` nest the engine's own.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.api.query import Query
from repro.api.results import Result
from repro.api.session import Session
from repro.engine.campaign import dist_cell_row, dist_cell_row_resumed
from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics
from repro.obs.spans import span as _obs_span
from repro.service.store import ResultStore
from repro.service.workers import (
    QueryWorkerPool,
    ServiceConfig,
    clear_job,
    pending_jobs,
    write_job,
)

#: Progress chunks a streamed sampling query is split into (at most; each
#: chunk continues the previous one's estimator state, so the final answer
#: is identical to a single-run evaluation of the full budget).
DEFAULT_STREAM_CHUNKS = 8


@dataclass(frozen=True)
class ServeOutcome:
    """One answered query: the result document, its address and the tier.

    ``tier`` is ``"l1"`` / ``"l2"`` (store hits), ``"resume"`` (continued
    estimator state) or ``"miss"`` (computed cold).  ``cached`` collapses
    that to the ``X-Repro-Cache: hit|resume|miss`` header value.
    """

    digest: str
    document: dict
    tier: str

    @property
    def cached(self) -> str:
        if self.tier in ("l1", "l2"):
            return "hit"
        return self.tier


def _cell_key(cell) -> str:
    """The estimator-state key of one sampled cell (stable across budgets)."""
    return f"{cell.topology}|{cell.n}|{cell.algorithm}"


class QueryService:
    """Store-backed, resumable execution of validated queries."""

    def __init__(
        self,
        root: Union[str, Path] = "repro-store",
        max_parallel: int = 1,
        l1_limit: int = 128,
        session: Optional[Session] = None,
        store_max_objects: Optional[int] = None,
        store_max_bytes: Optional[int] = None,
    ) -> None:
        self.config = ServiceConfig(
            root=Path(root),
            max_parallel=max_parallel,
            l1_limit=l1_limit,
            store_max_objects=store_max_objects,
            store_max_bytes=store_max_bytes,
        )
        self.store = ResultStore(self.config.root, l1_limit=l1_limit)
        self.session = session if session is not None else Session()
        self.pool = QueryWorkerPool(max_parallel, session=self.session)
        self._lock = threading.Lock()
        self._maybe_gc()

    def _maybe_gc(self) -> None:
        """Run the store's LRU sweep when the config bounds the on-disk tier."""
        if self.config.store_max_objects is not None or self.config.store_max_bytes is not None:
            self.store.gc(
                max_objects=self.config.store_max_objects,
                max_bytes=self.config.store_max_bytes,
            )

    def _put_meta(self, query: Query) -> dict:
        """Manifest metadata of one stored result (mode, resume family)."""
        meta = {"mode": query.mode}
        if self._resumable(query):
            # The family link lets the GC sweep drop a family's estimator
            # state once no stored result references it anymore.
            meta["family"] = query.family_hash()
        return meta

    # ------------------------------------------------------------------
    # the front door
    # ------------------------------------------------------------------
    def execute(self, query: Query) -> ServeOutcome:
        """Answer one query through the cache tiers (see the module docs)."""
        started = time.perf_counter()
        with self._lock:
            with _obs_span("service.execute", mode=query.mode):
                outcome = self._execute_locked(query)
        _metrics.add("service.requests")
        _metrics.add(f"service.cache.{self._tier_metric(outcome.tier)}")
        _metrics.observe("service.latency", time.perf_counter() - started)
        return outcome

    @staticmethod
    def _tier_metric(tier: str) -> str:
        return {"l1": "l1_hits", "l2": "l2_hits", "resume": "resumes"}.get(tier, "misses")

    def _execute_locked(self, query: Query) -> ServeOutcome:
        digest = query.canonical_hash()
        document, tier = self.store.get(digest)
        if document is not None:
            return ServeOutcome(digest=digest, document=document, tier=tier)
        query_document = query.to_dict()
        write_job(self.config, digest, query_document)
        try:
            with _obs_span("service.compute", mode=query.mode):
                if self._resumable(query):
                    document, tier = self._compute_distribution(query)
                else:
                    document = self.pool.run_many([query_document])[0]
                    tier = "miss"
            self.store.put(digest, document, meta=self._put_meta(query))
            self._maybe_gc()
        finally:
            clear_job(self.config, digest)
        return ServeOutcome(digest=digest, document=document, tier=tier)

    def execute_document(self, document: dict) -> ServeOutcome:
        """:meth:`execute` for a raw ``repro-query`` dict (the HTTP body)."""
        return self.execute(Query.from_dict(document))

    def execute_many(self, documents: Sequence[dict]) -> list[ServeOutcome]:
        """Answer a queue of query documents, fanning cold ones out.

        Store hits and resumable sampling queries answer in-process; the
        remaining cold documents dispatch together over the worker pool
        (``max_parallel`` processes).  Outcomes come back in queue order.
        """
        queue = [Query.from_dict(document) for document in documents]
        _metrics.set_gauge("service.queue_depth", len(queue))
        outcomes: list[Optional[ServeOutcome]] = [None] * len(queue)
        cold: dict[str, list[int]] = {}
        with self._lock:
            for position, query in enumerate(queue):
                digest = query.canonical_hash()
                if digest in cold:
                    # A duplicate of a query already queued cold: computed
                    # once, answered here from the just-populated store.
                    cold[digest].append(position)
                    continue
                document, tier = self.store.get(digest)
                if document is not None:
                    outcomes[position] = ServeOutcome(digest, document, tier)
                elif self._resumable(query):
                    outcomes[position] = self._execute_locked(query)
                else:
                    cold[digest] = [position]
                    write_job(self.config, digest, query.to_dict())
            if cold:
                firsts = [positions[0] for positions in cold.values()]
                computed = self.pool.run_many([queue[i].to_dict() for i in firsts])
                for (digest, positions), document in zip(cold.items(), computed):
                    query = queue[positions[0]]
                    self.store.put(digest, document, meta=self._put_meta(query))
                    clear_job(self.config, digest)
                    for position in positions:
                        tier = "miss" if position == positions[0] else "l1"
                        outcomes[position] = ServeOutcome(digest, document, tier)
                self._maybe_gc()
        _metrics.set_gauge("service.queue_depth", 0)
        for outcome in outcomes:
            _metrics.add("service.requests")
            _metrics.add(f"service.cache.{self._tier_metric(outcome.tier)}")
        return outcomes  # type: ignore[return-value]

    def recover(self) -> list[str]:
        """Re-run the job files a crashed process left behind.

        Returns the recovered hashes.  A job whose result actually reached
        the store before the crash resolves as a store hit (zero
        recompute); the rest compute cold.  Either way the ledger entry is
        cleared.
        """
        recovered = []
        for job in pending_jobs(self.config):
            outcome = self.execute_document(job["query"])
            clear_job(self.config, job["hash"])
            recovered.append(outcome.digest)
        return recovered

    # ------------------------------------------------------------------
    # the resumable distribution path
    # ------------------------------------------------------------------
    @staticmethod
    def _resumable(query: Query) -> bool:
        """Whether the query's estimators can persist and resume."""
        return query.mode == "distribution" and "sample" in query.methods

    def _load_family_states(self, query: Query) -> dict:
        """The stored per-cell estimator states usable at this budget."""
        stored = self.store.get_state(query.family_hash())
        if stored is None:
            return {}
        if int(stored.get("samples", 0)) > query.samples:
            # Drawn under a larger budget: the estimate cannot run backwards.
            return {}
        return dict(stored.get("states") or {})

    def _compute_distribution(self, query: Query) -> tuple[dict, str]:
        """Evaluate a sampled-distribution query resumably, persisting state.

        Sampled cells stream through
        :func:`~repro.engine.campaign.dist_cell_row_resumed` — continuing
        stored estimator state when the family has any — and their final
        states persist under the family hash for the next, larger budget.
        Exact cells evaluate exactly as in
        :meth:`~repro.api.session.Session.distribution`.
        """
        spec = query.to_dist_spec()
        cells = spec.cells()
        prior = self._load_family_states(query)
        resumed = False
        states: dict = {}
        rows = []
        for cell in cells:
            graph = self.session.graph(cell.topology, cell.n, cell.graph_seed)
            algorithm = self.session.ball_algorithm(cell.algorithm, graph.n)
            if cell.method == "sample":
                kernel = self.session.kernel(graph, algorithm)
                state = prior.get(_cell_key(cell))
                resumed = resumed or state is not None
                row, new_state = dist_cell_row_resumed(
                    spec, cell, graph, algorithm, kernel, state=state
                )
                states[_cell_key(cell)] = new_state
                rows.append(row)
            else:
                rows.append(dist_cell_row(spec, cell, graph, algorithm))
        rows.sort(key=lambda row: row["index"])
        result = Result.from_rows(
            "distribution", query.to_dict(), rows, session_cache=self.session.cache_info()
        )
        if states:
            self.store.put_state(query.family_hash(), query.samples, states)
        return result.as_dict(), ("resume" if resumed else "miss")

    # ------------------------------------------------------------------
    # streaming (chunked progressive responses)
    # ------------------------------------------------------------------
    def execute_stream(
        self, query: Query, chunks: int = DEFAULT_STREAM_CHUNKS
    ) -> Iterator[dict]:
        """Answer one query as a stream of progress events plus the result.

        For a resumable sampling query the draw budget splits into up to
        ``chunks`` increments; after each one a ``{"type": "progress"}``
        event reports every sampled cell's current estimate with its
        standard error and 95% confidence interval — the client watches the
        interval tighten live.  Chunking changes nothing about the answer
        (each chunk resumes the previous one's state), and the final
        ``{"type": "result"}`` event carries the identical document a
        non-streamed :meth:`execute` would return — which is also what the
        store persists.  Store hits and non-sampling queries emit the
        result event alone.
        """
        if chunks < 1:
            raise ConfigurationError(f"chunks must be >= 1, got {chunks}")
        started = time.perf_counter()
        with self._lock:
            digest = query.canonical_hash()
            document, tier = self.store.get(digest)
            if document is None and self._resumable(query):
                yield from self._stream_distribution(query, digest, chunks)
                _metrics.add("service.requests")
                _metrics.observe("service.latency", time.perf_counter() - started)
                return
            if document is None:
                outcome = self._execute_locked(query)
                document, tier = outcome.document, outcome.tier
        _metrics.add("service.requests")
        _metrics.add(f"service.cache.{self._tier_metric(tier)}")
        _metrics.observe("service.latency", time.perf_counter() - started)
        yield {"type": "result", "hash": digest, "cache": ServeOutcome(digest, document, tier).cached, "document": document}

    def _stream_distribution(self, query: Query, digest: str, chunks: int) -> Iterator[dict]:
        """The chunked resumable evaluation behind :meth:`execute_stream`."""
        spec = query.to_dist_spec()
        cells = spec.cells()
        sampled = [cell for cell in cells if cell.method == "sample"]
        prior = self._load_family_states(query)
        resumed = any(_cell_key(cell) in prior for cell in sampled)
        consumed = min(
            (int(prior[_cell_key(cell)]["draws"]) for cell in sampled if _cell_key(cell) in prior),
            default=0,
        )
        total = query.samples
        budgets = sorted(
            {
                max(consumed + 1, (total * step) // chunks)
                for step in range(1, chunks + 1)
                if (total * step) // chunks > consumed
            }
        )
        if not budgets or budgets[-1] != total:
            budgets.append(total)
        write_job(self.config, digest, query.to_dict())
        try:
            states = dict(prior)
            final_rows: dict[str, dict] = {}
            for budget in budgets:
                chunk_spec = dataclasses.replace(spec, samples=budget)
                progress = []
                for cell in chunk_spec.cells():
                    if cell.method != "sample":
                        continue
                    graph = self.session.graph(cell.topology, cell.n, cell.graph_seed)
                    algorithm = self.session.ball_algorithm(cell.algorithm, graph.n)
                    kernel = self.session.kernel(graph, algorithm)
                    key = _cell_key(cell)
                    row, state = dist_cell_row_resumed(
                        chunk_spec, cell, graph, algorithm, kernel, state=states.get(key)
                    )
                    states[key] = state
                    final_rows[key] = row
                    mean = row["average"]["mean"]
                    std_error = (row.get("uncertainty") or {}).get("average", {}).get("std_error")
                    progress.append(
                        {
                            "topology": cell.topology,
                            "n": cell.n,
                            "algorithm": cell.algorithm,
                            "draws": int(state["draws"]),
                            "mean": mean,
                            "std_error": std_error,
                            "ci95": None
                            if std_error is None
                            else [mean - 1.96 * std_error, mean + 1.96 * std_error],
                        }
                    )
                yield {
                    "type": "progress",
                    "draws": budget,
                    "samples": total,
                    "cells": progress,
                }
            rows = [final_rows[_cell_key(cell)] for cell in sampled]
            for cell in cells:
                if cell.method == "sample":
                    continue
                graph = self.session.graph(cell.topology, cell.n, cell.graph_seed)
                algorithm = self.session.ball_algorithm(cell.algorithm, graph.n)
                rows.append(dist_cell_row(spec, cell, graph, algorithm))
            rows.sort(key=lambda row: row["index"])
            result = Result.from_rows(
                "distribution", query.to_dict(), rows, session_cache=self.session.cache_info()
            )
            document = result.as_dict()
            if states:
                self.store.put_state(query.family_hash(), total, states)
            self.store.put(digest, document, meta=self._put_meta(query))
            self._maybe_gc()
        finally:
            clear_job(self.config, digest)
        tier = "resume" if resumed else "miss"
        _metrics.add(f"service.cache.{self._tier_metric(tier)}")
        yield {"type": "result", "hash": digest, "cache": tier, "document": document}

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The health/diagnostics payload of ``GET /v1/healthz``."""
        return {
            "status": "ok",
            "max_parallel": self.config.max_parallel,
            "store": self.store.stats(),
        }
