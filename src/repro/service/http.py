"""The stdlib HTTP front door of the query service (``repro serve``).

Three endpoints, JSON in and out, no dependencies beyond ``http.server``:

* ``POST /v1/query`` — body is a ``repro-query`` document.  Answers with
  the ``repro-result`` document through the service's cache tiers; the
  ``X-Repro-Cache`` header says how (``hit`` / ``resume`` / ``miss``) and
  ``X-Repro-Hash`` carries the canonical content address.  With
  ``?stream=1`` a sampling query streams chunked NDJSON instead: one
  ``{"type": "progress"}`` line per draw-budget increment (current
  estimate, standard error, 95% CI per cell — the interval visibly
  tightens), then the final ``{"type": "result"}`` line with the full
  document.
* ``GET /v1/result/<hash>`` — a stored result document by content address
  (404 when the store has no such object).
* ``GET /v1/healthz`` — liveness + store statistics.

Malformed bodies and unknown query fields answer 400 with a JSON error
document; unknown paths 404.  The server is a
:class:`~http.server.ThreadingHTTPServer` (clients never block each other
on I/O) over the thread-safe :class:`~repro.service.service.QueryService`.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import AnalysisError, ConfigurationError, ReproError
from repro.service.service import QueryService

#: The protocol prefix every route lives under.
API_PREFIX = "/v1"


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server owning one :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: QueryService, quiet: bool = True) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        """The server's base URL (with the actually bound port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Route ``/v1/*`` requests onto the owning server's service."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_json(
        self, status: int, document: dict, headers: Optional[dict] = None
    ) -> None:
        body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _write_chunk(self, payload: bytes) -> None:
        self.wfile.write(f"{len(payload):x}\r\n".encode("ascii"))
        self.wfile.write(payload)
        self.wfile.write(b"\r\n")

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        if parsed.path == f"{API_PREFIX}/healthz":
            self._send_json(200, self.service.healthz())
            return
        prefix = f"{API_PREFIX}/result/"
        if parsed.path.startswith(prefix):
            digest = parsed.path[len(prefix):]
            try:
                document, tier = self.service.store.get(digest)
            except ConfigurationError as exc:
                self._send_error_json(400, str(exc))
                return
            if document is None:
                self._send_error_json(404, f"no stored result for {digest}")
                return
            self._send_json(
                200, document, headers={"X-Repro-Cache": "hit", "X-Repro-Hash": digest}
            )
            return
        self._send_error_json(404, f"unknown path {parsed.path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        if parsed.path != f"{API_PREFIX}/query":
            self._send_error_json(404, f"unknown path {parsed.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length)
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return
        stream = parse_qs(parsed.query).get("stream", ["0"])[0] not in ("", "0", "false")
        try:
            if stream:
                self._stream_query(document)
            else:
                outcome = self.service.execute_document(document)
                self._send_json(
                    200,
                    outcome.document,
                    headers={
                        "X-Repro-Cache": outcome.cached,
                        "X-Repro-Hash": outcome.digest,
                    },
                )
        except (ConfigurationError, AnalysisError) as exc:
            self._send_error_json(400, str(exc))
        except ReproError as exc:
            self._send_error_json(500, str(exc))

    def _stream_query(self, document: dict) -> None:
        """Answer ``POST /v1/query?stream=1`` as chunked NDJSON events."""
        from repro.api.query import Query

        query = Query.from_dict(document)  # validate before committing to 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Repro-Hash", query.canonical_hash())
        self.end_headers()
        for event in self.service.execute_stream(query):
            line = json.dumps(event, sort_keys=True) + "\n"
            self._write_chunk(line.encode("utf-8"))
        self._write_chunk(b"")


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    root: str = "repro-store",
    max_parallel: int = 1,
    service: Optional[QueryService] = None,
    quiet: bool = True,
    store_max_objects: Optional[int] = None,
    store_max_bytes: Optional[int] = None,
) -> ServiceServer:
    """Build a ready-to-serve :class:`ServiceServer` (port 0 = ephemeral).

    Startup recovers any crash-interrupted jobs the store's ledger still
    records, so a restarted service finishes what its predecessor began
    before taking traffic.  ``store_max_objects`` / ``store_max_bytes``
    bound the on-disk store via LRU eviction (see
    :meth:`~repro.service.store.ResultStore.gc`).
    """
    if service is None:
        service = QueryService(
            root=root,
            max_parallel=max_parallel,
            store_max_objects=store_max_objects,
            store_max_bytes=store_max_bytes,
        )
    service.recover()
    return ServiceServer((host, port), service, quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    root: str = "repro-store",
    max_parallel: int = 1,
    quiet: bool = False,
    store_max_objects: Optional[int] = None,
    store_max_bytes: Optional[int] = None,
) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point)."""
    server = make_server(
        host=host,
        port=port,
        root=root,
        max_parallel=max_parallel,
        quiet=quiet,
        store_max_objects=store_max_objects,
        store_max_bytes=store_max_bytes,
    )
    print(f"repro serve: listening on {server.url} (store: {server.service.store.root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
