"""The service's multi-process worker pool and crash-safe job ledger.

Queued queries dispatch over a :class:`~repro.engine.batch.BatchExecutor`
with ``max_parallel`` worker processes — since the executor rides the warm
:mod:`~repro.engine.pool` runtime, the service's workers persist across
batches, and each keeps one **worker-global**
:class:`~repro.api.session.Session` whose compiled kernels and graphs are
reused from job to job.  Workers return the finished ``repro-result``
document (a plain dict, picklable); the parent process performs every
store write, so the manifest is single-writer by construction.

Determinism: a query's cell seeds derive from its own ``seed`` field
(:func:`~repro.engine.batch.derive_task_seed`), so the same query document
yields the same rows at any ``max_parallel`` — the pool only changes *when*
a document is computed, never *what* it says.

Crash safety follows the working-directory discipline of orchestration
frameworks like ACToR: before a query is computed, its document is recorded
as a job file (``jobs/<hash>.json``, written atomically); the file is
removed only after the result reaches the store.  A process that dies
mid-compute leaves its job files behind, and
:meth:`QueryService.recover <repro.service.service.QueryService.recover>`
re-runs them on the next startup.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.api.query import Query
from repro.api.session import Session
from repro.engine.batch import BatchExecutor
from repro.errors import ConfigurationError
from repro.utils.io import atomic_write_json

#: Document tag and schema version of the crash-safety job files.
JOB_KIND = "repro-service-job"
JOB_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Working/output-directory and fan-out configuration of one service.

    ``root`` holds everything the service persists: the content-addressed
    store (``objects/``, ``state/``, ``manifest.json``) and the job ledger
    (``jobs/``).  ``max_parallel`` bounds the worker-pool fan-out;
    ``l1_limit`` the in-process document cache.  ``store_max_objects`` /
    ``store_max_bytes`` bound the on-disk tier: when either is set, the
    service runs :meth:`~repro.service.store.ResultStore.gc` at startup and
    after every store write (``None`` leaves the store unbounded).
    """

    root: Path
    max_parallel: int = 1
    l1_limit: int = 128
    store_max_objects: Optional[int] = None
    store_max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))
        if self.max_parallel < 1:
            raise ConfigurationError(
                f"max_parallel must be >= 1, got {self.max_parallel}"
            )
        for name in ("store_max_objects", "store_max_bytes"):
            bound = getattr(self, name)
            if bound is not None and bound < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {bound}")

    @property
    def jobs_dir(self) -> Path:
        """The job-ledger directory (one file per in-flight query)."""
        return self.root / "jobs"

    def job_path(self, digest: str) -> Path:
        """The ledger file of one in-flight query, keyed by its hash."""
        return self.jobs_dir / f"{digest}.json"


def write_job(config: ServiceConfig, digest: str, document: dict) -> Path:
    """Record one query as in-flight before computing it (crash safety)."""
    path = config.job_path(digest)
    atomic_write_json(
        path,
        {"kind": JOB_KIND, "version": JOB_VERSION, "hash": digest, "query": document},
    )
    return path


def clear_job(config: ServiceConfig, digest: str) -> None:
    """Remove one query's ledger file once its result reached the store."""
    try:
        os.unlink(config.job_path(digest))
    except OSError:
        pass


def pending_jobs(config: ServiceConfig) -> list[dict]:
    """The job documents left behind by a crashed run, hash-sorted.

    Unreadable or mistagged files are skipped (a torn write cannot happen
    — job files are written atomically — but a foreign file in ``jobs/``
    should not wedge startup).
    """
    import json

    jobs = []
    if not config.jobs_dir.exists():
        return jobs
    for path in sorted(config.jobs_dir.glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            continue
        if document.get("kind") != JOB_KIND or document.get("version") != JOB_VERSION:
            continue
        jobs.append(document)
    return jobs


def run_query_job(document: dict) -> dict:
    """Worker entry point: compute one query document in the worker's Session.

    Module-level (picklable) for :class:`~repro.engine.batch.BatchExecutor`
    dispatch; the returned ``repro-result`` dict travels back to the parent,
    which owns the store.  The Session is **worker-global** (cached via
    :func:`repro.engine.pool.worker_cache`): the warm pool keeps its workers
    alive across dispatches, so repeated jobs reuse the worker's compiled
    kernels, graphs and plans instead of rebuilding them per job.
    """
    from repro.engine.pool import worker_cache

    query = Query.from_dict(document)
    session = worker_cache("service.session", "session", Session)
    return session.run(query).as_dict()


class QueryWorkerPool:
    """Fan queued query documents out over BatchExecutor-backed Sessions.

    With ``max_parallel == 1`` (or a single job) the pool runs in-process
    on the supplied warm session — no pickling, shared caches; otherwise
    the documents shard across ``max_parallel`` worker processes, each
    answering with its finished result document in queue order.
    """

    def __init__(self, max_parallel: int = 1, session: Optional[Session] = None) -> None:
        if max_parallel < 1:
            raise ConfigurationError(f"max_parallel must be >= 1, got {max_parallel}")
        self.max_parallel = max_parallel
        self._session = session

    def session(self) -> Session:
        """The pool's in-process session (created on first use)."""
        if self._session is None:
            self._session = Session()
        return self._session

    def run_many(self, documents: Sequence[dict]) -> list[dict]:
        """Compute every queued query document; results in queue order."""
        documents = list(documents)
        if self.max_parallel > 1 and len(documents) > 1:
            return BatchExecutor(self.max_parallel).map(run_query_job, documents)
        session = self.session()
        return [session.run(Query.from_dict(document)).as_dict() for document in documents]
