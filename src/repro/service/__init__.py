"""The query service — ``repro serve``: compute once, serve forever.

The seventh subsystem (see ``docs/architecture.md``), layered on the
Session/Query API.  The paper's measures are pure functions of a validated
:class:`~repro.api.query.Query`, so the service keys every ``repro-result``
document by the query's canonical content hash and answers repeats from a
persistent store instead of recomputing; sampling queries additionally
persist their estimator state and *resume* under larger budgets.

* :mod:`repro.service.store` — the content-addressed, two-tier result
  store (in-process LRU over a sharded atomic-write on-disk layout);
* :mod:`repro.service.workers` — the crash-safe job ledger and the
  multi-process worker pool dispatching queued queries;
* :mod:`repro.service.service` — :class:`QueryService`, the cache-tier /
  resume / compute orchestration;
* :mod:`repro.service.http` — the stdlib HTTP front door
  (``POST /v1/query``, ``GET /v1/result/<hash>``, ``GET /v1/healthz``).

Guide: ``docs/service.md``.
"""

from repro.service.http import ServiceServer, make_server, serve
from repro.service.service import QueryService, ServeOutcome
from repro.service.store import ResultStore
from repro.service.workers import QueryWorkerPool, ServiceConfig

__all__ = [
    "QueryService",
    "QueryWorkerPool",
    "ResultStore",
    "ServeOutcome",
    "ServiceConfig",
    "ServiceServer",
    "make_server",
    "serve",
]
