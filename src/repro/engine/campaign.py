"""Declarative sweep campaigns over (topology × n × algorithm × adversary).

The ROADMAP's north star — scale, speed, scenario diversity — needs a way to
say "run *this grid* of adversarial searches" without hand-writing loops.  A
:class:`CampaignSpec` declares the grid; :func:`run_campaign` expands it into
deterministic cells, shards the cells across a
:class:`~repro.engine.batch.BatchExecutor`, and returns one JSON-friendly row
per cell (objective value, witness evaluations, cache hit rate, wall time).

Rows can be written with :func:`write_rows` and rendered into
``EXPERIMENTS.md`` by ``scripts/generate_experiments_md.py --campaign``.
The ``repro sweep`` CLI subcommand is a thin front-end over this module.

Determinism: every cell derives its private seed from the campaign seed and
its own coordinates (:func:`~repro.engine.batch.derive_task_seed`), so the
same spec produces the same rows at any worker count.
"""

from __future__ import annotations

import itertools
import time
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.engine.batch import BatchExecutor, derive_task_seed
from repro.engine.pool import fetch_memoryview, worker_cache
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.obs.spans import span as _obs_span
from repro.topology.complete import complete_graph
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import gnp_random_graph, random_tree

#: Topology name -> builder ``(n, seed) -> Graph``.  The CLI's ``simulate``
#: and ``sweep`` subcommands share this registry.
TOPOLOGY_BUILDERS: dict[str, Callable[[int, int], Graph]] = {
    "cycle": lambda n, seed: cycle_graph(n),
    "path": lambda n, seed: path_graph(n),
    "grid": lambda n, seed: grid_graph(max(2, int(round(n**0.5))), max(2, int(round(n**0.5)))),
    "complete": lambda n, seed: complete_graph(n),
    "random-tree": lambda n, seed: random_tree(n, seed=seed),
    "gnp": lambda n, seed: gnp_random_graph(n, min(0.9, 8.0 / n), seed=seed),
}

#: Topologies whose builders ignore the seed (deterministic structure).
#: Session-level graph caches key these by ``seed = 0`` so frontier plans
#: and automorphism groups are shared across differently seeded queries.
DETERMINISTIC_TOPOLOGIES = frozenset({"cycle", "path", "grid", "complete"})

#: Adversary strategies a campaign cell can request.  The first four are
#: the first-generation (reference) searches; the last three come from the
#: symmetry-aware :mod:`repro.search` subsystem.
ADVERSARY_NAMES = (
    "exhaustive",
    "random-search",
    "local-search",
    "rotation",
    "pruned-exhaustive",
    "branch-and-bound",
    "portfolio",
)

#: Objectives a campaign can maximise (mirrors repro.core.adversary.OBJECTIVES,
#: restated here so spec validation stays core-import-free).
OBJECTIVE_NAMES = ("average", "max", "sum")


def build_topology(name: str, n: int, seed: int) -> Graph:
    """Instantiate a registered topology (raises on unknown names)."""
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown topology {name!r}; known: {', '.join(sorted(TOPOLOGY_BUILDERS))}"
        ) from exc
    return builder(n, seed)


@dataclass(frozen=True)
class CampaignCell:
    """One fully specified point of the sweep grid."""

    index: int
    topology: str
    n: int
    algorithm: str
    adversary: str
    objective: str
    seed: int


@dataclass(frozen=True)
class CampaignSpec:
    """A grid of adversarial searches plus the search budgets.

    The grid is the full cartesian product ``topologies × sizes ×
    algorithms × adversaries`` under one ``objective``; the budget fields
    parameterise the non-exhaustive adversaries.
    """

    topologies: tuple[str, ...] = ("cycle",)
    sizes: tuple[int, ...] = (8,)
    algorithms: tuple[str, ...] = ("largest-id",)
    adversaries: tuple[str, ...] = ("random-search",)
    objective: str = "average"
    seed: int = 0
    samples: int = 16
    restarts: int = 2
    swaps_per_step: int = 16
    max_steps: int = 32
    exhaustive_max_nodes: int = 9
    #: Node cap for the symmetry-pruned exact adversaries, which stay
    #: feasible well past the legacy exhaustive limit on symmetric graphs.
    exact_max_nodes: int = 12

    def __post_init__(self) -> None:
        for name in self.topologies:
            if name not in TOPOLOGY_BUILDERS:
                raise ConfigurationError(
                    f"unknown topology {name!r}; known: {', '.join(sorted(TOPOLOGY_BUILDERS))}"
                )
        for name in self.adversaries:
            if name not in ADVERSARY_NAMES:
                raise ConfigurationError(
                    f"unknown adversary {name!r}; known: {', '.join(ADVERSARY_NAMES)}"
                )
        if self.objective not in OBJECTIVE_NAMES:
            raise ConfigurationError(
                f"unknown objective {self.objective!r}; known: {', '.join(OBJECTIVE_NAMES)}"
            )

    def cells(self) -> list[CampaignCell]:
        """Expand the grid into deterministic, individually seeded cells."""
        grid = itertools.product(
            self.topologies, self.sizes, self.algorithms, self.adversaries
        )
        return [
            CampaignCell(
                index=index,
                topology=topology,
                n=n,
                algorithm=algorithm,
                adversary=adversary,
                objective=self.objective,
                seed=derive_task_seed(self.seed, topology, n, algorithm, adversary),
            )
            for index, (topology, n, algorithm, adversary) in enumerate(grid)
        ]


def make_adversary(
    name: str,
    spec: Optional[CampaignSpec] = None,
    seed: int = 0,
    workers: Optional[int] = 1,
):
    """Instantiate a registered adversary by name (the campaign/CLI factory).

    ``spec`` supplies the search budgets (defaults to a fresh
    :class:`CampaignSpec`); ``seed`` feeds the randomised searches and
    ``workers`` the portfolio's process fan-out (campaign cells keep the
    default of 1 because they already run inside worker processes).
    """
    # Imported here: the engine's lower layers must stay importable without
    # repro.core (which itself imports the engine).
    from repro.core.adversary import (
        ExhaustiveAdversary,
        LocalSearchAdversary,
        RandomSearchAdversary,
        RotationAdversary,
    )

    if spec is None:
        spec = CampaignSpec(adversaries=(name,))
    if name == "exhaustive":
        return ExhaustiveAdversary(max_nodes=spec.exhaustive_max_nodes)
    if name == "random-search":
        return RandomSearchAdversary(samples=spec.samples, seed=seed)
    if name == "local-search":
        return LocalSearchAdversary(
            restarts=spec.restarts,
            swaps_per_step=spec.swaps_per_step,
            max_steps=spec.max_steps,
            seed=seed,
        )
    if name == "rotation":
        return RotationAdversary()
    from repro.search.adversaries import (
        BranchAndBoundAdversary,
        PortfolioAdversary,
        PrunedExhaustiveAdversary,
    )

    if name == "pruned-exhaustive":
        return PrunedExhaustiveAdversary(max_nodes=spec.exact_max_nodes)
    if name == "branch-and-bound":
        return BranchAndBoundAdversary(max_nodes=spec.exact_max_nodes)
    if name == "portfolio":
        return PortfolioAdversary(seed=seed, workers=workers)
    raise ConfigurationError(f"unknown adversary {name!r}")


def _build_adversary(spec: CampaignSpec, cell: CampaignCell):
    return make_adversary(cell.adversary, spec, seed=cell.seed)


def make_ball_algorithm(name: str, n: int):
    """Instantiate a registered algorithm as a ball algorithm.

    Round-based algorithms (e.g. ``cole-vishkin``) are wrapped in the E9
    ball compiler so every grid cell — and the ``repro search`` CLI — can
    treat them uniformly.
    """
    from repro.algorithms.full_gather import BallSimulationOfRounds
    from repro.algorithms.registry import make_algorithm
    from repro.core.algorithm import BallAlgorithm

    algorithm = make_algorithm(name, n)
    if isinstance(algorithm, BallAlgorithm):
        return algorithm
    # Round-based algorithms join the grid through the E9 ball compiler.
    return BallSimulationOfRounds(algorithm)


def search_cell_row(
    spec: CampaignSpec,
    cell: CampaignCell,
    graph: Optional[Graph] = None,
    algorithm=None,
    adversary=None,
) -> dict:
    """Execute one search cell and return its JSON-friendly result row.

    ``graph``, ``algorithm`` and ``adversary`` default to freshly built
    instances (the behaviour of the worker path); a
    :class:`repro.api.session.Session` passes its cached objects instead so
    repeated queries share frontier plans and automorphism groups.
    """
    if graph is None:
        graph = build_topology(cell.topology, cell.n, cell.seed)
    if algorithm is None:
        algorithm = make_ball_algorithm(cell.algorithm, graph.n)
    if adversary is None:
        adversary = _build_adversary(spec, cell)
    started = time.perf_counter()
    with _obs_span(
        "engine.search_cell",
        topology=cell.topology,
        n=cell.n,
        algorithm=cell.algorithm,
        adversary=cell.adversary,
    ):
        result = adversary.maximise(graph, algorithm, objective=cell.objective)
    elapsed = time.perf_counter() - started
    cache_stats = result.cache_stats.as_dict() if result.cache_stats else None
    certificate = result.certificate
    return {
        "certificate": certificate.as_dict() if certificate is not None else None,
        "index": cell.index,
        "topology": cell.topology,
        "n": cell.n,
        "graph_n": graph.n,
        "graph": graph.name,
        "algorithm": cell.algorithm,
        "adversary": cell.adversary,
        "objective": cell.objective,
        "value": result.value,
        "evaluations": result.evaluations,
        "exact": result.exact,
        "witness_ids": list(result.assignment.identifiers()),
        "cache": cache_stats,
        "seed": cell.seed,
        "wall_time_s": elapsed,
    }


def run_cell(payload: tuple[CampaignSpec, CampaignCell]) -> dict:
    """Worker entry point: execute one campaign cell from a picklable payload."""
    spec, cell = payload
    return search_cell_row(spec, cell)


def run_campaign_rows(spec: CampaignSpec, workers: Optional[int] = 1) -> list[dict]:
    """Run every cell of the campaign, optionally sharded across processes.

    Rows come back ordered by cell index, identical at any worker count.
    This is the engine-internal path; user code should prefer
    :meth:`repro.api.session.Session.sweep`, which returns the same rows
    wrapped in a versioned :class:`repro.api.results.Result`.
    """
    cells = spec.cells()
    payloads = [(spec, cell) for cell in cells]
    rows = BatchExecutor(workers).map(run_cell, payloads)
    return sorted(rows, key=lambda row: row["index"])


def run_campaign(spec: CampaignSpec, workers: Optional[int] = 1) -> list[dict]:
    """Deprecated: use :meth:`repro.api.session.Session.sweep` instead.

    Thin shim over :func:`run_campaign_rows` (the historical row list is
    returned unchanged); it exists so pre-API callers keep working while
    new code goes through the unified query surface.
    """
    import warnings

    warnings.warn(
        "run_campaign is deprecated; use repro.Session().sweep(...) or "
        "repro.query(mode='sweep', ...) (repro.api), which return the same "
        "rows inside a versioned Result",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_campaign_rows(spec, workers=workers)


def write_rows(rows: Sequence[dict], path: str) -> None:
    """Write campaign rows as a JSON document with a self-describing header.

    The write is atomic (temp file + :func:`os.replace`), so an interrupted
    run never leaves a truncated document at ``path``.
    """
    from repro.utils.io import atomic_write_json

    atomic_write_json(path, {"kind": "repro-sweep", "version": 1, "rows": list(rows)})


def load_rows(path: str) -> list[dict]:
    """Read rows previously written by :func:`write_rows`."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("kind") != "repro-sweep":
        raise ConfigurationError(f"{path} is not a repro sweep JSON document")
    return list(document["rows"])


# ----------------------------------------------------------------------
# distribution campaigns (the `repro dist` grid)
# ----------------------------------------------------------------------

#: How a distribution cell is computed: exact orbit-weighted enumeration
#: (:mod:`repro.dist.exact`) or seeded Monte-Carlo (:mod:`repro.dist.sampling`).
DIST_METHODS = ("exact", "sample")


@dataclass(frozen=True)
class DistCell:
    """One fully specified point of a distribution grid.

    ``graph_seed`` is derived *without* the method so that the exact and
    the sampled cell of one ``(topology, n, algorithm)`` coordinate build
    the identical graph — the whole point of the comparison; ``seed``
    additionally folds the method in and feeds the Monte-Carlo sampling.
    """

    index: int
    topology: str
    n: int
    algorithm: str
    method: str
    graph_seed: int
    seed: int
    samples: int


@dataclass(frozen=True)
class DistSpec:
    """A grid of measure-distribution computations.

    The grid is ``topologies × sizes × algorithms × methods``; ``samples``
    parameterises the Monte-Carlo cells, and the two caps guard the exact
    cells exactly like the exact adversaries
    (:data:`repro.dist.exact.DEFAULT_MAX_CLASSES`).
    """

    topologies: tuple[str, ...] = ("cycle",)
    sizes: tuple[int, ...] = (6,)
    algorithms: tuple[str, ...] = ("largest-id",)
    methods: tuple[str, ...] = ("exact",)
    seed: int = 0
    samples: int = 256
    exact_max_nodes: int = 12
    max_classes: int = 250_000

    def __post_init__(self) -> None:
        for name in self.topologies:
            if name not in TOPOLOGY_BUILDERS:
                raise ConfigurationError(
                    f"unknown topology {name!r}; known: {', '.join(sorted(TOPOLOGY_BUILDERS))}"
                )
        for name in self.methods:
            if name not in DIST_METHODS:
                raise ConfigurationError(
                    f"unknown distribution method {name!r}; known: {', '.join(DIST_METHODS)}"
                )
        if self.samples <= 0:
            raise ConfigurationError(f"samples must be positive, got {self.samples}")

    def cells(self) -> list[DistCell]:
        """Expand the grid into deterministic, individually seeded cells."""
        grid = itertools.product(
            self.topologies, self.sizes, self.algorithms, self.methods
        )
        return [
            DistCell(
                index=index,
                topology=topology,
                n=n,
                algorithm=algorithm,
                method=method,
                graph_seed=derive_task_seed(self.seed, "dist", topology, n, algorithm),
                seed=derive_task_seed(self.seed, "dist", topology, n, algorithm, method),
                samples=self.samples,
            )
            for index, (topology, n, algorithm, method) in enumerate(grid)
        ]


def dist_cell_row(
    spec: DistSpec,
    cell: DistCell,
    graph: Optional[Graph] = None,
    algorithm=None,
    kernel=None,
) -> dict:
    """Execute one distribution cell and return its JSON-friendly row.

    The row embeds the full serialised
    :class:`~repro.dist.distribution.RoundDistribution` (key
    ``distribution``) next to the headline statistics of both measures, so
    consumers can either read the summary columns or reconstruct the whole
    distribution.  Exact rows carry the
    :class:`~repro.dist.exact.DistributionCertificate`; sampled rows carry
    the per-measure standard errors.  Like :func:`search_cell_row`,
    ``graph``/``algorithm`` accept a session's cached objects, and
    ``kernel`` a session-cached
    :class:`~repro.kernel.compile.CompiledInstance` for the sampled method;
    the row's ``kernel`` entry records which backend and rule evaluated it.
    """
    # Imported here for the same reason as make_adversary: the engine's
    # lower layers must stay importable without the higher dist package.
    from repro.dist.exact import exact_round_distribution
    from repro.dist.sampling import sample_round_distribution

    if graph is None:
        graph = build_topology(cell.topology, cell.n, cell.graph_seed)
    if algorithm is None:
        algorithm = make_ball_algorithm(cell.algorithm, graph.n)
    started = time.perf_counter()
    with _obs_span(
        "engine.dist_cell",
        topology=cell.topology,
        n=cell.n,
        method=cell.method,
    ):
        if cell.method == "exact":
            exact = exact_round_distribution(
                graph,
                algorithm,
                max_nodes=spec.exact_max_nodes,
                max_classes=spec.max_classes,
            )
            distribution = exact.distribution
            certificate = exact.certificate.as_dict()
            uncertainty = None
            kernel_info = exact.kernel
        else:
            if kernel is None:
                from repro.kernel.compile import compile_instance

                kernel = compile_instance(graph, algorithm, validate=False)
            sampled = sample_round_distribution(
                graph, algorithm, samples=cell.samples, seed=cell.seed, kernel=kernel
            )
            distribution = sampled.distribution
            certificate = None
            uncertainty = {
                "average": sampled.average.as_dict(),
                "maximum": sampled.maximum.as_dict(),
            }
            kernel_info = kernel.describe()
    elapsed = time.perf_counter() - started
    return _dist_row(cell, graph, distribution, certificate, uncertainty, kernel_info, elapsed)


def _dist_row(
    cell: DistCell,
    graph: Graph,
    distribution,
    certificate,
    uncertainty,
    kernel_info,
    elapsed: float,
) -> dict:
    """The shared row schema of :func:`dist_cell_row` and the batched path."""
    summary = distribution.summary()
    return {
        "index": cell.index,
        "topology": cell.topology,
        "n": cell.n,
        "graph_n": graph.n,
        "graph": graph.name,
        "algorithm": cell.algorithm,
        "method": cell.method,
        "exact": cell.method == "exact",
        "seed": cell.seed,
        "samples": None if cell.method == "exact" else cell.samples,
        "total_weight": distribution.total_weight,
        "average": summary["average"],
        "max": summary["max"],
        "uncertainty": uncertainty,
        "certificate": certificate,
        "kernel": kernel_info,
        "distribution": distribution.as_dict(),
        "wall_time_s": elapsed,
    }


def dist_cell_row_resumed(
    spec: DistSpec,
    cell: DistCell,
    graph: Optional[Graph] = None,
    algorithm=None,
    kernel=None,
    state: Optional[dict] = None,
) -> tuple[dict, dict]:
    """Execute one *sampled* cell resumably; return ``(row, estimator_state)``.

    The service-layer sibling of :func:`dist_cell_row` for ``method ==
    "sample"`` cells: the cell's draws stream through
    :func:`repro.dist.sampling.sample_round_distribution_resumable`, so the
    returned row is identical to :func:`dist_cell_row`'s (same schema, same
    estimates bit-for-bit, only ``wall_time_s`` differs) while the second
    return value is the portable estimator state a later, larger-budget
    repeat of the same cell continues from.  ``state`` accepts that earlier
    state; ``cell.samples`` is the *total* draw budget.
    """
    from repro.dist.sampling import sample_round_distribution_resumable

    if cell.method != "sample":
        raise ConfigurationError(
            f"dist_cell_row_resumed handles sampled cells only, got "
            f"{cell.method!r} (cell {cell.index})"
        )
    if graph is None:
        graph = build_topology(cell.topology, cell.n, cell.graph_seed)
    if algorithm is None:
        algorithm = make_ball_algorithm(cell.algorithm, graph.n)
    if kernel is None:
        from repro.kernel.compile import compile_instance

        kernel = compile_instance(graph, algorithm, validate=False)
    started = time.perf_counter()
    with _obs_span(
        "engine.dist_cell",
        topology=cell.topology,
        n=cell.n,
        method=cell.method,
    ):
        outcome = sample_round_distribution_resumable(
            graph,
            algorithm,
            samples=cell.samples,
            seed=cell.seed,
            kernel=kernel,
            state=state,
        )
    elapsed = time.perf_counter() - started
    sampled = outcome.result
    uncertainty = {
        "average": sampled.average.as_dict(),
        "maximum": sampled.maximum.as_dict(),
    }
    row = _dist_row(
        cell, graph, sampled.distribution, None, uncertainty, kernel.describe(), elapsed
    )
    return row, outcome.state


def dist_cell_rows_batched(
    spec: DistSpec,
    cells: Sequence[DistCell],
    graph_for: Callable[[DistCell], Graph],
    algorithm_for: Callable[[DistCell, Graph], Any],
    kernel_for: Callable[[Graph, Any], Any],
    workers: int = 1,
) -> list[dict]:
    """Evaluate a grid's *sampled* cells as one cross-cell kernel submission.

    Every cell's deterministic draw stream is materialised up front
    (:func:`repro.dist.sampling.draw_sample_rows`), all streams go through
    one :func:`repro.kernel.compile.simulate_many` call — a ragged
    multi-instance batch, so cells sharing a compiled instance merge into
    one row stream — and each cell's radii fold back into exactly the
    result :func:`repro.dist.sampling.sample_round_distribution` computes
    for the same seed.  Rows are identical to :func:`dist_cell_row` apart
    from timing: a cell's ``wall_time_s`` is its own fold time plus its
    row-count share of the shared kernel call.

    With ``workers > 1`` the per-cell simulations fan out over the warm
    :mod:`~repro.engine.pool` instead: each cell's ID matrix is published
    into shared memory (inline fallback when unavailable), workers
    reconstruct and cache the graph/kernel per cell family, and affinity
    keys pin a family's cells to one worker.  The radii — and therefore the
    folded rows — are bit-identical to the serial batch at any worker
    count; only the wall-time attribution differs.

    ``graph_for`` / ``algorithm_for`` / ``kernel_for`` resolve per-cell
    objects, so the session layer can pass its caches.  Exact cells are
    rejected — route them through :func:`dist_cell_row`.
    """
    from repro.dist.sampling import draw_sample_rows, fold_sampled_radii
    from repro.kernel.compile import BatchRequest, simulate_many

    prepared = []
    for cell in cells:
        if cell.method != "sample":
            raise ConfigurationError(
                f"dist_cell_rows_batched handles sampled cells only, got "
                f"{cell.method!r} (cell {cell.index})"
            )
        graph = graph_for(cell)
        algorithm = algorithm_for(cell, graph)
        kernel = kernel_for(graph, algorithm)
        rows = draw_sample_rows(graph.n, cell.samples, cell.seed)
        prepared.append((cell, graph, kernel, rows))
    if not prepared:
        return []
    total_rows = sum(len(rows) for _, _, _, rows in prepared)
    batch_started = time.perf_counter()
    executor = BatchExecutor(workers) if workers and workers > 1 else None
    if executor is not None and len(prepared) > 1 and executor.pool is not None:
        radii_blocks = _simulate_cells_pooled(executor, prepared)
    else:
        radii_blocks = simulate_many(
            [
                BatchRequest(kernel, rows, pre_validated=True)
                for _, _, kernel, rows in prepared
            ]
        )
    batch_elapsed = time.perf_counter() - batch_started
    out = []
    for (cell, graph, kernel, rows), radii in zip(prepared, radii_blocks):
        started = time.perf_counter()
        with _obs_span(
            "engine.dist_cell",
            topology=cell.topology,
            n=cell.n,
            method=cell.method,
        ):
            sampled = fold_sampled_radii(graph.n, radii, seed=cell.seed)
        elapsed = (
            time.perf_counter() - started
            + batch_elapsed * (len(rows) / total_rows)
        )
        uncertainty = {
            "average": sampled.average.as_dict(),
            "maximum": sampled.maximum.as_dict(),
        }
        out.append(
            _dist_row(
                cell,
                graph,
                sampled.distribution,
                None,
                uncertainty,
                kernel.describe(),
                elapsed,
            )
        )
    return out


def _simulate_cells_pooled(executor: BatchExecutor, prepared: Sequence[tuple]) -> list:
    """Fan per-cell simulations out over the warm pool; radii in cell order.

    Each cell's ID matrix is published once into shared memory and shipped
    as a handle (inline rows when shared memory is unavailable); tasks of
    the same ``(topology, n, graph_seed, algorithm)`` family share an
    affinity key so the worker that compiled that family's kernel serves
    all of them.
    """
    pool = executor.pool
    payloads = []
    keys = []
    pinned = []
    for cell, graph, _, rows in prepared:
        rows_field: Any = tuple(rows)
        if pool is not None:
            flat = array("q")
            for row in rows:
                flat.extend(row)
            ref = pool.publish(flat)
            if ref is not None:
                pinned.append(ref)
                rows_field = ("rows-ref", 0, len(rows), graph.n, ref)
        payloads.append(
            (
                cell.topology,
                cell.n,
                cell.graph_seed,
                cell.algorithm,
                cell.samples,
                cell.seed,
                rows_field,
            )
        )
        keys.append((cell.topology, cell.n, cell.graph_seed, cell.algorithm))
    try:
        return executor.map(run_dist_simulate, payloads, keys=keys)
    finally:
        for ref in pinned:
            pool.release(ref)


def run_dist_simulate(payload: tuple) -> list:
    """Worker entry point: simulate one sampled cell's draw stream.

    The payload carries the cell's family coordinates plus its ID matrix
    (a shared-memory handle or inline rows); the reconstructed graph and
    compiled kernel are cached per worker via
    :func:`repro.engine.pool.worker_cache`, and a vanished shared segment
    degrades to re-drawing the rows from the cell's seed — every path
    yields the same radii.
    """
    from repro.kernel.compile import BatchRequest, compile_instance, simulate_many

    topology, n, graph_seed, algorithm_name, samples, seed, rows_field = payload
    graph = worker_cache(
        "dist.graph",
        (topology, n, graph_seed),
        lambda: build_topology(topology, n, graph_seed),
    )
    kernel = worker_cache(
        "dist.kernel",
        (topology, n, graph_seed, algorithm_name),
        lambda: compile_instance(
            graph, make_ball_algorithm(algorithm_name, graph.n), validate=False
        ),
    )
    rows = _dist_rows_from_field(rows_field, graph.n, samples, seed)
    return simulate_many([BatchRequest(kernel, rows, pre_validated=True)])[0]


def _dist_rows_from_field(rows_field, n: int, samples: int, seed: int):
    """Materialise a cell's ID matrix: shm handle, inline rows, or re-draw."""
    if rows_field and rows_field[0] == "rows-ref":
        from repro.dist.sampling import draw_sample_rows

        _, offset, count, width, ref = rows_field
        try:
            flat = fetch_memoryview(ref).cast("q")
        except LookupError:
            # The segment is gone (publisher exited, eviction): the draw
            # stream is a pure function of (n, samples, seed) — redraw it.
            return draw_sample_rows(n, samples, seed)
        return [
            tuple(flat[(offset + index) * width : (offset + index + 1) * width])
            for index in range(count)
        ]
    return rows_field


def run_dist_cell(payload: tuple[DistSpec, DistCell]) -> dict:
    """Worker entry point: execute one distribution cell from a picklable payload."""
    spec, cell = payload
    return dist_cell_row(spec, cell)


def run_dist_campaign_rows(spec: DistSpec, workers: Optional[int] = 1) -> list[dict]:
    """Run every cell of a distribution campaign, optionally across processes.

    Rows come back ordered by cell index, identical at any worker count.
    Engine-internal; user code should prefer
    :meth:`repro.api.session.Session.distribution`.
    """
    cells = spec.cells()
    payloads = [(spec, cell) for cell in cells]
    rows = BatchExecutor(workers).map(run_dist_cell, payloads)
    return sorted(rows, key=lambda row: row["index"])


def run_dist_campaign(spec: DistSpec, workers: Optional[int] = 1) -> list[dict]:
    """Deprecated: use :meth:`repro.api.session.Session.distribution` instead.

    Thin shim over :func:`run_dist_campaign_rows`; the historical row list
    is returned unchanged.
    """
    import warnings

    warnings.warn(
        "run_dist_campaign is deprecated; use repro.Session().distribution(...) "
        "or repro.query(mode='distribution', ...) (repro.api), which return "
        "the same rows inside a versioned Result",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_dist_campaign_rows(spec, workers=workers)


def aggregate_dist_rows(rows: Sequence[dict]) -> list[dict]:
    """Pool distribution rows across graphs, per ``(algorithm, method)``.

    Scalar measure marginals of different-sized graphs are pooled by weight
    (:meth:`~repro.dist.distribution.DiscreteDistribution.pooled`), giving
    the distribution of each measure over the whole graph family — the
    cross-graph aggregation the campaign layer owes the experiments.
    """
    from repro.dist.distribution import DiscreteDistribution, RoundDistribution

    groups: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        groups.setdefault((row["algorithm"], row["method"]), []).append(row)
    aggregates = []
    for (algorithm, method), members in sorted(groups.items()):
        distributions = [
            RoundDistribution.from_dict(member["distribution"]) for member in members
        ]
        pooled_average = DiscreteDistribution.pooled(
            [distribution.average_distribution() for distribution in distributions]
        )
        pooled_max = DiscreteDistribution.pooled(
            [distribution.max_distribution() for distribution in distributions]
        )
        aggregates.append(
            {
                "algorithm": algorithm,
                "method": method,
                "cells": len(members),
                "total_weight": pooled_average.total_weight,
                "average": pooled_average.summary(),
                "max": pooled_max.summary(),
            }
        )
    return aggregates


def write_dist_rows(
    rows: Sequence[dict], path: str, aggregates: Optional[Sequence[dict]] = None
) -> None:
    """Write distribution rows as a JSON document with a self-describing header.

    The document schema (``kind: "repro-dist"``) is specified in
    ``docs/distributions.md``; :func:`load_dist_rows` reads it back.
    ``aggregates`` accepts a precomputed :func:`aggregate_dist_rows` result
    (recomputing it re-deserializes every row's distribution).
    """
    from repro.utils.io import atomic_write_json

    if aggregates is None:
        aggregates = aggregate_dist_rows(rows)
    document = {
        "kind": "repro-dist",
        "version": 1,
        "rows": list(rows),
        "aggregates": list(aggregates),
    }
    atomic_write_json(path, document)


def load_dist_rows(path: str) -> list[dict]:
    """Read rows previously written by :func:`write_dist_rows`."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("kind") != "repro-dist":
        raise ConfigurationError(f"{path} is not a repro dist JSON document")
    return list(document["rows"])
