"""Parallel fan-out of simulations over processes.

Sweeps over identifier assignments, graphs and campaign cells are
embarrassingly parallel: every task is a pure function of its inputs.
:class:`BatchExecutor` shards such tasks over a ``multiprocessing`` pool and
returns results **in submission order**, so parallel runs are bit-identical
to serial ones.

Determinism across workers is preserved by *per-task seeding*: any task that
needs randomness derives its seed with :func:`derive_task_seed`, a stable
hash of the base seed and the task's coordinates.  Adding workers, removing
workers or reordering the schedule therefore never changes a task's random
stream.

Worker payloads must be picklable; the module-level worker functions
(:func:`simulate_shard`) reconstruct sessions inside the worker so each
process pays the per-graph precomputation once per shard, not once per task.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from typing import TYPE_CHECKING, Callable, Optional, Sequence, TypeVar

from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm

T = TypeVar("T")
R = TypeVar("R")


def derive_task_seed(base_seed: int, *coordinates: object) -> int:
    """A deterministic 63-bit seed for the task at the given coordinates.

    Stable across processes, Python versions and worker counts (it hashes the
    ``repr`` of the coordinates with BLAKE2b rather than relying on
    ``hash()``, which is salted per interpreter).
    """
    digest = hashlib.blake2b(
        repr((base_seed,) + coordinates).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


class BatchExecutor:
    """Run picklable tasks across a process pool, preserving order.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` uses the CPU count; ``1`` (or
        fewer tasks than two) runs serially in-process, which keeps small
        jobs free of pool start-up cost and makes the executor safe to use
        unconditionally.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every payload, in order; fan out when worthwhile."""
        payloads = list(payloads)
        if self.workers == 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        processes = min(self.workers, len(payloads))
        with multiprocessing.get_context().Pool(processes=processes) as pool:
            return pool.map(fn, payloads)


def simulate_shard(
    payload: tuple[Graph, "BallAlgorithm", tuple[IdentifierAssignment, ...], Optional[int], bool],
) -> list[ExecutionTrace]:
    """Worker: run one session over a shard of identifier assignments.

    The shard shares a single :class:`FrontierRunner` (and, when requested, a
    :class:`DecisionCache`), so the per-graph precomputation and the memoised
    decisions are amortised across the whole shard.
    """
    graph, algorithm, assignments, max_radius, use_cache = payload
    cache = DecisionCache(algorithm) if use_cache else None
    runner = FrontierRunner(graph, algorithm, cache=cache, max_radius=max_radius)
    return [runner.run(ids) for ids in assignments]


def run_simulation_batch(
    graph: Graph,
    assignments: Sequence[IdentifierAssignment],
    algorithm: "BallAlgorithm",
    max_radius: Optional[int] = None,
    workers: Optional[int] = 1,
    use_cache: bool = True,
) -> list[ExecutionTrace]:
    """Run one algorithm on many assignments, optionally across processes.

    Returns one trace per assignment, in input order, regardless of the
    worker count.  With ``workers=1`` everything runs in-process through a
    single shared session, which is also the fastest choice for small
    batches.
    """
    assignments = list(assignments)
    if not assignments:
        return []
    executor = BatchExecutor(workers)
    shard_count = min(executor.workers, len(assignments))
    if shard_count == 1:
        return simulate_shard((graph, algorithm, tuple(assignments), max_radius, use_cache))
    shards: list[list[IdentifierAssignment]] = [[] for _ in range(shard_count)]
    for index, ids in enumerate(assignments):
        shards[index % shard_count].append(ids)
    payloads = [
        (graph, algorithm, tuple(shard), max_radius, use_cache) for shard in shards
    ]
    results = executor.map(simulate_shard, payloads)
    # Undo the round-robin sharding to restore input order.
    traces: list[Optional[ExecutionTrace]] = [None] * len(assignments)
    for shard_index, shard_traces in enumerate(results):
        for offset, trace in enumerate(shard_traces):
            traces[shard_index + offset * shard_count] = trace
    return [trace for trace in traces if trace is not None]
