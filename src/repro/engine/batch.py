"""Parallel fan-out of simulations over processes.

Sweeps over identifier assignments, graphs and campaign cells are
embarrassingly parallel: every task is a pure function of its inputs.
:class:`BatchExecutor` shards such tasks over the process-wide **warm
worker pool** (:mod:`repro.engine.pool`) and returns results **in
submission order**, so parallel runs are bit-identical to serial ones.
The pool's workers persist across ``.map()`` calls — repeated dispatch
pays no pool start-up — and its shared-memory transport and worker-side
caches are available to callers that pass large buffers.

Determinism across workers is preserved by *per-task seeding*: any task that
needs randomness derives its seed with :func:`derive_task_seed`, a stable
hash of the base seed and the task's coordinates.  Adding workers, removing
workers or reordering the schedule therefore never changes a task's random
stream.

Worker payloads must be picklable; the module-level worker functions
(:func:`simulate_shard`) reconstruct sessions inside the worker so each
process pays the per-graph precomputation once per shard, not once per task.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable, Optional, Sequence, TypeVar

from repro.engine.cache import DecisionCache
from repro.engine.pool import WorkerPool, get_pool, in_worker, resolve_workers
from repro.engine.frontier import FrontierRunner
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm

T = TypeVar("T")
R = TypeVar("R")


def derive_task_seed(base_seed: int, *coordinates: object) -> int:
    """A deterministic 63-bit seed for the task at the given coordinates.

    Stable across processes, Python versions and worker counts (it hashes the
    ``repr`` of the coordinates with BLAKE2b rather than relying on
    ``hash()``, which is salted per interpreter).
    """
    digest = hashlib.blake2b(
        repr((base_seed,) + coordinates).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


class BatchExecutor:
    """Run picklable tasks across the warm process pool, preserving order.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` resolves through
        :func:`repro.engine.pool.resolve_workers` (the ``REPRO_WORKERS``
        environment override, then the CPU count); ``1`` (or fewer tasks
        than two) runs serially in-process, which keeps small jobs free of
        dispatch cost and makes the executor safe to use unconditionally.
        Inside a pool worker the executor always runs serially, so nested
        fan-out cannot fork from a daemon process.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = resolve_workers(workers)

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The warm pool this executor dispatches through (``None`` serial)."""
        if self.workers == 1 or in_worker():
            return None
        return get_pool(self.workers)

    def map(
        self,
        fn: Callable[[T], R],
        payloads: Sequence[T],
        keys: Optional[Sequence] = None,
    ) -> list[R]:
        """Apply ``fn`` to every payload, in order; fan out when worthwhile.

        ``keys`` (optional) gives per-task affinity hints: tasks sharing a
        key run on the same worker so its caches are reused (see
        :meth:`repro.engine.pool.WorkerPool.map`).
        """
        payloads = list(payloads)
        if self.workers == 1 or len(payloads) <= 1 or in_worker():
            return [fn(payload) for payload in payloads]
        return get_pool(self.workers).map(fn, payloads, keys=keys)


def simulate_shard(
    payload: tuple[Graph, "BallAlgorithm", tuple[IdentifierAssignment, ...], Optional[int], bool],
) -> list[ExecutionTrace]:
    """Worker: run one session over a shard of identifier assignments.

    The shard shares a single :class:`FrontierRunner` (and, when requested, a
    :class:`DecisionCache`), so the per-graph precomputation and the memoised
    decisions are amortised across the whole shard.
    """
    graph, algorithm, assignments, max_radius, use_cache = payload
    cache = DecisionCache(algorithm) if use_cache else None
    runner = FrontierRunner(graph, algorithm, cache=cache, max_radius=max_radius)
    return [runner.run(ids) for ids in assignments]


def run_simulation_batch(
    graph: Graph,
    assignments: Sequence[IdentifierAssignment],
    algorithm: "BallAlgorithm",
    max_radius: Optional[int] = None,
    workers: Optional[int] = 1,
    use_cache: bool = True,
) -> list[ExecutionTrace]:
    """Run one algorithm on many assignments, optionally across processes.

    Returns one trace per assignment, in input order, regardless of the
    worker count.  With ``workers=1`` everything runs in-process through a
    single shared session, which is also the fastest choice for small
    batches.
    """
    assignments = list(assignments)
    if not assignments:
        return []
    executor = BatchExecutor(workers)
    shard_count = min(executor.workers, len(assignments))
    if shard_count == 1:
        return simulate_shard((graph, algorithm, tuple(assignments), max_radius, use_cache))
    shards: list[list[IdentifierAssignment]] = [[] for _ in range(shard_count)]
    for index, ids in enumerate(assignments):
        shards[index % shard_count].append(ids)
    payloads = [
        (graph, algorithm, tuple(shard), max_radius, use_cache) for shard in shards
    ]
    results = executor.map(simulate_shard, payloads)
    # Undo the round-robin sharding to restore input order.
    traces: list[Optional[ExecutionTrace]] = [None] * len(assignments)
    for shard_index, shard_traces in enumerate(results):
        for offset, trace in enumerate(shard_traces):
            traces[shard_index + offset * shard_count] = trace
    return [trace for trace in traces if trace is not None]
