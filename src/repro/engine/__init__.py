"""High-throughput simulation engine.

The fast execution path for the whole library, layered as:

* :mod:`repro.engine.frontier` — :class:`FrontierRunner`, a per-``(graph,
  algorithm)`` session that grows every node's ball incrementally by
  frontier BFS and advances all undecided nodes round by round;
* :mod:`repro.engine.cache` — :class:`DecisionCache`, memoising
  ``algorithm.decide`` on canonical (optionally id-relabeled) ball
  signatures, with hit/miss statistics;
* :mod:`repro.engine.batch` — :class:`BatchExecutor`, deterministic
  multiprocessing fan-out with per-task seeding;
* :mod:`repro.engine.campaign` — declarative sweep campaigns over
  (topology × n × algorithm × adversary) grids, exposed as ``repro sweep``.

The legacy entry points (:func:`repro.core.runner.run_ball_algorithm`, the
adversaries, the measures) are thin wrappers over this package, so existing
code gets the fast path for free; the engine's traces are bit-identical to
the legacy runner's (see ``tests/property/test_property_engine.py``).
"""

from repro.engine.batch import BatchExecutor, derive_task_seed, run_simulation_batch
from repro.engine.cache import CacheStats, DecisionCache
from repro.engine.campaign import (
    ADVERSARY_NAMES,
    DIST_METHODS,
    TOPOLOGY_BUILDERS,
    CampaignCell,
    CampaignSpec,
    DistCell,
    DistSpec,
    build_topology,
    load_dist_rows,
    load_rows,
    run_campaign,
    run_campaign_rows,
    run_dist_campaign,
    run_dist_campaign_rows,
    write_dist_rows,
    write_rows,
)
from repro.engine.frontier import FrontierRunner, frontier_run

__all__ = [
    "ADVERSARY_NAMES",
    "BatchExecutor",
    "CacheStats",
    "CampaignCell",
    "CampaignSpec",
    "DIST_METHODS",
    "DecisionCache",
    "DistCell",
    "DistSpec",
    "FrontierRunner",
    "TOPOLOGY_BUILDERS",
    "build_topology",
    "derive_task_seed",
    "frontier_run",
    "load_dist_rows",
    "load_rows",
    "run_campaign",
    "run_campaign_rows",
    "run_dist_campaign",
    "run_dist_campaign_rows",
    "run_simulation_batch",
    "write_dist_rows",
    "write_rows",
]
