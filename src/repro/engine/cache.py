"""Memoisation of ball decisions.

Every measure in the paper is a worst case *over identifier assignments*, so
the adversaries of :mod:`repro.core.adversary` evaluate the same algorithm on
the same graph under thousands of permutations.  Across those permutations
(and across the nodes of a single run) the balls handed to
``algorithm.decide`` repeat massively: a radius-``r`` ball is determined by a
small neighbourhood, and on structured topologies the number of distinct
neighbourhood contents is far below the number of evaluations.

:class:`DecisionCache` memoises ``decide`` on a canonical ball signature
(:func:`repro.model.ball.ball_signature`):

* for algorithms that declare ``order_invariant = True`` the signature is
  **id-relabeled** (identifiers replaced by their rank inside the ball), so
  balls that differ only by an order-preserving renaming share one entry;
* for all other algorithms the signature keeps the actual identifiers, which
  is sound for every deterministic LOCAL algorithm — indistinguishable views
  must receive identical outputs.

Hit/miss statistics are tracked so benchmarks and sweep campaigns can report
cache effectiveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.model.ball import BallView

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm

#: Sentinel distinguishing "not cached" from a cached ``None`` decision
#: (``None`` is a meaningful outcome: "keep growing the ball").
MISSING = object()


@dataclass
class CacheStats:
    """Lookup counters of one :class:`DecisionCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly summary (used by benchmark artifacts and sweeps)."""
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


class DecisionCache:
    """Memoise one algorithm's ``decide`` on canonical ball signatures.

    A cache is bound to a single algorithm instance; binding (rather than
    mixing algorithms in one table) removes any possibility of cross-
    algorithm key collisions.

    Parameters
    ----------
    algorithm:
        The deterministic ball algorithm whose decisions are memoised.
    relabel_ids:
        Override the key normalisation.  Defaults to the algorithm's own
        ``order_invariant`` declaration; forcing ``True`` for an algorithm
        that inspects identifier *values* is unsound.
    max_entries:
        Optional bound on the table size.  When full, new entries are simply
        not inserted (lookups still work), which keeps long sweep campaigns
        at bounded memory without invalidation complexity.
    pattern_limit:
        Balls with more than this many members bypass the cache entirely
        (``None`` disables the bypass).  Identifier patterns that long
        essentially never repeat across random permutations, yet computing
        their keys costs ``O(k log k)`` per decision — skipping them keeps
        the memoisation overhead where the hits are.  The default of 32
        comfortably covers every ball an exhaustive (``n <= 9``) search can
        produce.
    """

    #: Default member-count threshold above which balls are not memoised.
    DEFAULT_PATTERN_LIMIT = 32

    def __init__(
        self,
        algorithm: "BallAlgorithm",
        relabel_ids: Optional[bool] = None,
        max_entries: Optional[int] = None,
        pattern_limit: Optional[int] = DEFAULT_PATTERN_LIMIT,
    ) -> None:
        self.algorithm = algorithm
        self.relabel_ids = (
            bool(getattr(algorithm, "order_invariant", False))
            if relabel_ids is None
            else relabel_ids
        )
        self.max_entries = max_entries
        self.pattern_limit = pattern_limit
        self.stats = CacheStats()
        self._table: dict[tuple, Any] = {}
        # Set by the first FrontierRunner that adopts this cache.  Runner keys
        # embed session-interned structural ids, which are meaningless in any
        # other session, so a cache must never serve two sessions.
        self.session_owner: Any = None

    def __len__(self) -> int:
        return len(self._table)

    def key_for(self, ball: BallView) -> tuple:
        """The cache key of a materialised ball view."""
        return ball.signature(relabel_ids=self.relabel_ids)

    def lookup(self, key: tuple) -> Any:
        """Cached decision for ``key``, or :data:`MISSING` (updates stats)."""
        value = self._table.get(key, MISSING)
        if value is MISSING:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def store(self, key: tuple, output: Any) -> None:
        """Record a decision (a ``None`` decision is cached too)."""
        if self.max_entries is None or len(self._table) < self.max_entries:
            self._table[key] = output

    def decide(self, ball: BallView) -> Any:
        """Memoised ``algorithm.decide(ball)`` (bypassed above the limit)."""
        if self.pattern_limit is not None and ball.size > self.pattern_limit:
            return self.algorithm.decide(ball)
        key = self.key_for(ball)
        output = self.lookup(key)
        if output is MISSING:
            output = self.algorithm.decide(ball)
            self.store(key, output)
        return output

    def bind_session(self, session: Any) -> None:
        """Claim the cache for one runner session (idempotent for that session).

        The engine's cache keys contain structural ids interned *per
        session*, so entries written under one session are garbage under
        another — sharing a cache between sessions (e.g. two runners on
        different graphs) would silently return wrong decisions.  Build one
        cache per :class:`~repro.engine.frontier.FrontierRunner` instead.
        """
        if self.session_owner is not None and self.session_owner is not session:
            raise ValueError(
                "this DecisionCache is already bound to another engine session; "
                "its keys are session-local — create a fresh cache per FrontierRunner"
            )
        self.session_owner = session

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        self._table.clear()
        self.stats = CacheStats()
