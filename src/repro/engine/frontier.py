"""Incremental, round-synchronised execution of ball algorithms.

The legacy runner (:mod:`repro.core.runner`) re-extracts every ball from
scratch for each ``(node, radius)`` pair: growing a node from radius ``r`` to
``r + 1`` filters the full distance map again and rescans every member's
adjacency.  The engine exploits a simple observation: on a fixed graph the
*structure* of every ball — which positions join at which radius, which
edges appear, through which ports — is completely independent of the
identifier assignment.  A :class:`FrontierRunner` session therefore computes
one **frontier plan** per centre (the BFS layers with their edges and ports,
discovered incrementally, frontier by frontier) and reuses it across every
assignment it executes: a single run only translates plan positions into
identifiers, and all undecided nodes advance round by round in one
synchronised pass, exactly like the LOCAL model itself.

The plans also make decision memoisation cheap.  Each ``(centre, radius)``
pair gets an interned **structural key** (computed once per session); the
per-run part of a cache key is then just the identifier pattern of the
ball's members in discovery order — ``O(ball)`` work with no sorting of
edges or ports.  With a :class:`~repro.engine.cache.DecisionCache` attached,
a cache hit skips both the ball-view construction and ``algorithm.decide``.

The produced :class:`~repro.model.trace.ExecutionTrace` is identical to the
legacy runner's, a property enforced by
``tests/property/test_property_engine.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.engine.cache import MISSING, DecisionCache
from repro.errors import AlgorithmError, TopologyError
from repro.model.ball import BallView
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace, NodeRecord
from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm


class _CenterPlan:
    """The assignment-independent BFS structure of one centre's balls.

    ``discovery`` lists the ball members in a canonical discovery order
    (layer by layer, adjacency-scan order within a layer); ``member_counts[r]``
    and ``edge_counts[r]`` are the prefix lengths covering radius ``r``, so
    the radius-``r`` ball is always a *prefix* of the discovery and edge
    streams — growing a ball is mere prefix extension.
    """

    __slots__ = (
        "center",
        "discovery",
        "distances",
        "member_counts",
        "edges",
        "edge_counts",
        "layer_streams",
        "_prefixes",
        "_view_parts",
    )

    def __init__(
        self,
        center: int,
        adjacency: list[tuple[tuple[int, int, int], ...]],
        degrees: tuple[int, ...],
    ) -> None:
        self.center = center
        discovery = [center]
        distances = [0]
        # Members get their index when *processed*, so during a layer's scan
        # ``index_of`` holds exactly the earlier-discovered members.
        index_of = {center: 0}
        seen = {center}
        # Edge stream: (position_a, position_b, port_a_to_b, port_b_to_a),
        # emitted by the later-discovered endpoint, so each edge appears once.
        edges: list[tuple[int, int, int, int]] = []
        self.member_counts = [1]
        self.edge_counts = [0]
        # Structural layer streams: per new member, its full-graph degree and
        # its edges to earlier-discovered members as (earlier_index, ports).
        # Identical streams <=> structurally indistinguishable growth.
        layer_streams: list[tuple] = [((degrees[center],),)]
        frontier = [center]
        radius = 0
        while frontier:
            radius += 1
            new_positions: list[int] = []
            for u in frontier:
                for v, _, _ in adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        new_positions.append(v)
            if not new_positions:
                break
            stream: list[tuple] = []
            for v in new_positions:
                member_edges: list[tuple[int, int, int]] = []
                for u, port_vu, port_uv in adjacency[v]:
                    earlier = index_of.get(u)
                    if earlier is not None:
                        edges.append((v, u, port_vu, port_uv))
                        member_edges.append((earlier, port_vu, port_uv))
                index_of[v] = len(discovery)
                discovery.append(v)
                distances.append(radius)
                stream.append((degrees[v], tuple(member_edges)))
            self.member_counts.append(len(discovery))
            self.edge_counts.append(len(edges))
            layer_streams.append(tuple(stream))
            frontier = new_positions
        self.discovery = tuple(discovery)
        self.distances = tuple(distances)
        self.edges = tuple(edges)
        self.layer_streams = layer_streams
        self._prefixes: list[tuple[int, ...]] = []
        self._view_parts: list[tuple] = []

    def saturation_radius(self) -> int:
        """Smallest radius whose ball already contains every reachable node."""
        return len(self.member_counts) - 1

    def counts_at(self, radius: int) -> tuple[int, int]:
        """(member prefix length, edge prefix length) of the radius-r ball."""
        bounded = min(radius, len(self.member_counts) - 1)
        return self.member_counts[bounded], self.edge_counts[bounded]

    def prefix(self, radius: int) -> tuple[int, ...]:
        """Members of the radius-``radius`` ball, in discovery order (cached)."""
        bounded = min(radius, len(self.member_counts) - 1)
        prefixes = self._prefixes
        while len(prefixes) <= bounded:
            prefixes.append(self.discovery[: self.member_counts[len(prefixes)]])
        return prefixes[bounded]

    def view_parts(
        self, radius: int, degrees: tuple[int, ...]
    ) -> tuple[tuple, tuple, tuple, tuple]:
        """Position-space parts of the radius-``radius`` ball (cached).

        Returns ``(member_items, degree_items, edge_pairs, port_items)`` in
        position space; :meth:`FrontierRunner._view` translates them into
        identifier space with C-level comprehensions.  Cached per radius so
        the Python-level assembly runs once per ``(centre, radius)`` per
        graph, not once per miss.
        """
        bounded = min(radius, len(self.member_counts) - 1)
        parts = self._view_parts
        while len(parts) <= bounded:
            depth = len(parts)
            members = self.member_counts[depth]
            edge_count = self.edge_counts[depth]
            member_items = tuple(
                (self.discovery[i], self.distances[i]) for i in range(members)
            )
            degree_items = tuple(
                (position, degrees[position]) for position, _ in member_items
            )
            edge_pairs = tuple((a, b) for a, b, _, _ in self.edges[:edge_count])
            port_items = []
            for a, b, port_ab, port_ba in self.edges[:edge_count]:
                port_items.append((a, b, port_ab))
                port_items.append((b, a, port_ba))
            parts.append((member_items, degree_items, edge_pairs, tuple(port_items)))
        return parts[bounded]


def engine_structure(
    graph: Graph,
) -> tuple[
    list[tuple[tuple[int, int, int], ...]],
    dict[int, _CenterPlan],
    tuple[int, ...],
]:
    """The graph's shared ``(adjacency, frontier plans, degrees)`` structure.

    Adjacency triples ``(neighbour, port_v_to_u, port_u_to_v)``, the
    per-centre :class:`_CenterPlan` table and the degree vector are pure
    graph structure, so they are computed once and cached *on the graph
    object* — every :class:`FrontierRunner` session and every
    :class:`~repro.kernel.compile.CompiledInstance` that touches the graph
    shares them.
    """
    structure = getattr(graph, "_engine_structure", None)
    if structure is None:
        adjacency: list[tuple[tuple[int, int, int], ...]] = []
        for v in graph.positions():
            triples = []
            for port_vu, u in enumerate(graph.neighbors(v)):
                triples.append((u, port_vu, graph.port_to(u, v)))
            adjacency.append(tuple(triples))
        degrees = tuple(len(triples) for triples in adjacency)
        structure = (adjacency, {}, degrees)
        graph._engine_structure = structure  # type: ignore[attr-defined]
    return structure


def center_plan(graph: Graph, center: int) -> _CenterPlan:
    """The (cached) frontier plan of ``center`` on ``graph``.

    The single construction point for :class:`_CenterPlan` objects:
    :meth:`FrontierRunner._plan` and the kernel's compiled instances both
    resolve plans through here, so the shared per-graph table can never
    hold plans built two different ways.
    """
    adjacency, plans, degrees = engine_structure(graph)
    plan = plans.get(center)
    if plan is None:
        plan = _CenterPlan(center, adjacency, degrees)
        plans[center] = plan
    return plan


class FrontierRunner:
    """Fast execution session for one ``(graph, algorithm)`` pair.

    Parameters
    ----------
    graph, algorithm:
        The fixed part of the instance.  Connectivity and
        ``algorithm.supports_graph`` are checked once at construction
        (disable with ``validate=False`` when the caller already did).
    cache:
        Optional :class:`DecisionCache`; must be bound to ``algorithm``.
        With a cache, structurally repeated balls skip both the view
        construction and ``decide``.
    max_radius:
        Optional hard cap on the radius explored per node.  Defaults to one
        more than the node's eccentricity, like the legacy runner.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: "BallAlgorithm",
        cache: Optional[DecisionCache] = None,
        max_radius: Optional[int] = None,
        validate: bool = True,
    ) -> None:
        if cache is not None:
            if cache.algorithm is not algorithm:
                raise AlgorithmError(
                    "the DecisionCache is bound to a different algorithm instance; "
                    "decisions would be attributed across algorithms"
                )
            try:
                cache.bind_session(self)
            except ValueError as exc:
                raise AlgorithmError(str(exc)) from exc
        if validate:
            if not graph.is_connected():
                raise TopologyError("the LOCAL simulators require a connected graph")
            if not algorithm.supports_graph(graph):
                raise TopologyError(
                    f"algorithm {algorithm.name!r} does not support graph {graph.name!r}"
                )
        self.graph = graph
        self.algorithm = algorithm
        self.cache = cache
        self.max_radius = max_radius
        # (neighbour, port_v_to_u, port_u_to_v) triples; computing the reverse
        # ports once per graph replaces one list.index() per ball edge per
        # extraction in the legacy path.  Adjacency, frontier plans and the
        # degree vector are pure graph structure, so they are cached *on the
        # graph* and shared by every session (and every algorithm) that
        # touches it.
        self._adjacency, self._plans, self._degrees = engine_structure(graph)
        # Interning table for structural keys: same small integer <=> same
        # structural growth history, across centres and radii.  Per session,
        # because the interned ids are only meaningful relative to one table.
        self._intern: dict[tuple, int] = {}
        self._struct_ids: dict[int, list[int]] = {}
        self._node_meta: Optional[list[tuple[_CenterPlan, int]]] = None
        # Fused per-(centre, radius) cache-key parts: (struct_id, prefix),
        # indexable straight from the hot loop.
        self._key_parts: dict[int, list[tuple[int, tuple[int, ...]]]] = {}

    # ------------------------------------------------------------------
    # plans and structural keys
    # ------------------------------------------------------------------
    def _plan(self, center: int) -> _CenterPlan:
        return center_plan(self.graph, center)

    def _struct_id(self, plan: _CenterPlan, radius: int) -> int:
        """Interned structural key of ``plan``'s radius-``radius`` ball.

        Chained interning: the key at radius ``r`` is the interned pair of
        the key at ``r - 1`` and the layer-``r`` stream, so equality of keys
        implies equality of the whole growth history *including the radius*
        (saturated balls keep extending the chain with empty layers).
        """
        struct_ids = self._struct_ids.get(plan.center)
        if struct_ids is None:
            struct_ids = self._struct_ids[plan.center] = []
        intern = self._intern
        while len(struct_ids) <= radius:
            depth = len(struct_ids)
            if depth == 0:
                key: tuple = ("root", plan.layer_streams[0])
            else:
                stream = (
                    plan.layer_streams[depth]
                    if depth < len(plan.layer_streams)
                    else ()
                )
                key = (struct_ids[depth - 1], stream)
            struct_ids.append(intern.setdefault(key, len(intern)))
        return struct_ids[radius]

    # ------------------------------------------------------------------
    # ball materialisation and decisions
    # ------------------------------------------------------------------
    def _cap(self, position: int) -> int:
        """Radius cap of ``position`` (legacy semantics: eccentricity + 1)."""
        if self.max_radius is not None:
            return self.max_radius
        return self._plan(position).saturation_radius() + 1

    def _view(
        self, plan: _CenterPlan, radius: int, identifiers: tuple[int, ...]
    ) -> BallView:
        """Materialise the radius-``radius`` ball view from the plan prefix."""
        member_items, degree_items, edge_pairs, port_items = plan.view_parts(
            radius, self._degrees
        )
        return BallView(
            center_id=identifiers[plan.center],
            radius=radius,
            distance_by_id={identifiers[p]: d for p, d in member_items},
            degree_by_id={identifiers[p]: d for p, d in degree_items},
            edges=frozenset(
                frozenset((identifiers[a], identifiers[b])) for a, b in edge_pairs
            ),
            port_by_pair={
                (identifiers[a], identifiers[b]): port for a, b, port in port_items
            },
            # The ball is saturated exactly when it holds the whole reachable
            # component — equivalent to the degree criterion, known for free.
            full_graph=len(member_items) == len(plan.discovery),
        )

    def _key_parts_for(
        self, plan: _CenterPlan, radius: int
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Per-centre list of ``(struct_id, member prefix)`` up to ``radius``.

        The hot loop indexes this list directly; it is extended on demand and
        lives for the whole session, so the Python-level assembly of cache
        keys runs once per ``(centre, radius)``, not once per decision.
        """
        parts = self._key_parts.get(plan.center)
        if parts is None:
            parts = self._key_parts[plan.center] = []
        while len(parts) <= radius:
            depth = len(parts)
            parts.append((self._struct_id(plan, depth), plan.prefix(depth)))
        return parts

    def _key(self, plan: _CenterPlan, radius: int, identifiers: tuple[int, ...]) -> tuple:
        """Cache key of the radius-``radius`` ball under ``identifiers``.

        The structural half is interned once per session; the per-run half is
        the identifier pattern of the members in discovery order —
        relabeled to its argsort (a canonical encoding of the *relative
        order*) when the cache is order-invariant.
        """
        struct_id, prefix = self._key_parts_for(plan, radius)[radius]
        pattern = tuple(map(identifiers.__getitem__, prefix))
        if self.cache.relabel_ids:
            pattern = tuple(sorted(range(len(pattern)), key=pattern.__getitem__))
        return (struct_id, pattern)

    def _decide(
        self, plan: _CenterPlan, radius: int, identifiers: tuple[int, ...]
    ) -> Any:
        cache = self.cache
        if cache is None:
            return self.algorithm.decide(self._view(plan, radius, identifiers))
        members, _ = plan.counts_at(radius)
        if cache.pattern_limit is not None and members > cache.pattern_limit:
            return self.algorithm.decide(self._view(plan, radius, identifiers))
        key = self._key(plan, radius, identifiers)
        output = cache.lookup(key)
        if output is MISSING:
            output = self.algorithm.decide(self._view(plan, radius, identifiers))
            cache.store(key, output)
        return output

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, ids: IdentifierAssignment) -> ExecutionTrace:
        """Execute the algorithm under ``ids`` and return its trace."""
        graph = self.graph
        if ids.n != graph.n:
            raise TopologyError(
                f"identifier assignment covers {ids.n} positions but graph has {graph.n}"
            )
        identifiers = ids.identifiers()
        degrees = self._degrees
        records: dict[int, NodeRecord] = {}
        exhausted: list[int] = []
        if self._node_meta is None:
            self._node_meta = [
                (self._plan(position), self._cap(position))
                for position in graph.positions()
            ]
        # Per-node run state for the uncached/miss path: live ball dicts grown
        # lazily by layer deltas (never rebuilt per radius) and only allocated
        # on the first cache miss.  The views handed to ``decide`` share these
        # dicts — sound because algorithms are pure functions of the view
        # that must not retain it across calls.
        # Entry: [position, plan, cap, built_content_radius, dist, deg, edges,
        # ports, key_parts] with built_content_radius == -1 while the state
        # is unallocated.
        with_cache = self.cache is not None
        active = [
            [
                position,
                plan,
                cap,
                -1,
                None,
                None,
                None,
                None,
                self._key_parts_for(plan, 0) if with_cache else None,
            ]
            for position, (plan, cap) in enumerate(self._node_meta)
        ]
        cache = self.cache
        decide = self.algorithm.decide
        # The synchronised sweep below is the hottest loop of the library, so
        # the cache bookkeeping is inlined (stats are flushed in bulk).
        table = cache._table if cache is not None else None
        relabel = cache.relabel_ids if cache is not None else False
        limit = cache.pattern_limit if cache is not None else None
        hits = misses = 0
        radius = 0
        while active:
            still_active = []
            for entry in active:
                position, plan, cap = entry[0], entry[1], entry[2]
                member_counts = plan.member_counts
                content = radius if radius < len(member_counts) else len(member_counts) - 1
                members = member_counts[content]
                output = MISSING
                key = None
                if table is not None and (limit is None or members <= limit):
                    parts = entry[8]
                    if len(parts) <= radius:
                        self._key_parts_for(plan, radius)
                    struct_id, prefix = parts[radius]
                    pattern = tuple(map(identifiers.__getitem__, prefix))
                    if relabel:
                        pattern = tuple(
                            sorted(range(members), key=pattern.__getitem__)
                        )
                    key = (struct_id, pattern)
                    output = table.get(key, MISSING)
                if output is MISSING:
                    built = entry[3]
                    if built < 0:
                        identifier = identifiers[position]
                        entry[3] = built = 0
                        entry[4] = {identifier: 0}
                        entry[5] = {identifier: degrees[position]}
                        entry[6] = set()
                        entry[7] = {}
                    if built < content:
                        # Apply the pending layer deltas to the live dicts.
                        dist, degd, edges, ports = entry[4], entry[5], entry[6], entry[7]
                        discovery = plan.discovery
                        distances = plan.distances
                        for index in range(member_counts[built], members):
                            member = discovery[index]
                            member_id = identifiers[member]
                            dist[member_id] = distances[index]
                            degd[member_id] = degrees[member]
                        edge_counts = plan.edge_counts
                        for a, b, port_ab, port_ba in plan.edges[
                            edge_counts[built] : edge_counts[content]
                        ]:
                            id_a, id_b = identifiers[a], identifiers[b]
                            edges.add(frozenset((id_a, id_b)))
                            ports[(id_a, id_b)] = port_ab
                            ports[(id_b, id_a)] = port_ba
                        entry[3] = content
                    view = BallView(
                        center_id=identifiers[position],
                        radius=radius,
                        distance_by_id=entry[4],
                        degree_by_id=entry[5],
                        edges=entry[6],
                        port_by_pair=entry[7],
                        full_graph=members == len(plan.discovery),
                    )
                    output = decide(view)
                    if key is not None:
                        misses += 1
                        cache.store(key, output)
                elif key is not None:
                    hits += 1
                if output is not None:
                    records[position] = NodeRecord(
                        position=position,
                        identifier=identifiers[position],
                        radius=radius,
                        output=output,
                    )
                elif radius >= cap:
                    # Keep draining the other nodes so the error below can
                    # name the first failing position, as the legacy
                    # node-by-node runner did.
                    exhausted.append(position)
                else:
                    still_active.append(entry)
            active = still_active
            radius += 1
        if cache is not None:
            cache.stats.hits += hits
            cache.stats.misses += misses
            # Same bulk flush publishes the process-wide metrics (no-op
            # unless REPRO_OBS=on, so the hot loop stays counter-local).
            _metrics.add("engine.decide_hits", hits)
            _metrics.add("engine.decide_misses", misses)
        _metrics.add("engine.runs")
        if exhausted:
            position = min(exhausted)
            raise AlgorithmError(
                f"algorithm {self.algorithm.name!r} refused to output at position "
                f"{position} even at radius {self._cap(position)} "
                f"(graph {graph.name!r}, n={graph.n})"
            )
        return ExecutionTrace(records)

    def resimulate_node(
        self,
        identifiers: "Sequence[int]",
        position: int,
        start_radius: int = 0,
    ) -> tuple[int, Any]:
        """Decide one node from ``start_radius`` upward; return ``(radius, output)``.

        The swap-aware search sessions (:mod:`repro.search.incremental`) call
        this with a raw position->identifier sequence after an identifier
        transposition: decisions below ``start_radius`` are known to be
        unchanged (the swapped positions are outside those balls), so only
        the radii from ``start_radius`` to the node's cap are re-decided —
        and structurally repeated balls still hit the decision cache.
        """
        plan = self._plan(position)
        cap = self._cap(position)
        for radius in range(start_radius, cap + 1):
            output = self._decide(plan, radius, identifiers)
            if output is not None:
                return radius, output
        raise AlgorithmError(
            f"algorithm {self.algorithm.name!r} refused to output at position "
            f"{position} even at radius {cap}"
        )

    def node_radius(self, ids: IdentifierAssignment, position: int) -> int:
        """Radius at which a single node outputs (other nodes are not run)."""
        graph = self.graph
        if ids.n != graph.n:
            raise TopologyError(
                f"identifier assignment covers {ids.n} positions but graph has {graph.n}"
            )
        if not 0 <= position < graph.n:
            raise TopologyError(f"position {position} outside 0..{graph.n - 1}")
        return self.resimulate_node(ids.identifiers(), position)[0]


def frontier_run(
    graph: Graph,
    ids: IdentifierAssignment,
    algorithm: "BallAlgorithm",
    max_radius: Optional[int] = None,
    cache: Optional[DecisionCache] = None,
) -> ExecutionTrace:
    """One-shot convenience wrapper around :class:`FrontierRunner`.

    For repeated runs on the same graph and algorithm, build one
    :class:`FrontierRunner` and call :meth:`FrontierRunner.run` per
    assignment instead — the session amortises the assignment-independent
    precomputation (frontier plans, port maps, structural keys) and keeps
    the decision cache warm.
    """
    return FrontierRunner(
        graph, algorithm, cache=cache, max_radius=max_radius
    ).run(ids)
