"""The persistent parallel runtime: warm workers, shared memory, caches.

:class:`~repro.engine.batch.BatchExecutor` historically built a fresh
``multiprocessing.Pool`` for every ``.map()`` call, so each parallel
dispatch paid pool start-up, re-pickled its full payloads per task, and
every worker rebuilt graphs and compiled instances per shard.  This module
replaces that with one warm runtime per process:

* **Warm long-lived workers** — :class:`WorkerPool` spawns its processes
  once and reuses them across ``.map()`` calls (:func:`get_pool` keeps one
  pool per worker count for the whole process, shut down via context
  manager or ``atexit``).  A worker that dies mid-task is respawned and its
  task resubmitted; results always return in submission order, so parallel
  runs stay bit-identical to serial ones at any worker count.
* **Zero-copy payload transport** — large buffers (streamed CSR arrays,
  batched identifier matrices) are published once into
  ``multiprocessing.shared_memory`` segments keyed by content digest
  (:meth:`WorkerPool.publish`) and referenced by a tiny :class:`ShmRef`
  handle inside task messages instead of being pickled per task.  Segments
  are refcount-pinned while a publisher holds them and evicted LRU
  afterwards; when shared memory is unavailable (``REPRO_SHM=off`` or a
  runtime failure) publishing returns ``None`` and callers fall back to
  plain pickled payloads.
* **Worker-side caches** — :func:`worker_cache` gives task functions a
  bounded per-process LRU of reconstructed objects (CSR topologies, scale
  rules, compiled instances, full-row radii) keyed by the same digests, so
  a million-node sweep compiles once per worker, not once per shard.
  :func:`fetch_memoryview` attaches a published segment zero-copy.

**Scheduling affinity**: ``map(fn, payloads, keys=...)`` pins all tasks
sharing a key to one worker (keys are assigned to workers round-robin in
first-appearance order, deterministically), so shards that reuse the same
cached state — e.g. all centre chunks of one sampled row — land where that
state already lives.  Affinity only changes *placement*, never results.

**Worker-count resolution** (:func:`resolve_workers`): an explicit value
always wins, then the ``REPRO_WORKERS`` environment override, then the
caller's fallback (the CPU count when none is given).

Metrics (``REPRO_OBS=on``): ``pool.dispatches`` / ``pool.tasks`` /
``pool.bytes_shipped`` / ``pool.bytes_shared`` / ``pool.resubmissions`` /
``pool.worker_cache_hits`` / ``pool.worker_cache_misses`` counters, the
``pool.queue_depth`` and ``pool.shm_bytes`` gauges, and a ``pool.map``
span per dispatch.  The same counters are always available programmatically
as :attr:`WorkerPool.stats` (plain integers, no instrumentation needed) —
``benchmarks/test_bench_parallel.py`` gates on them.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import signal
from collections import OrderedDict, deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics
from repro.obs.spans import span as _obs_span

T = TypeVar("T")
R = TypeVar("R")

#: Environment override of every defaulted worker count (see
#: :func:`resolve_workers`).
ENV_WORKERS = "REPRO_WORKERS"

#: Set to ``off`` (or ``0``) to disable shared-memory transport; payloads
#: then travel as plain pickles (the compatibility fallback).
ENV_SHM = "REPRO_SHM"

#: How often one task may be resubmitted after killing its worker before
#: the pool gives up (guards against a task that crashes deterministically).
MAX_TASK_ATTEMPTS = 3

#: Unpinned published segments kept per pool (LRU).  Eviction only unlinks
#: segments no publisher still holds; workers that lost a segment fall back
#: to rebuilding from the task's spec.
MAX_SEGMENTS = 8

#: Entries per worker-side reconstruction cache namespace (LRU).
WORKER_CACHE_LIMIT = 8

_STAT_KEYS = (
    "dispatches",
    "tasks",
    "bytes_shipped",
    "bytes_shared",
    "resubmissions",
    "respawns",
    "worker_cache_hits",
    "worker_cache_misses",
    "segments_published",
    "segments_evicted",
)


def resolve_workers(workers: Optional[int] = None, fallback: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > fallback.

    ``workers`` is an explicit request (a CLI flag, a Query field) and wins
    outright.  With ``workers=None`` the ``REPRO_WORKERS`` environment
    variable decides; when that is unset too, ``fallback`` (or the CPU
    count when no fallback is given).  Anything below 1 is rejected.
    """
    if workers is not None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        return workers
    env = os.environ.get(ENV_WORKERS)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{ENV_WORKERS} must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(
                f"{ENV_WORKERS} must be a positive integer, got {env!r}"
            )
        return value
    if fallback is not None:
        return fallback
    return os.cpu_count() or 1


def shm_transport_enabled() -> bool:
    """Whether shared-memory transport is allowed (``REPRO_SHM`` gate)."""
    return os.environ.get(ENV_SHM, "").strip().lower() not in ("off", "0", "false")


def in_worker() -> bool:
    """True inside a pool worker process (nested fan-out runs serially)."""
    return get_context().current_process().daemon


@dataclass(frozen=True)
class ShmRef:
    """A picklable handle to one published shared-memory segment.

    ``name`` addresses the segment, ``size`` its payload bytes (the segment
    may be rounded up by the OS) and ``digest`` the BLAKE2b content hash
    that keys worker-side caches.
    """

    name: str
    size: int
    digest: str


class WorkerCrashError(RuntimeError):
    """A task killed its worker more than :data:`MAX_TASK_ATTEMPTS` times."""


@dataclass
class _Segment:
    """Parent-side record of one published shared-memory segment."""

    shm: object
    ref: ShmRef
    pins: int


class _Worker:
    """One warm worker process and its duplex message pipe."""

    __slots__ = ("process", "connection", "task")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        #: ``(task_id, message_bytes)`` currently being computed, if any.
        self.task: Optional[tuple[int, bytes]] = None


def _portable_error(exc: BaseException) -> Exception:
    """An exception that survives pickling back to the parent."""
    try:
        pickle.dumps(exc)
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc if isinstance(exc, Exception) else RuntimeError(repr(exc))


# ----------------------------------------------------------------------
# worker side: main loop, caches, shared-memory attachment
# ----------------------------------------------------------------------
_worker_stats = {"cache_hits": 0, "cache_misses": 0}
_worker_caches: OrderedDict = OrderedDict()
_worker_attached: dict[str, object] = {}


def _worker_stats_delta(before: dict) -> dict:
    return {key: _worker_stats[key] - before[key] for key in _worker_stats}


def worker_cache(namespace: str, key, build: Callable[[], T]) -> T:
    """A per-process LRU of reconstructed objects, shared by all consumers.

    ``build()`` runs on a miss; at most :data:`WORKER_CACHE_LIMIT` entries
    per namespace survive.  Hit/miss counts piggyback on task replies and
    surface as ``pool.worker_cache_hits`` / ``..._misses``.  Usable from
    the parent process too (it is just a dict), which keeps serial and
    parallel code paths identical.
    """
    full_key = (namespace, key)
    try:
        value = _worker_caches[full_key]
    except KeyError:
        _worker_stats["cache_misses"] += 1
        value = build()
        per_namespace = [k for k in _worker_caches if k[0] == namespace]
        while len(per_namespace) >= WORKER_CACHE_LIMIT:
            _worker_caches.pop(per_namespace.pop(0))
        _worker_caches[full_key] = value
        return value
    _worker_stats["cache_hits"] += 1
    _worker_caches.move_to_end(full_key)
    return value


def clear_worker_caches() -> None:
    """Drop every worker-side cache entry and segment attachment (tests)."""
    _worker_caches.clear()
    for shm in _worker_attached.values():
        try:
            shm.close()
        except BufferError:  # a live memoryview still exports the buffer
            pass
    _worker_attached.clear()


def fetch_memoryview(ref: ShmRef) -> memoryview:
    """Attach one published segment and return its payload, zero-copy.

    Attachments are cached per process for the worker's lifetime.  Raises
    :class:`LookupError` when the segment is gone (evicted or the publisher
    exited) — callers fall back to rebuilding from their spec.
    """
    shm = _worker_attached.get(ref.name)
    if shm is None:
        try:
            from multiprocessing import shared_memory

            # Attaching re-registers the name with the resource tracker;
            # under the fork start method every worker shares the parent's
            # tracker (the registry is a name-keyed set), so this is
            # idempotent and balanced by the publisher's ``unlink()``.
            shm = shared_memory.SharedMemory(name=ref.name)
        except (FileNotFoundError, OSError, ImportError) as exc:
            raise LookupError(f"shared segment {ref.name} unavailable") from exc
        _worker_attached[ref.name] = shm
    return shm.buf[: ref.size]


def _worker_main(connection) -> None:
    """The worker loop: receive ``(task_id, fn, payload)``, reply in kind."""
    # A worker's random/hash state never matters (tasks are pure and carry
    # their own seeds), so no reseeding is needed here.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            data = connection.recv_bytes()
        except (EOFError, OSError):
            break
        if not data:
            break
        # The task id travels outside the pickle so even a payload this
        # worker cannot unpickle becomes a clean task error, not a death.
        task_id = int.from_bytes(data[:8], "little")
        before = dict(_worker_stats)
        try:
            fn, payload = pickle.loads(data[8:])
            reply = (task_id, True, fn(payload), _worker_stats_delta(before))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            reply = (task_id, False, _portable_error(exc), _worker_stats_delta(before))
        try:
            payload_bytes = pickle.dumps(reply)
        except Exception as exc:  # unpicklable result
            payload_bytes = pickle.dumps(
                (task_id, False, _portable_error(exc), _worker_stats_delta(before))
            )
        try:
            connection.send_bytes(payload_bytes)
        except (BrokenPipeError, OSError):
            break
    connection.close()


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
_segment_names = itertools.count()


class WorkerPool:
    """Warm process pool with crash recovery and shared-memory transport.

    Parameters
    ----------
    workers:
        Worker processes to keep warm (resolved via
        :func:`resolve_workers` when ``None``).
    use_shm:
        Force shared-memory transport on/off; default follows
        ``REPRO_SHM`` and degrades automatically when segment creation
        fails at runtime.
    """

    def __init__(self, workers: Optional[int] = None, use_shm: Optional[bool] = None) -> None:
        self.workers = resolve_workers(workers)
        self._ctx = get_context()
        self._members: list[_Worker] = []
        self._segments: "OrderedDict[str, _Segment]" = OrderedDict()
        self._use_shm = shm_transport_enabled() if use_shm is None else use_shm
        self._closed = False
        self.stats = {key: 0 for key in _STAT_KEYS}

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _spawn(self) -> _Worker:
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_end,), daemon=True
        )
        process.start()
        child_end.close()
        return _Worker(process, parent_end)

    def _ensure_members(self) -> None:
        while len(self._members) < self.workers:
            self._members.append(self._spawn())

    def close(self) -> None:
        """Shut the workers down and unlink every published segment."""
        if self._closed:
            return
        self._closed = True
        farewell = b""
        for member in self._members:
            try:
                member.connection.send_bytes(farewell)
            except (BrokenPipeError, OSError):
                pass
        for member in self._members:
            member.process.join(timeout=2)
            if member.process.is_alive():
                member.process.terminate()
                member.process.join(timeout=2)
            try:
                member.connection.close()
            except OSError:
                pass
        self._members.clear()
        for segment in self._segments.values():
            self._unlink(segment)
        self._segments.clear()

    @staticmethod
    def _unlink(segment: _Segment) -> None:
        try:
            segment.shm.close()
        except BufferError:
            pass
        try:
            segment.shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    # -- shared-memory transport ---------------------------------------
    def publish(self, data) -> Optional[ShmRef]:
        """Publish one buffer into shared memory; return its handle.

        ``data`` is anything exposing the buffer protocol (``bytes``,
        ``array.array``, numpy arrays, ``memoryview``).  Publishing the
        same content twice returns the same pinned segment.  Returns
        ``None`` when shared memory is off or unavailable — callers ship
        the data inline instead.
        """
        if self._closed or not self._use_shm:
            return None
        buffer = memoryview(data).cast("B")
        digest = hashlib.blake2b(buffer, digest_size=16).hexdigest()
        segment = self._segments.get(digest)
        if segment is not None:
            segment.pins += 1
            self._segments.move_to_end(digest)
            return segment.ref
        try:
            from multiprocessing import shared_memory

            name = f"repro-{os.getpid()}-{next(_segment_names)}-{digest[:12]}"
            shm = shared_memory.SharedMemory(create=True, size=max(1, buffer.nbytes), name=name)
        except Exception:
            # No /dev/shm, permissions, exhausted space: degrade for good.
            self._use_shm = False
            return None
        shm.buf[: buffer.nbytes] = buffer
        ref = ShmRef(name=shm.name, size=buffer.nbytes, digest=digest)
        self._segments[digest] = _Segment(shm=shm, ref=ref, pins=1)
        self.stats["segments_published"] += 1
        self._evict_segments()
        self._gauge_segments()
        return ref

    def release(self, ref: Optional[ShmRef]) -> None:
        """Unpin one published segment (it stays until LRU eviction)."""
        if ref is None:
            return
        segment = self._segments.get(ref.digest)
        if segment is not None and segment.pins > 0:
            segment.pins -= 1
        self._evict_segments()

    def _evict_segments(self) -> None:
        unpinned = [key for key, seg in self._segments.items() if seg.pins <= 0]
        while len(self._segments) > MAX_SEGMENTS and unpinned:
            key = unpinned.pop(0)
            self._unlink(self._segments.pop(key))
            self.stats["segments_evicted"] += 1
        self._gauge_segments()

    def _gauge_segments(self) -> None:
        _metrics.set_gauge("pool.segments", len(self._segments))
        _metrics.set_gauge(
            "pool.shm_bytes", sum(seg.ref.size for seg in self._segments.values())
        )

    @staticmethod
    def _shared_bytes(payload) -> int:
        """Bytes a task would have shipped inline but shares by handle."""
        total = 0
        stack = [payload]
        depth = 0
        while stack and depth < 10_000:
            depth += 1
            item = stack.pop()
            if isinstance(item, ShmRef):
                total += item.size
            elif isinstance(item, (tuple, list)):
                stack.extend(item)
            elif isinstance(item, dict):
                stack.extend(item.values())
        return total

    # -- dispatch -------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        payloads: Sequence[T],
        keys: Optional[Sequence] = None,
    ) -> list[R]:
        """Apply ``fn`` to every payload across the warm workers, in order.

        ``keys`` (optional, parallel to ``payloads``) pins tasks that share
        a key to one worker — round-robin by first appearance — so
        worker-side caches are reused instead of rebuilt per worker.
        Results are bit-identical to ``[fn(p) for p in payloads]`` at any
        worker count; a crashed worker's task is resubmitted elsewhere.
        """
        if self._closed:
            raise ConfigurationError("WorkerPool is closed")
        payloads = list(payloads)
        if not payloads:
            return []
        if self.workers == 1 or len(payloads) == 1 or in_worker():
            return [fn(payload) for payload in payloads]
        with _obs_span("pool.map", tasks=len(payloads), workers=self.workers):
            return self._map_parallel(fn, payloads, keys)

    def _map_parallel(self, fn, payloads: list, keys: Optional[Sequence]) -> list:
        self._ensure_members()
        total = len(payloads)
        if keys is not None and len(keys) != total:
            raise ConfigurationError(
                f"keys must match payloads: {len(keys)} != {total}"
            )
        # Deterministic affinity: key -> worker slot by first appearance.
        slot_of_key: dict = {}
        queues: list[deque] = [deque() for _ in range(self.workers)]
        shared: deque = deque()
        messages: list[bytes] = []
        shipped = 0
        shared_bytes = 0
        for task_id, payload in enumerate(payloads):
            message = task_id.to_bytes(8, "little") + pickle.dumps((fn, payload))
            messages.append(message)
            shipped += len(message)
            shared_bytes += self._shared_bytes(payload)
            if keys is not None and keys[task_id] is not None:
                key = keys[task_id]
                slot = slot_of_key.setdefault(key, len(slot_of_key) % self.workers)
                queues[slot].append(task_id)
            else:
                shared.append(task_id)
        results: list = [None] * total
        failures: dict[int, Exception] = {}
        attempts = [0] * total
        done = 0
        cache_hits = 0
        cache_misses = 0
        _metrics.set_gauge("pool.queue_depth", total)

        def _next_task(slot: int) -> Optional[int]:
            if queues[slot]:
                return queues[slot].popleft()
            if shared:
                return shared.popleft()
            # Steal from dead slots only (their tasks were re-queued on
            # respawn; live slots keep their affinity).
            return None

        def _requeue(slot: int, task_id: int) -> None:
            attempts[task_id] += 1
            self.stats["resubmissions"] += 1
            _metrics.add("pool.resubmissions")
            if attempts[task_id] >= MAX_TASK_ATTEMPTS:
                failures[task_id] = WorkerCrashError(
                    f"task {task_id} crashed its worker "
                    f"{attempts[task_id]} times"
                )
                return
            # Give the task to the shared queue: any live worker may pick
            # it up (its bound worker just died).
            shared.appendleft(task_id)

        def _revive(slot: int) -> None:
            member = self._members[slot]
            if member.task is not None:
                task_id, _ = member.task
                member.task = None
                _requeue(slot, task_id)
            try:
                member.connection.close()
            except OSError:
                pass
            if member.process.is_alive():
                member.process.terminate()
            member.process.join(timeout=2)
            self._members[slot] = self._spawn()
            self.stats["respawns"] += 1

        while done < total:
            progressed = False
            for slot, member in enumerate(self._members):
                if member.task is not None:
                    continue
                task_id = _next_task(slot)
                if task_id is None:
                    continue
                if task_id in failures:
                    done += 1
                    progressed = True
                    continue
                try:
                    member.connection.send_bytes(messages[task_id])
                    member.task = (task_id, messages[task_id])
                    progressed = True
                except (BrokenPipeError, OSError):
                    # Send found the worker dead: requeue and respawn.
                    _requeue(slot, task_id)
                    member.task = None
                    _revive(slot)
                    progressed = True
            busy = [member for member in self._members if member.task is not None]
            if not busy:
                if progressed:
                    continue
                # Nothing in flight and nothing dispatchable: every
                # remaining task already failed terminally.
                break
            ready = _connection_wait([member.connection for member in busy], timeout=5.0)
            if not ready:
                # Nobody answered: check for silently dead workers.
                for slot, member in enumerate(self._members):
                    if member.task is not None and not member.process.is_alive():
                        _revive(slot)
                continue
            ready_set = set(ready)
            for slot, member in enumerate(self._members):
                if member.task is None or member.connection not in ready_set:
                    continue
                try:
                    data = member.connection.recv_bytes()
                except (EOFError, OSError):
                    _revive(slot)
                    continue
                task_id, ok, value, worker_stats = pickle.loads(data)
                member.task = None
                cache_hits += worker_stats.get("cache_hits", 0)
                cache_misses += worker_stats.get("cache_misses", 0)
                if ok:
                    results[task_id] = value
                else:
                    failures[task_id] = value
                done += 1
        self.stats["dispatches"] += 1
        self.stats["tasks"] += total
        self.stats["bytes_shipped"] += shipped
        self.stats["bytes_shared"] += shared_bytes
        self.stats["worker_cache_hits"] += cache_hits
        self.stats["worker_cache_misses"] += cache_misses
        _metrics.add("pool.dispatches")
        _metrics.add("pool.tasks", total)
        _metrics.add("pool.bytes_shipped", shipped)
        _metrics.add("pool.bytes_shared", shared_bytes)
        _metrics.add("pool.worker_cache_hits", cache_hits)
        _metrics.add("pool.worker_cache_misses", cache_misses)
        _metrics.set_gauge("pool.queue_depth", 0)
        if failures:
            raise failures[min(failures)]
        return results


# ----------------------------------------------------------------------
# the process-wide registry BatchExecutor dispatches through
# ----------------------------------------------------------------------
_pools: dict[int, WorkerPool] = {}
_pools_pid: Optional[int] = None


def get_pool(workers: int) -> WorkerPool:
    """The process-wide warm pool for ``workers`` (created on first use).

    Pools are keyed by worker count, survive across ``.map()`` calls and
    shut down at interpreter exit; a forked child never inherits its
    parent's registry entries (they are re-keyed per PID).
    """
    global _pools_pid
    workers = resolve_workers(workers)
    if _pools_pid != os.getpid():
        # Forked child (or first use): the parent's pools are not ours.
        _pools.clear()
        _pools_pid = os.getpid()
        atexit.register(shutdown_pools)
    pool = _pools.get(workers)
    if pool is None or pool.closed:
        pool = WorkerPool(workers)
        _pools[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Close every registered pool (idempotent; runs at interpreter exit)."""
    for pool in list(_pools.values()):
        pool.close()
    _pools.clear()
