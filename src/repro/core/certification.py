"""Output certifiers.

Every experiment that reports radii also verifies that the outputs form a
*correct* global solution — a fast algorithm that colours improperly or
elects two leaders would make the complexity comparison meaningless.  Each
certifier raises :class:`~repro.errors.CertificationError` with a precise
description of the first violation it finds, and returns ``True`` otherwise
so it can be used directly in assertions.

A small registry maps problem keys (the ``problem`` attribute of
:class:`~repro.core.algorithm.BallAlgorithm`) to certifiers, so harness code
can certify any trace generically with :func:`certify`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import CertificationError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace

#: Signature of a certifier: (graph, ids, outputs by position) -> True or raise.
Certifier = Callable[[Graph, IdentifierAssignment, Mapping[int, Any]], bool]

_REGISTRY: dict[str, Certifier] = {}


def register_certifier(problem: str, certifier: Certifier) -> None:
    """Register (or replace) the certifier for a problem key."""
    _REGISTRY[problem] = certifier


def certify(
    problem: str,
    graph: Graph,
    ids: IdentifierAssignment,
    trace_or_outputs: ExecutionTrace | Mapping[int, Any],
) -> bool:
    """Certify a trace (or raw outputs) against the registered certifier."""
    if problem not in _REGISTRY:
        raise CertificationError(
            f"no certifier registered for problem {problem!r}; "
            f"known problems: {sorted(_REGISTRY)}"
        )
    if isinstance(trace_or_outputs, ExecutionTrace):
        outputs = trace_or_outputs.outputs_by_position()
    else:
        outputs = dict(trace_or_outputs)
    return _REGISTRY[problem](graph, ids, outputs)


# ----------------------------------------------------------------------
# concrete certifiers
# ----------------------------------------------------------------------
def certify_largest_id(
    graph: Graph, ids: IdentifierAssignment, outputs: Mapping[int, Any]
) -> bool:
    """Exactly the node with the globally largest identifier answers ``True``."""
    _check_positions(graph, outputs)
    winner = ids.argmax_position()
    for position, output in outputs.items():
        if not isinstance(output, bool):
            raise CertificationError(
                f"largest-id outputs must be booleans, position {position} output {output!r}"
            )
        expected = position == winner
        if output != expected:
            raise CertificationError(
                f"position {position} (id {ids[position]}) answered {output} "
                f"but the largest identifier is {ids.max_identifier()} at position {winner}"
            )
    return True


def certify_leader_election(
    graph: Graph, ids: IdentifierAssignment, outputs: Mapping[int, Any]
) -> bool:
    """Exactly one node outputs ``True`` (no constraint on which one)."""
    _check_positions(graph, outputs)
    leaders = [position for position, output in outputs.items() if output is True]
    if len(leaders) != 1:
        raise CertificationError(
            f"leader election requires exactly one leader, found {len(leaders)} "
            f"at positions {leaders[:10]}"
        )
    return True


def certify_proper_coloring(
    graph: Graph,
    ids: IdentifierAssignment,
    outputs: Mapping[int, Any],
    num_colors: int | None = None,
) -> bool:
    """Adjacent nodes get different colours; optionally bound the palette size."""
    _check_positions(graph, outputs)
    for position, colour in outputs.items():
        if not isinstance(colour, int) or isinstance(colour, bool):
            raise CertificationError(
                f"colours must be integers, position {position} output {colour!r}"
            )
    for u, v in graph.edges():
        if outputs[u] == outputs[v]:
            raise CertificationError(
                f"edge ({u}, {v}) is monochromatic with colour {outputs[u]}"
            )
    if num_colors is not None:
        used = set(outputs.values())
        if len(used) > num_colors or any(not 0 <= c < num_colors for c in used):
            raise CertificationError(
                f"colouring uses palette {sorted(used)} which does not fit in "
                f"{num_colors} colours 0..{num_colors - 1}"
            )
    return True


def certify_3_coloring(
    graph: Graph, ids: IdentifierAssignment, outputs: Mapping[int, Any]
) -> bool:
    """Proper colouring with at most 3 colours from ``{0, 1, 2}``."""
    return certify_proper_coloring(graph, ids, outputs, num_colors=3)


def certify_maximal_independent_set(
    graph: Graph, ids: IdentifierAssignment, outputs: Mapping[int, Any]
) -> bool:
    """Outputs are booleans forming an independent and maximal set."""
    _check_positions(graph, outputs)
    members = {position for position, output in outputs.items() if output is True}
    non_members = set(graph.positions()) - members
    for u, v in graph.edges():
        if u in members and v in members:
            raise CertificationError(f"MIS violated: adjacent positions {u} and {v} both selected")
    for position in non_members:
        if not any(neighbour in members for neighbour in graph.neighbors(position)):
            raise CertificationError(
                f"MIS not maximal: position {position} has no selected neighbour"
            )
    return True


def _check_positions(graph: Graph, outputs: Mapping[int, Any]) -> None:
    if set(outputs) != set(graph.positions()):
        missing = sorted(set(graph.positions()) - set(outputs))[:10]
        extra = sorted(set(outputs) - set(graph.positions()))[:10]
        raise CertificationError(
            f"outputs must cover positions 0..{graph.n - 1} exactly "
            f"(missing {missing}, unexpected {extra})"
        )


# Problem keys used by the built-in algorithms.
register_certifier("largest-id", certify_largest_id)
register_certifier("leader-election", certify_leader_election)
register_certifier("3-coloring", certify_3_coloring)
register_certifier("coloring", certify_proper_coloring)
register_certifier("mis", certify_maximal_independent_set)
