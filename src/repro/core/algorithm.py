"""The ball-based algorithm interface.

A deterministic LOCAL algorithm, in the paper's preferred formulation, is a
function from *views* to either an output or "grow the ball further".  The
runner presents a node with its radius-0 ball, then its radius-1 ball, and
so on; the radius at which the algorithm first returns an output is the
node's radius ``r(v)``, the quantity all complexity measures are built from.

Determinism is essential (the paper's computation "is always deterministic"),
and it is also what makes the minimality machinery of :mod:`repro.theory`
sound: an algorithm must return the same answer whenever it is shown
indistinguishable views.  The runner spot-checks this by construction since
views are pure values.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

from repro.model.ball import BallView


class BallAlgorithm(abc.ABC):
    """A deterministic LOCAL algorithm expressed as a function of ball views.

    Subclasses must implement :meth:`decide`.  Returning ``None`` means "I do
    not have enough information yet; show me the ball of the next radius";
    returning any other value commits the node to that output.
    """

    #: Human-readable name, used in experiment tables and error messages.
    name: str = "ball-algorithm"

    #: Key of the problem the algorithm solves (e.g. ``"largest-id"``,
    #: ``"3-coloring"``); used to look up the matching certifier.
    problem: str = "unspecified"

    #: Whether :meth:`decide` depends only on the *relative order* of the
    #: identifiers in the ball (never on their numeric values) and returns
    #: outputs that contain no identifiers.  Order-invariant algorithms
    #: behave identically on balls related by an order-preserving renaming
    #: of identifiers, which lets the engine's decision cache memoise on the
    #: id-relabeled ball signature — a dramatically smaller key space.  The
    #: safe default is ``False``, under which caching uses the exact
    #: signature (actual identifiers included), sound for every
    #: deterministic algorithm.
    order_invariant: bool = False

    #: Whether :meth:`decide` may read the port numbers of the view
    #: (``port_by_pair``, :meth:`~repro.model.ball.BallView.port`,
    #: :meth:`~repro.model.ball.BallView.neighbor_by_port`).  The safe
    #: default is ``True``.  Algorithms that declare ``uses_ports = False``
    #: behave identically on views related by a port-forgetting isomorphism,
    #: which lets the exact adversary searches
    #: (:mod:`repro.search.automorphisms`) prune with the full adjacency
    #: automorphism group instead of the smaller port-preserving one.
    uses_ports: bool = True

    @abc.abstractmethod
    def decide(self, ball: BallView) -> Optional[Any]:
        """Output for the centre of ``ball``, or ``None`` to keep growing."""

    def supports_graph(self, graph: Any) -> bool:
        """Whether the algorithm's structural assumptions hold on ``graph``.

        The default accepts everything; ring-only algorithms override this
        so the runner can fail fast with a clear error instead of producing
        meaningless radii.
        """
        return True

    def compile_kernel_rule(self, instance: Any) -> Optional[Any]:
        """A vectorised batch rule for ``instance``, or ``None``.

        ``instance`` is the :class:`~repro.kernel.compile.CompiledInstance`
        being built for this algorithm on one fixed graph.  Algorithms whose
        stopping radius has an array-friendly closed form (largest-ID's
        distance-to-nearest-larger-identifier, for example) return a
        :class:`~repro.kernel.rules.KernelRule` here and get whole-matrix
        batch evaluation; the default ``None`` selects the decide-backed
        fallback, which is sound for every deterministic algorithm.  Any
        returned rule must be bit-identical to the single-assignment
        reference path — the kernel property suite enforces this.
        """
        return None

    def compile_scale_rule(self, csr: Any) -> Optional[Any]:
        """A plan-free large-n rule for a streamed CSR topology, or ``None``.

        ``csr`` is a :class:`~repro.topology.stream.CSRTopology`.  Algorithms
        whose stopping radius can be evaluated directly against flat CSR
        adjacency — without per-centre frontier plans — return a
        :class:`~repro.kernel.shard.ScaleRule` here and become usable in the
        ``scale`` query mode at millions of nodes (largest-ID's early-stop
        BFS, :class:`~repro.kernel.shard.MaxScanScaleRule`, is the
        reference).  The default ``None`` keeps the algorithm out of the
        scale path; :data:`~repro.kernel.shard.SCALE_ALGORITHMS` must list
        exactly the registry names that override this.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, problem={self.problem!r})"


class FunctionBallAlgorithm(BallAlgorithm):
    """Adapter turning a plain function ``BallView -> output | None`` into an
    algorithm object.

    Handy in tests and in the minimality machinery, where modified copies of
    an existing algorithm ("behave like A except on these views") are built
    programmatically.
    """

    def __init__(
        self,
        decide: Callable[[BallView], Optional[Any]],
        name: str = "function-algorithm",
        problem: str = "unspecified",
        order_invariant: bool = False,
        uses_ports: bool = True,
    ) -> None:
        self._decide = decide
        self.name = name
        self.problem = problem
        self.order_invariant = order_invariant
        self.uses_ports = uses_ports

    def decide(self, ball: BallView) -> Optional[Any]:
        return self._decide(ball)
