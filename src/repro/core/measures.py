"""The running-time measures compared by the paper.

For a deterministic algorithm ``A`` on a fixed graph ``G`` with identifier
assignment ``ids``, each node ``v`` outputs at some radius ``r(v)``.  The
paper contrasts two ways of turning the collection ``{r(v)}`` into a single
number, both taken in the worst case over identifier assignments:

* the **classic** (worst-case) measure  ``max_ids max_v r(v)``, and
* the **average** measure               ``max_ids (1/n) * sum_v r(v)``.

This module evaluates both on explicit assignments and, via the adversaries
of :mod:`repro.core.adversary`, approximates (or, for small instances,
computes exactly) the outer maximum over assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.adversary import Adversary, AdversaryResult, trace_objective
from repro.core.algorithm import BallAlgorithm
from repro.core.runner import run_ball_algorithm
from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.errors import AnalysisError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace


@dataclass(frozen=True)
class ComplexityReport:
    """Both measures of a single execution, plus context for tables."""

    graph_name: str
    algorithm_name: str
    n: int
    max_radius: int
    average_radius: float
    sum_radius: int

    @classmethod
    def from_trace(
        cls, trace: ExecutionTrace, graph: Graph, algorithm: BallAlgorithm
    ) -> "ComplexityReport":
        """Summarise one execution trace."""
        return cls(
            graph_name=graph.name,
            algorithm_name=algorithm.name,
            n=trace.n,
            max_radius=trace.max_radius,
            average_radius=trace.average_radius,
            sum_radius=trace.sum_radius,
        )


def evaluate_assignment(
    graph: Graph, ids: IdentifierAssignment, algorithm: BallAlgorithm
) -> ComplexityReport:
    """Run the algorithm once and report both measures.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.model.identifiers import identity_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> report = evaluate_assignment(
    ...     cycle_graph(6), identity_assignment(6), LargestIdAlgorithm()
    ... )
    >>> report.n, report.max_radius
    (6, 3)
    >>> report.sum_radius == round(report.average_radius * report.n)
    True
    """
    trace = run_ball_algorithm(graph, ids, algorithm)
    return ComplexityReport.from_trace(trace, graph, algorithm)


def classic_complexity(traces: Iterable[ExecutionTrace]) -> int:
    """Classic measure over a set of runs: the largest ``max_radius`` seen.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.core.runner import run_on_assignments
    >>> from repro.model.identifiers import identity_assignment, reversed_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> traces = run_on_assignments(
    ...     cycle_graph(5),
    ...     [identity_assignment(5), reversed_assignment(5)],
    ...     LargestIdAlgorithm(),
    ... )
    >>> classic_complexity(traces)
    2
    >>> classic_complexity([])
    Traceback (most recent call last):
        ...
    repro.errors.AnalysisError: classic_complexity needs at least one trace
    """
    values = [trace.max_radius for trace in traces]
    if not values:
        raise AnalysisError("classic_complexity needs at least one trace")
    return max(values)


def average_complexity(traces: Iterable[ExecutionTrace]) -> float:
    """Average measure over a set of runs: the largest ``average_radius`` seen.

    The maximum (not the mean) over runs is intentional: the paper's measure
    is a *worst case* over identifier assignments of the per-run average.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.core.runner import run_on_assignments
    >>> from repro.model.identifiers import identity_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> traces = run_on_assignments(
    ...     cycle_graph(4), [identity_assignment(4)], LargestIdAlgorithm()
    ... )
    >>> average_complexity(traces)
    1.25
    """
    values = [trace.average_radius for trace in traces]
    if not values:
        raise AnalysisError("average_complexity needs at least one trace")
    return max(values)


def worst_case_over_assignments(
    graph: Graph,
    algorithm: BallAlgorithm,
    adversary: Adversary,
    objective: str = "average",
) -> AdversaryResult:
    """Approximate ``max`` over identifier assignments of the chosen measure.

    The adversary searches the space of assignments; exhaustive adversaries
    make the result exact, sampling/local-search adversaries give a lower
    bound on the true worst case (any assignment they find is a witness).
    """
    return adversary.maximise(graph, algorithm, objective=objective)


def exact_worst_case(
    graph: Graph,
    algorithm: BallAlgorithm,
    objective: str = "average",
    max_nodes: int | None = None,
) -> AdversaryResult:
    """Certified-exact ``max`` over identifier assignments of the chosen measure.

    Runs the symmetry-pruned branch-and-bound search of
    :mod:`repro.search`: the result carries ``exact=True``, a witness
    assignment, and a :class:`~repro.search.branch_bound.SearchCertificate`
    describing the enumeration.  Feasibility reaches well past the legacy
    ``n <= 9`` exhaustive limit on symmetric topologies.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> result = exact_worst_case(cycle_graph(6), LargestIdAlgorithm(), "sum")
    >>> result.exact, result.value
    (True, 10.0)
    >>> result.certificate.group_order
    12
    """
    from repro.search.adversaries import BranchAndBoundAdversary

    if max_nodes is None:
        adversary = BranchAndBoundAdversary()
    else:
        adversary = BranchAndBoundAdversary(max_nodes=max_nodes)
    return adversary.maximise(graph, algorithm, objective=objective)


def expected_measures_over_random_ids(
    graph: Graph,
    algorithm: BallAlgorithm,
    assignments: Sequence[IdentifierAssignment],
) -> tuple[float, float]:
    """Monte-Carlo estimate of the *expected* measures under random identifiers.

    Returns ``(expected_average_radius, expected_max_radius)`` averaged over
    the supplied assignments.  This is the quantity the paper's conclusion
    proposes to study ("the expectancy of the running time ... where the
    permutation of the identifiers is taken uniformly at random").
    """
    if not assignments:
        raise AnalysisError("expected_measures_over_random_ids needs at least one assignment")
    # One engine session for the whole Monte-Carlo batch: the decision cache
    # is shared across samples, so balls repeated between permutations are
    # simulated once.
    runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
    traces = [runner.run(ids) for ids in assignments]
    expected_average = sum(trace.average_radius for trace in traces) / len(traces)
    expected_max = sum(trace.max_radius for trace in traces) / len(traces)
    return expected_average, expected_max


def measure_objective(trace: ExecutionTrace, objective: str) -> float:
    """Extract one scalar objective from a trace.

    Thin alias of :func:`repro.core.adversary.trace_objective`, re-exported
    here because callers that only compute measures should not need to know
    about the adversary module.
    """
    return trace_objective(trace, objective)
