"""The running-time measures compared by the paper — a unified facade.

For a deterministic algorithm ``A`` on a fixed graph ``G`` with identifier
assignment ``ids``, each node ``v`` outputs at some radius ``r(v)``.  The
paper contrasts two ways of turning the collection ``{r(v)}`` into a single
number, both taken in the worst case over identifier assignments:

* the **classic** (worst-case) measure  ``max_ids max_v r(v)``, and
* the **average** measure               ``max_ids (1/n) * sum_v r(v)``.

This module is the *facade* of the measure layer.  A :class:`Measure`
bundles everything one scalar measure knows how to do — collapse a trace,
aggregate worst cases over runs, extract its marginal from a
:class:`~repro.dist.distribution.RoundDistribution` — and the registry
:data:`MEASURES` holds the paper's measures plus the radius sum.  The
heavy lifting lives elsewhere and is delegated to:

* :mod:`repro.core.adversary` / :mod:`repro.search` for the outer
  worst-case-over-assignments maximisation (exact, with certificates);
* :mod:`repro.dist.exact` for the exact distribution of both measures over
  all ``n!`` assignments (orbit-weighted canonical enumeration);
* :mod:`repro.dist.sampling` for seeded Monte-Carlo estimates with
  standard errors.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.core.adversary import Adversary, AdversaryResult, trace_objective
from repro.core.algorithm import BallAlgorithm
from repro.core.runner import run_ball_algorithm
from repro.errors import AnalysisError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # imported lazily at runtime to keep the layers acyclic
    from repro.dist.distribution import DiscreteDistribution
    from repro.dist.exact import ExactDistributionResult
    from repro.dist.sampling import ExpectedMeasures, SampledDistributionResult


@dataclass(frozen=True)
class Measure:
    """One scalar running-time measure, with every way the library uses it.

    ``objective`` is the key understood by the adversaries and the trace
    layer (``max``, ``average`` or ``sum``); ``name`` is the paper-facing
    name.  The class replaces the former bag of per-measure helper
    functions: collapsing one trace, taking the worst case over a set of
    runs, and slicing a distribution are all methods of the same object.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.core.runner import run_ball_algorithm
    >>> from repro.model.identifiers import identity_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> trace = run_ball_algorithm(
    ...     cycle_graph(4), identity_assignment(4), LargestIdAlgorithm()
    ... )
    >>> CLASSIC_MEASURE.of_trace(trace)
    2.0
    >>> AVERAGE_MEASURE.worst_over_traces([trace])
    1.25
    """

    name: str
    objective: str
    description: str

    def of_trace(self, trace: ExecutionTrace) -> float:
        """Collapse one run's radius profile into this measure's scalar."""
        return trace_objective(trace, self.objective)

    def worst_over_traces(self, traces: Iterable[ExecutionTrace]) -> float:
        """Worst case of this measure over a set of runs.

        The maximum (not the mean) is intentional: the paper's measures are
        worst cases over identifier assignments of per-run scalars.
        """
        values = [self.of_trace(trace) for trace in traces]
        if not values:
            raise AnalysisError(
                f"worst_over_traces of measure {self.name!r} needs at least one trace"
            )
        return max(values)

    def marginal(self, distribution) -> "DiscreteDistribution":
        """This measure's marginal of a :class:`RoundDistribution`."""
        if self.objective == "max":
            return distribution.max_distribution()
        if self.objective == "sum":
            return distribution.sum_distribution()
        return distribution.average_distribution()


#: The paper's two headline measures plus the radius sum they share.
CLASSIC_MEASURE = Measure(
    name="classic",
    objective="max",
    description="worst radius over the nodes (the classic LOCAL running time)",
)
AVERAGE_MEASURE = Measure(
    name="average",
    objective="average",
    description="mean radius over the nodes (the paper's average measure)",
)
SUM_MEASURE = Measure(
    name="sum",
    objective="sum",
    description="total radius over the nodes (the recurrence's quantity)",
)

#: Registry by name *and* by adversary objective key.
MEASURES: dict[str, Measure] = {
    measure.name: measure
    for measure in (CLASSIC_MEASURE, AVERAGE_MEASURE, SUM_MEASURE)
}


def get_measure(name: str) -> Measure:
    """Resolve a measure by name (``classic``/``average``/``sum``) or objective key.

    >>> get_measure("classic").objective
    'max'
    >>> get_measure("max") is CLASSIC_MEASURE
    True
    >>> get_measure("median")
    Traceback (most recent call last):
        ...
    repro.errors.AnalysisError: unknown measure 'median'; known: average, classic, max, sum
    """
    if name in MEASURES:
        return MEASURES[name]
    for measure in MEASURES.values():
        if measure.objective == name:
            return measure
    known = sorted(set(MEASURES) | {m.objective for m in MEASURES.values()})
    raise AnalysisError(f"unknown measure {name!r}; known: {', '.join(known)}")


@dataclass(frozen=True)
class ComplexityReport:
    """Both measures of a single execution, plus context for tables."""

    graph_name: str
    algorithm_name: str
    n: int
    max_radius: int
    average_radius: float
    sum_radius: int

    @classmethod
    def from_trace(
        cls, trace: ExecutionTrace, graph: Graph, algorithm: BallAlgorithm
    ) -> "ComplexityReport":
        """Summarise one execution trace."""
        return cls(
            graph_name=graph.name,
            algorithm_name=algorithm.name,
            n=trace.n,
            max_radius=trace.max_radius,
            average_radius=trace.average_radius,
            sum_radius=trace.sum_radius,
        )

    def as_dict(self) -> dict:
        """Plain-dict form with the document tag (the JSON schema's payload)."""
        return {"kind": "complexity-report", "version": 1, **asdict(self)}

    def to_json(self) -> str:
        """Serialise as a machine-readable JSON document.

        The schema is documented in ``docs/distributions.md``;
        :meth:`from_json` round-trips it.

        >>> report = ComplexityReport("cycle-4", "largest-id", 4, 2, 1.25, 5)
        >>> ComplexityReport.from_json(report.to_json()) == report
        True
        """
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ComplexityReport":
        """Parse a report previously produced by :meth:`to_json`."""
        document = json.loads(text)
        if document.get("kind") != "complexity-report":
            raise AnalysisError(
                f"not a complexity-report document: kind={document.get('kind')!r}"
            )
        fields = {key: document[key] for key in (
            "graph_name", "algorithm_name", "n", "max_radius", "average_radius", "sum_radius"
        )}
        return cls(**fields)


def evaluate_assignment(
    graph: Graph, ids: IdentifierAssignment, algorithm: BallAlgorithm
) -> ComplexityReport:
    """Deprecated: use :meth:`repro.api.session.Session.report` instead.

    Thin delegating shim (it now runs through the default API session, so
    repeated calls share that session's engine caches); the historical
    :class:`ComplexityReport` shape is unchanged.

    >>> import warnings
    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.model.identifiers import identity_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     report = evaluate_assignment(
    ...         cycle_graph(6), identity_assignment(6), LargestIdAlgorithm()
    ...     )
    >>> report.n, report.max_radius
    (6, 3)
    >>> report.sum_radius == round(report.average_radius * report.n)
    True
    """
    import warnings

    warnings.warn(
        "evaluate_assignment is deprecated; use repro.Session().report(...) "
        "or the declarative repro.query(mode='simulate', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.session import default_session

    return default_session().report(graph, ids, algorithm)


def classic_complexity(traces: Iterable[ExecutionTrace]) -> int:
    """Classic measure over a set of runs: the largest ``max_radius`` seen.

    Facade over :meth:`Measure.worst_over_traces` of :data:`CLASSIC_MEASURE`.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.core.runner import run_on_assignments
    >>> from repro.model.identifiers import identity_assignment, reversed_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> traces = run_on_assignments(
    ...     cycle_graph(5),
    ...     [identity_assignment(5), reversed_assignment(5)],
    ...     LargestIdAlgorithm(),
    ... )
    >>> classic_complexity(traces)
    2
    >>> classic_complexity([])
    Traceback (most recent call last):
        ...
    repro.errors.AnalysisError: worst_over_traces of measure 'classic' needs at least one trace
    """
    return int(CLASSIC_MEASURE.worst_over_traces(traces))


def average_complexity(traces: Iterable[ExecutionTrace]) -> float:
    """Average measure over a set of runs: the largest ``average_radius`` seen.

    Facade over :meth:`Measure.worst_over_traces` of :data:`AVERAGE_MEASURE`;
    the maximum (not the mean) over runs is intentional — the paper's measure
    is a *worst case* over identifier assignments of the per-run average.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.core.runner import run_on_assignments
    >>> from repro.model.identifiers import identity_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> traces = run_on_assignments(
    ...     cycle_graph(4), [identity_assignment(4)], LargestIdAlgorithm()
    ... )
    >>> average_complexity(traces)
    1.25
    """
    return AVERAGE_MEASURE.worst_over_traces(traces)


def worst_case_over_assignments(
    graph: Graph,
    algorithm: BallAlgorithm,
    adversary: Adversary,
    objective: str = "average",
) -> AdversaryResult:
    """Deprecated: use :meth:`repro.api.session.Session.worst_case` instead.

    Thin delegating shim over ``adversary.maximise`` (the historical
    :class:`AdversaryResult` shape is unchanged).  The unified API runs the
    same search declaratively — ``repro.query(mode="worst-case",
    adversaries="branch-and-bound", ...)`` — and wraps the answer in a
    versioned :class:`~repro.api.results.Result`.
    """
    import warnings

    warnings.warn(
        "worst_case_over_assignments is deprecated; call adversary.maximise "
        "directly or use repro.Session().worst_case(...) / "
        "repro.query(mode='worst-case', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return adversary.maximise(graph, algorithm, objective=objective)


def exact_worst_case(
    graph: Graph,
    algorithm: BallAlgorithm,
    objective: str = "average",
    max_nodes: int | None = None,
) -> AdversaryResult:
    """Certified-exact ``max`` over identifier assignments of the chosen measure.

    Runs the symmetry-pruned branch-and-bound search of
    :mod:`repro.search`: the result carries ``exact=True``, a witness
    assignment, and a :class:`~repro.search.branch_bound.SearchCertificate`
    describing the enumeration.  Feasibility reaches well past the legacy
    ``n <= 9`` exhaustive limit on symmetric topologies.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> result = exact_worst_case(cycle_graph(6), LargestIdAlgorithm(), "sum")
    >>> result.exact, result.value
    (True, 10.0)
    >>> result.certificate.group_order
    12
    """
    from repro.search.adversaries import BranchAndBoundAdversary

    if max_nodes is None:
        adversary = BranchAndBoundAdversary()
    else:
        adversary = BranchAndBoundAdversary(max_nodes=max_nodes)
    return adversary.maximise(graph, algorithm, objective=objective)


def exact_measure_distribution(
    graph: Graph, algorithm: BallAlgorithm, **kwargs
) -> "ExactDistributionResult":
    """Facade over :func:`repro.dist.exact.exact_round_distribution`.

    The exact joint distribution of both measures over all ``n!``
    identifier assignments, computed from ``n!/|Aut|`` simulations, with a
    :class:`~repro.dist.exact.DistributionCertificate`.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> result = exact_measure_distribution(cycle_graph(5), LargestIdAlgorithm())
    >>> result.distribution.total_weight
    120
    """
    from repro.dist.exact import exact_round_distribution

    return exact_round_distribution(graph, algorithm, **kwargs)


def sampled_measure_distribution(
    graph: Graph, algorithm: BallAlgorithm, **kwargs
) -> "SampledDistributionResult":
    """Facade over :func:`repro.dist.sampling.sample_round_distribution`.

    A seeded Monte-Carlo estimate of the measure distribution, with
    streaming moments, quantile sketches and standard errors.
    """
    from repro.dist.sampling import sample_round_distribution

    return sample_round_distribution(graph, algorithm, **kwargs)


def expected_measures_over_random_ids(
    graph: Graph,
    algorithm: BallAlgorithm,
    assignments: Optional[Sequence[IdentifierAssignment]] = None,
    samples: int = 64,
    seed: SeedLike = None,
) -> "ExpectedMeasures":
    """Monte-Carlo estimate of the *expected* measures under random identifiers.

    This is the quantity the paper's conclusion proposes to study ("the
    expectancy of the running time ... where the permutation of the
    identifiers is taken uniformly at random").  The estimate is computed by
    the streaming estimators of :mod:`repro.dist.sampling`: either over the
    explicitly supplied ``assignments`` (the legacy contract) or, when
    ``assignments`` is omitted, over ``samples`` permutations drawn under
    the explicit ``seed`` — the reproducibility contract the original
    helper lacked.

    The returned :class:`~repro.dist.sampling.ExpectedMeasures` still
    unpacks like the historical ``(expected_average, expected_max)``
    2-tuple (the deprecation shim), but additionally carries the full
    per-measure estimates — standard errors included — on ``.average`` and
    ``.maximum``.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> expected_avg, expected_max = expected_measures_over_random_ids(
    ...     cycle_graph(8), LargestIdAlgorithm(), samples=16, seed=1
    ... )
    >>> expected_max  # the maximum's node always sees half the cycle
    4.0
    >>> result = expected_measures_over_random_ids(
    ...     cycle_graph(8), LargestIdAlgorithm(), samples=16, seed=1
    ... )
    >>> result.average.std_error > 0
    True
    """
    from repro.dist.sampling import estimate_expected_measures

    return estimate_expected_measures(
        graph, algorithm, assignments=assignments, samples=samples, seed=seed
    )


def measure_objective(trace: ExecutionTrace, objective: str) -> float:
    """Extract one scalar objective from a trace.

    Thin alias of :func:`repro.core.adversary.trace_objective`, re-exported
    here because callers that only compute measures should not need to know
    about the adversary module.
    """
    return trace_objective(trace, objective)
