"""Deterministic execution of ball-based algorithms.

For every node, the runner grows the radius from 0 upwards, handing the
algorithm the corresponding :class:`~repro.model.ball.BallView` until the
algorithm commits to an output.  The resulting per-node radii and outputs
form an :class:`~repro.model.trace.ExecutionTrace`, the raw input of the
complexity measures.

A correct LOCAL algorithm must output once its ball covers the whole graph
(there is nothing more to learn); the runner allows one extra radius beyond
that point and then raises :class:`~repro.errors.AlgorithmError`, so that a
buggy algorithm cannot silently spin forever.

Since the engine subsystem landed, the public functions here are thin
compatibility wrappers over :class:`repro.engine.frontier.FrontierRunner`,
which grows balls incrementally instead of re-extracting them from scratch.
The original from-scratch loop is preserved as
:func:`reference_run_ball_algorithm`; the property suite asserts the two
paths produce identical traces, and the benchmarks measure the gap.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.algorithm import BallAlgorithm
from repro.engine.batch import run_simulation_batch
from repro.engine.frontier import FrontierRunner
from repro.errors import AlgorithmError, TopologyError
from repro.model.ball import extract_ball
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace, NodeRecord


def _validate_instance(
    graph: Graph, ids: IdentifierAssignment, algorithm: BallAlgorithm
) -> None:
    """The legacy pre-flight checks, in their original order."""
    if ids.n != graph.n:
        raise TopologyError(
            f"identifier assignment covers {ids.n} positions but graph has {graph.n}"
        )
    if not graph.is_connected():
        raise TopologyError("the LOCAL simulators require a connected graph")
    if not algorithm.supports_graph(graph):
        raise TopologyError(
            f"algorithm {algorithm.name!r} does not support graph {graph.name!r}"
        )


def run_ball_algorithm(
    graph: Graph,
    ids: IdentifierAssignment,
    algorithm: BallAlgorithm,
    max_radius: Optional[int] = None,
) -> ExecutionTrace:
    """Run ``algorithm`` on ``graph`` with identifiers ``ids``.

    Parameters
    ----------
    graph, ids:
        The instance.  The identifier assignment must cover exactly the
        graph's positions.
    algorithm:
        The ball-based algorithm to execute.
    max_radius:
        Optional hard cap on the radius explored per node.  Defaults to one
        more than the node's eccentricity, which is always sufficient for a
        correct algorithm.

    Returns
    -------
    ExecutionTrace
        Per-node radii and outputs.

    Notes
    -----
    Executes through the engine's :class:`~repro.engine.frontier.FrontierRunner`.
    Callers that run the same ``(graph, algorithm)`` pair on many assignments
    should build one session themselves (optionally with a
    :class:`~repro.engine.cache.DecisionCache`) to amortise precomputation.
    """
    _validate_instance(graph, ids, algorithm)
    runner = FrontierRunner(graph, algorithm, max_radius=max_radius, validate=False)
    return runner.run(ids)


def reference_run_ball_algorithm(
    graph: Graph,
    ids: IdentifierAssignment,
    algorithm: BallAlgorithm,
    max_radius: Optional[int] = None,
) -> ExecutionTrace:
    """The original node-by-node, from-scratch runner.

    Kept as the executable specification of :func:`run_ball_algorithm`: it
    re-extracts every ball with :func:`~repro.model.ball.extract_ball` and
    never shares work between radii, nodes or runs.  The property tests
    assert trace equality against the engine, and
    ``benchmarks/test_bench_engine.py`` uses it as the legacy baseline.
    """
    _validate_instance(graph, ids, algorithm)
    records: dict[int, NodeRecord] = {}
    for position in graph.positions():
        cap = max_radius if max_radius is not None else graph.eccentricity(position) + 1
        output = None
        radius_used: Optional[int] = None
        for radius in range(cap + 1):
            ball = extract_ball(graph, ids, position, radius)
            output = algorithm.decide(ball)
            if output is not None:
                radius_used = radius
                break
        if radius_used is None:
            raise AlgorithmError(
                f"algorithm {algorithm.name!r} refused to output at position {position} "
                f"even at radius {cap} (graph {graph.name!r}, n={graph.n})"
            )
        records[position] = NodeRecord(
            position=position,
            identifier=ids[position],
            radius=radius_used,
            output=output,
        )
    return ExecutionTrace(records)


def run_on_assignments(
    graph: Graph,
    assignments: Iterable[IdentifierAssignment],
    algorithm: BallAlgorithm,
    max_radius: Optional[int] = None,
    workers: Optional[int] = 1,
) -> list[ExecutionTrace]:
    """Run the algorithm on several identifier assignments of the same graph.

    All assignments share one engine session (with a decision cache), and
    ``workers > 1`` shards them across processes via the engine's
    :class:`~repro.engine.batch.BatchExecutor` — results keep input order
    either way.
    """
    assignments = list(assignments)
    for ids in assignments:
        if ids.n != graph.n:
            raise TopologyError(
                f"identifier assignment covers {ids.n} positions but graph has {graph.n}"
            )
    return run_simulation_batch(
        graph, assignments, algorithm, max_radius=max_radius, workers=workers
    )


def node_radius(
    graph: Graph,
    ids: IdentifierAssignment,
    algorithm: BallAlgorithm,
    position: int,
    max_radius: Optional[int] = None,
) -> int:
    """Radius at which a single node outputs (without running the other nodes).

    The theory modules use this to probe individual vertices cheaply — for
    example when scanning many identifier assignments for a vertex with a
    large radius, as in the lower-bound construction of Theorem 1.
    """
    runner = FrontierRunner(graph, algorithm, max_radius=max_radius, validate=False)
    return runner.node_radius(ids, position)
