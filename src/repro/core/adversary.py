"""Adversaries over identifier assignments.

Both measures in the paper are worst cases *over the identifier assignment*.
On small instances the maximum can be computed exhaustively (all ``n!``
permutations); on larger instances we fall back to randomised search and
hill climbing, whose result is a certified **lower bound** on the true worst
case (the witness assignment is returned so callers can re-verify it).

The adversaries are deliberately algorithm-agnostic: they only observe the
scalar objective of a full run, never the algorithm's internals.

Every search evaluates thousands of assignments of the *same* graph with the
*same* algorithm, so all adversaries share one engine session per
:meth:`Adversary.maximise` call — a
:class:`~repro.engine.frontier.FrontierRunner` with a
:class:`~repro.engine.cache.DecisionCache` — and structurally repeated balls
skip the simulation entirely.  The cache statistics of the search are
reported on :attr:`AdversaryResult.cache_stats`.

The classes in this module are the first-generation (reference) searches.
The second-generation subsystem in :mod:`repro.search` — symmetry-pruned
branch and bound, incremental swap evaluation, a parallel strategy
portfolio — implements the same :class:`Adversary` interface and is
re-exported here (lazily, to keep the import graph acyclic) as
:class:`PrunedExhaustiveAdversary`, :class:`BranchAndBoundAdversary` and
:class:`PortfolioAdversary`.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.algorithm import BallAlgorithm
from repro.engine.cache import CacheStats, DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.errors import AnalysisError, ConfigurationError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment, identity_assignment, random_assignment
from repro.model.trace import ExecutionTrace
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive_int

#: Objectives an adversary can maximise.
OBJECTIVES = ("average", "max", "sum")


def validate_objective(objective: str) -> None:
    """Reject unknown objectives eagerly, before any simulation work.

    >>> validate_objective("average")
    >>> validate_objective("median")
    Traceback (most recent call last):
        ...
    repro.errors.AnalysisError: unknown objective 'median'; expected one of ('average', 'max', 'sum')
    """
    if objective not in OBJECTIVES:
        raise AnalysisError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )


def trace_objective(trace: ExecutionTrace, objective: str) -> float:
    """Scalar value of one execution trace under the chosen objective.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.core.runner import run_ball_algorithm
    >>> from repro.model.identifiers import identity_assignment
    >>> from repro.topology.cycle import cycle_graph
    >>> trace = run_ball_algorithm(cycle_graph(4), identity_assignment(4), LargestIdAlgorithm())
    >>> trace_objective(trace, "max") == float(trace.max_radius)
    True
    >>> trace_objective(trace, "sum") == trace_objective(trace, "average") * 4
    True
    """
    if objective == "average":
        return trace.average_radius
    if objective == "max":
        return float(trace.max_radius)
    if objective == "sum":
        return float(trace.sum_radius)
    raise AnalysisError(f"unknown objective {objective!r}; expected one of {OBJECTIVES}")


@dataclass(frozen=True)
class AdversaryResult:
    """Outcome of an adversarial search.

    ``value`` is the objective achieved by ``assignment`` (whose full trace
    is included), ``evaluations`` counts how many assignments were tried and
    ``exact`` records whether the search provably covered the whole space.
    ``cache_stats``, when present, summarises the decision-cache hit rate of
    the engine session that powered the search.  The second-generation
    adversaries (:mod:`repro.search`) additionally attach a ``certificate``
    — a :class:`~repro.search.branch_bound.SearchCertificate` for exact
    searches, a :class:`~repro.search.portfolio.PortfolioCertificate` for
    heuristic ones — so the claim behind ``exact`` is auditable.
    """

    assignment: IdentifierAssignment
    trace: ExecutionTrace
    value: float
    objective: str
    evaluations: int
    exact: bool
    cache_stats: Optional[CacheStats] = None
    certificate: Optional[object] = None


#: Memory bound for the per-search decision caches: long searches on graphs
#: with mostly-distinct balls would otherwise grow the table linearly with
#: the number of evaluations.
SESSION_CACHE_MAX_ENTRIES = 1 << 18


class _SessionEvaluator:
    """One engine session (runner + decision cache) for a whole search."""

    def __init__(self, graph: Graph, algorithm: BallAlgorithm, objective: str) -> None:
        self.cache = DecisionCache(algorithm, max_entries=SESSION_CACHE_MAX_ENTRIES)
        self.runner = FrontierRunner(graph, algorithm, cache=self.cache)
        self.objective = objective

    def __call__(self, ids: IdentifierAssignment) -> tuple[ExecutionTrace, float]:
        trace = self.runner.run(ids)
        return trace, trace_objective(trace, self.objective)

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats


class Adversary(abc.ABC):
    """Base class: search identifier assignments maximising an objective."""

    @abc.abstractmethod
    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        """Return the best assignment found for the given objective."""

    @staticmethod
    def _evaluate(
        graph: Graph, ids: IdentifierAssignment, algorithm: BallAlgorithm, objective: str
    ) -> tuple[ExecutionTrace, float]:
        """One-shot evaluation (compatibility path; searches use a session)."""
        from repro.core.runner import run_ball_algorithm

        trace = run_ball_algorithm(graph, ids, algorithm)
        return trace, trace_objective(trace, objective)


class ExhaustiveAdversary(Adversary):
    """Try every permutation of ``0..n-1`` — exact, but only feasible for tiny n.

    ``max_nodes`` protects against accidentally launching a factorial search
    on a large graph.  This is the reference implementation that the
    symmetry-pruned searches of :mod:`repro.search` are verified against;
    for anything beyond toy sizes prefer
    :class:`~repro.search.adversaries.BranchAndBoundAdversary`, which
    returns the same certified optimum while enumerating only one
    assignment per automorphism class.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> result = ExhaustiveAdversary().maximise(
    ...     cycle_graph(4), LargestIdAlgorithm(), objective="max"
    ... )
    >>> result.exact, result.evaluations
    (True, 24)
    >>> result.value == float(result.trace.max_radius)
    True
    """

    def __init__(self, max_nodes: int = 9) -> None:
        require_positive_int(max_nodes, "max_nodes")
        self.max_nodes = max_nodes

    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        validate_objective(objective)
        if graph.n > self.max_nodes:
            raise ConfigurationError(
                f"ExhaustiveAdversary is limited to {self.max_nodes} nodes "
                f"(got {graph.n}); use RandomSearchAdversary or LocalSearchAdversary"
            )
        evaluate = _SessionEvaluator(graph, algorithm, objective)
        best: AdversaryResult | None = None
        evaluations = 0
        for permutation in itertools.permutations(range(graph.n)):
            ids = IdentifierAssignment(permutation)
            trace, value = evaluate(ids)
            evaluations += 1
            if best is None or value > best.value:
                best = AdversaryResult(
                    assignment=ids,
                    trace=trace,
                    value=value,
                    objective=objective,
                    evaluations=evaluations,
                    exact=True,
                )
        if best is None:
            raise AnalysisError("cannot run an adversary on an empty graph")
        return AdversaryResult(
            assignment=best.assignment,
            trace=best.trace,
            value=best.value,
            objective=objective,
            evaluations=evaluations,
            exact=True,
            cache_stats=evaluate.cache_stats,
        )


class RandomSearchAdversary(Adversary):
    """Sample ``samples`` uniformly random assignments and keep the best."""

    def __init__(self, samples: int = 64, seed: SeedLike = None) -> None:
        require_positive_int(samples, "samples")
        self.samples = samples
        self.seed = seed

    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        validate_objective(objective)
        rng = make_rng(self.seed)
        evaluate = _SessionEvaluator(graph, algorithm, objective)
        best: AdversaryResult | None = None
        for index in range(self.samples):
            ids = random_assignment(graph.n, seed=rng.getrandbits(64))
            trace, value = evaluate(ids)
            if best is None or value > best.value:
                best = AdversaryResult(
                    assignment=ids,
                    trace=trace,
                    value=value,
                    objective=objective,
                    evaluations=index + 1,
                    exact=False,
                )
        assert best is not None  # samples >= 1
        return AdversaryResult(
            assignment=best.assignment,
            trace=best.trace,
            value=best.value,
            objective=objective,
            evaluations=self.samples,
            exact=False,
            cache_stats=evaluate.cache_stats,
        )


class LocalSearchAdversary(Adversary):
    """Hill climbing over pairwise identifier swaps, with random restarts.

    Each restart begins from a random assignment and repeatedly applies the
    best improving swap among a random sample of position pairs; the search
    stops when no sampled swap improves the objective.

    Swaps move only two identifiers, so consecutive candidates share almost
    every ball — the access pattern on which the shared decision cache pays
    off the most.
    """

    def __init__(
        self,
        restarts: int = 4,
        swaps_per_step: int = 32,
        max_steps: int = 64,
        seed: SeedLike = None,
    ) -> None:
        require_positive_int(restarts, "restarts")
        require_positive_int(swaps_per_step, "swaps_per_step")
        require_positive_int(max_steps, "max_steps")
        self.restarts = restarts
        self.swaps_per_step = swaps_per_step
        self.max_steps = max_steps
        self.seed = seed

    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        validate_objective(objective)
        rng = make_rng(self.seed)
        evaluate = _SessionEvaluator(graph, algorithm, objective)
        best: AdversaryResult | None = None
        evaluations = 0
        for _ in range(self.restarts):
            current = random_assignment(graph.n, seed=rng.getrandbits(64))
            current_trace, current_value = evaluate(current)
            evaluations += 1
            for _ in range(self.max_steps):
                improved = False
                for _ in range(self.swaps_per_step):
                    a, b = rng.sample(range(graph.n), 2) if graph.n > 1 else (0, 0)
                    candidate = current.with_swap(a, b)
                    trace, value = evaluate(candidate)
                    evaluations += 1
                    if value > current_value:
                        current, current_trace, current_value = candidate, trace, value
                        improved = True
                if not improved:
                    break
            if best is None or current_value > best.value:
                best = AdversaryResult(
                    assignment=current,
                    trace=current_trace,
                    value=current_value,
                    objective=objective,
                    evaluations=evaluations,
                    exact=False,
                )
        assert best is not None  # restarts >= 1
        return AdversaryResult(
            assignment=best.assignment,
            trace=best.trace,
            value=best.value,
            objective=objective,
            evaluations=evaluations,
            exact=False,
            cache_stats=evaluate.cache_stats,
        )


class RotationAdversary(Adversary):
    """Evaluate all cyclic rotations of a base assignment.

    On vertex-transitive topologies such as the cycle, rotating a fixed
    identifier pattern explores the interesting structural variations far
    more cheaply than permuting identifiers at random; it is also the
    natural adversary when the base pattern is itself meaningful (sorted
    identifiers, adversarial blocks, ...).
    """

    def __init__(self, base: IdentifierAssignment | None = None) -> None:
        self.base = base

    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        validate_objective(objective)
        base = self.base if self.base is not None else identity_assignment(graph.n)
        if base.n != graph.n:
            raise ConfigurationError(
                f"base assignment covers {base.n} positions but graph has {graph.n}"
            )
        evaluate = _SessionEvaluator(graph, algorithm, objective)
        best: AdversaryResult | None = None
        for shift in range(graph.n):
            ids = base.rotated(shift)
            trace, value = evaluate(ids)
            if best is None or value > best.value:
                best = AdversaryResult(
                    assignment=ids,
                    trace=trace,
                    value=value,
                    objective=objective,
                    evaluations=shift + 1,
                    exact=False,
                )
        if best is None:
            raise AnalysisError("cannot run an adversary on an empty graph")
        return AdversaryResult(
            assignment=best.assignment,
            trace=best.trace,
            value=best.value,
            objective=objective,
            evaluations=graph.n,
            exact=False,
            cache_stats=evaluate.cache_stats,
        )


#: Second-generation adversaries re-exported from :mod:`repro.search`.
_SEARCH_ADVERSARIES = (
    "PrunedExhaustiveAdversary",
    "BranchAndBoundAdversary",
    "PortfolioAdversary",
)


def __getattr__(name: str):
    """Lazily resolve the :mod:`repro.search` adversaries (PEP 562).

    ``repro.search`` imports this module for the base classes, so importing
    it eagerly here would create a cycle; deferring the import keeps
    ``from repro.core.adversary import BranchAndBoundAdversary`` working
    without one.
    """
    if name in _SEARCH_ADVERSARIES:
        import repro.search.adversaries as _search_adversaries

        return getattr(_search_adversaries, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
