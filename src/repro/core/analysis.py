"""Growth-rate analysis.

The paper's claims are asymptotic ("the average radius is logarithmic",
"the worst case is linear", "the lower bound is Omega(log* n)").  To compare
a measured series against those claims we fit the series, by least squares
on a multiplicative constant, against a family of candidate growth functions
and report which candidate explains the data best.

The fit is deliberately simple — one scale parameter per candidate, compared
by relative root-mean-square error — because the goal is to distinguish
log n from n, or log* n from log n, not to estimate constants precisely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import AnalysisError
from repro.utils.math_functions import log_star


def growth_candidates() -> dict[str, Callable[[float], float]]:
    """The named growth functions the fitter considers."""
    return {
        "constant": lambda n: 1.0,
        "log*": lambda n: float(log_star(n)) if n > 1 else 1.0,
        "loglog": lambda n: math.log(math.log(n)) if n > math.e else 1.0,
        "log": lambda n: math.log(n) if n > 1 else 1.0,
        "sqrt": lambda n: math.sqrt(n),
        "linear": lambda n: float(n),
        "nlogn": lambda n: n * math.log(n) if n > 1 else 1.0,
        "quadratic": lambda n: float(n) * float(n),
    }


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting one measured series."""

    best_name: str
    scale: float
    relative_error: float
    errors_by_name: Mapping[str, float]

    def is_consistent_with(self, name: str, tolerance: float = 1.5) -> bool:
        """Whether ``name`` explains the data nearly as well as the best fit.

        A candidate is "consistent" when its relative error is within
        ``tolerance`` times the best candidate's error; this keeps the test
        suite robust to small-size effects where, say, ``log`` and ``loglog``
        are hard to separate.
        """
        if name not in self.errors_by_name:
            raise AnalysisError(f"unknown candidate {name!r}")
        best_error = self.errors_by_name[self.best_name]
        return self.errors_by_name[name] <= max(best_error * tolerance, best_error + 1e-9)


def _fit_scale(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares scale ``c`` minimising ``sum (c*x - y)^2`` and its error."""
    denominator = sum(x * x for x in xs)
    if denominator == 0:
        return 0.0, math.inf
    scale = sum(x * y for x, y in zip(xs, ys)) / denominator
    norm = math.sqrt(sum(y * y for y in ys)) or 1.0
    error = math.sqrt(sum((scale * x - y) ** 2 for x, y in zip(xs, ys))) / norm
    return scale, error


def fit_growth(
    sizes: Sequence[float],
    values: Sequence[float],
    candidates: Mapping[str, Callable[[float], float]] | None = None,
) -> GrowthFit:
    """Fit ``values`` (indexed by ``sizes``) against the candidate growth laws."""
    if len(sizes) != len(values):
        raise AnalysisError(
            f"sizes and values must have equal length, got {len(sizes)} and {len(values)}"
        )
    if len(sizes) < 3:
        raise AnalysisError("growth fitting needs at least three data points")
    if any(size <= 0 for size in sizes):
        raise AnalysisError("sizes must be positive")
    functions = dict(candidates) if candidates is not None else growth_candidates()
    errors: dict[str, float] = {}
    scales: dict[str, float] = {}
    for name, function in functions.items():
        xs = [function(float(size)) for size in sizes]
        scale, error = _fit_scale(xs, [float(v) for v in values])
        errors[name] = error
        scales[name] = scale
    best_name = min(errors, key=lambda name: errors[name])
    return GrowthFit(
        best_name=best_name,
        scale=scales[best_name],
        relative_error=errors[best_name],
        errors_by_name=errors,
    )


def ratio_series(sizes: Sequence[float], values: Sequence[float]) -> list[float]:
    """Successive ratios ``values[i+1] / values[i]`` (a quick doubling check).

    For sizes that double at every step, a series growing like ``n`` has
    ratios near 2, like ``log n`` ratios tending to 1, and like ``n log n``
    ratios a bit above 2.
    """
    if len(sizes) != len(values):
        raise AnalysisError("sizes and values must have equal length")
    ratios = []
    for previous, current in zip(values, values[1:]):
        if previous == 0:
            ratios.append(math.inf)
        else:
            ratios.append(current / previous)
    return ratios


def empirical_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Log-log slope estimate of the series (1.0 for linear growth, ~0 for log).

    Uses the endpoints only, which is crude but monotone-robust; the full
    fitter above should be preferred when more nuance is needed.
    """
    if len(sizes) < 2:
        raise AnalysisError("empirical_exponent needs at least two points")
    first_size, last_size = float(sizes[0]), float(sizes[-1])
    first_value, last_value = float(values[0]), float(values[-1])
    if min(first_size, last_size, first_value, last_value) <= 0:
        raise AnalysisError("empirical_exponent requires positive sizes and values")
    return math.log(last_value / first_value) / math.log(last_size / first_size)
