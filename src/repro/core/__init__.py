"""The paper's primary contribution: complexity measures for LOCAL algorithms.

The core package defines the ball-based algorithm interface
(:class:`~repro.core.algorithm.BallAlgorithm`), the deterministic runner that
records the radius at which every node outputs, the *average* and *classic*
complexity measures (worst case over identifier assignments), adversaries
that search for bad identifier assignments, output certifiers, and the
growth-rate analysis used to compare measured series against the paper's
asymptotic claims.
"""

from repro.core.algorithm import BallAlgorithm, FunctionBallAlgorithm
from repro.core.adversary import (
    AdversaryResult,
    ExhaustiveAdversary,
    LocalSearchAdversary,
    RandomSearchAdversary,
    RotationAdversary,
)
from repro.core.analysis import GrowthFit, fit_growth, growth_candidates, ratio_series
from repro.core.certification import (
    certify,
    certify_largest_id,
    certify_leader_election,
    certify_maximal_independent_set,
    certify_proper_coloring,
    register_certifier,
)
from repro.core.measures import (
    AVERAGE_MEASURE,
    CLASSIC_MEASURE,
    MEASURES,
    SUM_MEASURE,
    ComplexityReport,
    Measure,
    average_complexity,
    classic_complexity,
    evaluate_assignment,
    exact_measure_distribution,
    expected_measures_over_random_ids,
    get_measure,
    sampled_measure_distribution,
    worst_case_over_assignments,
)
from repro.core.runner import run_ball_algorithm, run_on_assignments

__all__ = [
    "AVERAGE_MEASURE",
    "AdversaryResult",
    "BallAlgorithm",
    "CLASSIC_MEASURE",
    "ComplexityReport",
    "ExhaustiveAdversary",
    "FunctionBallAlgorithm",
    "GrowthFit",
    "LocalSearchAdversary",
    "MEASURES",
    "Measure",
    "RandomSearchAdversary",
    "RotationAdversary",
    "SUM_MEASURE",
    "average_complexity",
    "certify",
    "certify_largest_id",
    "certify_leader_election",
    "certify_maximal_independent_set",
    "certify_proper_coloring",
    "classic_complexity",
    "evaluate_assignment",
    "exact_measure_distribution",
    "expected_measures_over_random_ids",
    "fit_growth",
    "get_measure",
    "sampled_measure_distribution",
    "growth_candidates",
    "ratio_series",
    "ratio_series",
    "register_certifier",
    "run_ball_algorithm",
    "run_on_assignments",
    "worst_case_over_assignments",
]
