"""Exact measure distributions over all ``n!`` identifier assignments.

The brute-force way to know how ``(max_radius, average_radius)`` is
distributed over identifier assignments is to simulate all ``n!`` of them.
This module computes the *same* distribution from ``n!/|Aut|`` simulations:
the canonical enumeration of :class:`~repro.search.branch_bound.BranchAndBoundSearch`
(bound pruning disabled) visits exactly one representative per orbit of the
graph's automorphism group, and because the group acts **freely** on
bijective assignments, every orbit has exactly ``|Aut|`` members — each
canonical leaf carries multiplicity ``|Aut|``, and the weighted total is
exactly ``n!``.

Per-node marginals need one more step: composing an assignment with an
automorphism ``sigma`` permutes the radius vector (``r'(v) = r(sigma(v))``),
so a node's marginal over a full orbit mixes the radii of its *position
orbit*.  :func:`exact_round_distribution` therefore accumulates per-position
leaf counts and redistributes them over each position's orbit with weight
``|Aut| / |orbit|``.

Every result carries a :class:`DistributionCertificate` — the distribution
analogue of :class:`~repro.search.branch_bound.SearchCertificate` — so the
"this is exactly the all-``n!`` distribution" claim is auditable: class
count times class weight must equal ``n!``, and the tests and benchmarks
cross-check against :func:`brute_force_round_distribution`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.algorithm import BallAlgorithm
from repro.dist.distribution import RoundDistribution
from repro.engine.frontier import FrontierRunner
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.obs.spans import span as _obs_span
from repro.search.automorphisms import orbit_partition
from repro.search.branch_bound import BranchAndBoundSearch

#: Feasibility guards shared with the exact adversaries: the enumeration is
#: still factorial on asymmetric graphs, so both caps remain.
DEFAULT_EXACT_MAX_NODES = 12
DEFAULT_MAX_CLASSES = 250_000


@dataclass(frozen=True)
class DistributionCertificate:
    """Audit trail of one exact distribution computation.

    ``space_size`` is the full ``n!``; ``canonical_leaves`` is how many
    symmetry-inequivalent assignments were actually simulated, each counted
    with multiplicity ``class_weight`` (the automorphism group order).  An
    exact certificate always satisfies ``canonical_leaves * class_weight ==
    space_size == total_weight``.
    """

    exact: bool
    space_size: int
    group_order: int
    group_respects_ports: bool
    canonical_leaves: int
    class_weight: int
    total_weight: int
    nodes_expanded: int

    def as_dict(self) -> dict:
        """JSON-friendly form (campaign rows, CLI artifacts)."""
        return {
            "exact": self.exact,
            "space_size": self.space_size,
            "group_order": self.group_order,
            "group_respects_ports": self.group_respects_ports,
            "canonical_leaves": self.canonical_leaves,
            "class_weight": self.class_weight,
            "total_weight": self.total_weight,
            "nodes_expanded": self.nodes_expanded,
        }


@dataclass(frozen=True)
class ExactDistributionResult:
    """An exact :class:`RoundDistribution` plus its certificate.

    ``kernel`` records how the canonical leaves were evaluated: for
    vectorised algorithms the backend/rule of the search's
    :class:`~repro.kernel.compile.CompiledInstance` (leaf cohorts ran as
    batches through
    :meth:`~repro.search.branch_bound.BranchAndBoundSearch.run_batched`);
    ``None`` when the eager in-DFS evaluation ran instead.
    """

    distribution: RoundDistribution
    certificate: DistributionCertificate
    kernel: Optional[dict] = None


def exact_round_distribution(
    graph: Graph,
    algorithm: BallAlgorithm,
    respect_ports: Optional[bool] = None,
    max_nodes: int = DEFAULT_EXACT_MAX_NODES,
    max_classes: int = DEFAULT_MAX_CLASSES,
) -> ExactDistributionResult:
    """The exact distribution of ``(max_radius, sum_radius)`` over all ``n!``.

    One representative per canonical assignment class is simulated through
    the symmetry-pruned enumerator (bound pruning disabled — every class
    must be *visited*, not just dominated) and weighted by the class
    multiplicity ``|Aut|``.  The result equals
    :func:`brute_force_round_distribution` exactly, at a fraction of the
    simulations on symmetric topologies.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> result = exact_round_distribution(cycle_graph(6), LargestIdAlgorithm())
    >>> result.distribution.total_weight
    720
    >>> result.certificate.canonical_leaves * result.certificate.class_weight
    720
    >>> result.distribution.max_distribution().support()
    (3,)
    """
    if graph.n > max_nodes:
        raise ConfigurationError(
            f"exact_round_distribution is limited to {max_nodes} nodes "
            f"(got {graph.n}); use repro.dist.sampling for larger instances"
        )
    search = BranchAndBoundSearch(
        graph,
        algorithm,
        objective="sum",
        use_bound=False,
        respect_ports=respect_ports,
    )
    group = search.group
    classes = math.factorial(graph.n) // max(1, group.order)
    if classes > max_classes:
        raise ConfigurationError(
            f"exact_round_distribution on {graph.name!r} faces ~{classes} canonical "
            f"assignment classes (n! / |Aut| with |Aut| = {group.order}), above the "
            f"budget of {max_classes}; raise max_classes or sample instead"
        )
    n = graph.n
    joint: dict[tuple[int, int], int] = {}
    position_counts: list[dict[int, int]] = [{} for _ in range(n)]

    def collect(ids_by_position, radius_of) -> None:
        max_radius = 0
        sum_radius = 0
        for position in range(n):
            radius = radius_of[position]
            sum_radius += radius
            if radius > max_radius:
                max_radius = radius
            counts = position_counts[position]
            counts[radius] = counts.get(radius, 0) + 1
        key = (max_radius, sum_radius)
        joint[key] = joint.get(key, 0) + 1

    with _obs_span("dist.exact", n=n, classes=classes):
        outcome = search.run(on_leaf=collect)
    leaves = outcome.certificate.canonical_leaves
    order = group.order
    # The group acts freely on bijective assignments, so every orbit has
    # exactly |Aut| members and the weighted total is n! on the nose.
    weighted_joint = {pair: count * order for pair, count in joint.items()}
    # Node v's marginal mixes the leaf counts of its whole position orbit:
    # for each u in orbit(v) there are |Aut|/|orbit| automorphisms mapping
    # v to u, each contributing u's radius to v's distribution.
    marginals: list[dict[int, int]] = [{} for _ in range(n)]
    for orbit in orbit_partition(group):
        share = order // len(orbit)
        pooled: dict[int, int] = {}
        for u in orbit:
            for radius, count in position_counts[u].items():
                pooled[radius] = pooled.get(radius, 0) + count
        weighted = {radius: count * share for radius, count in pooled.items()}
        for v in orbit:
            marginals[v] = dict(weighted)
    distribution = RoundDistribution.from_counts(
        n=n, joint=weighted_joint, node_marginals=marginals
    )
    certificate = DistributionCertificate(
        exact=True,
        space_size=math.factorial(n),
        group_order=order,
        group_respects_ports=group.respects_ports,
        canonical_leaves=leaves,
        class_weight=order,
        total_weight=distribution.total_weight,
        nodes_expanded=outcome.certificate.nodes_expanded,
    )
    assert certificate.total_weight == certificate.space_size
    # Only claim kernel evaluation when the search actually delegated to
    # the batched cohort path (vectorised rules); eager in-DFS evaluation
    # reports no kernel so coverage numbers stay honest.
    kernel = search.kernel.describe() if search.kernel.vectorized else None
    return ExactDistributionResult(
        distribution=distribution,
        certificate=certificate,
        kernel=kernel,
    )


def brute_force_round_distribution(
    graph: Graph, algorithm: BallAlgorithm, max_nodes: int = 9
) -> RoundDistribution:
    """Reference implementation: simulate all ``n!`` assignments directly.

    Used by the property tests and the benchmark to certify
    :func:`exact_round_distribution`; one shared engine session keeps the
    cost bearable at the sizes where ``n!`` enumeration is feasible at all.
    """
    import itertools

    if graph.n > max_nodes:
        raise ConfigurationError(
            f"brute_force_round_distribution is limited to {max_nodes} nodes "
            f"(got {graph.n}); use exact_round_distribution instead"
        )
    n = graph.n
    runner = FrontierRunner(graph, algorithm)
    joint: dict[tuple[int, int], int] = {}
    marginals: list[dict[int, int]] = [{} for _ in range(n)]
    for permutation in itertools.permutations(range(n)):
        trace = runner.run(IdentifierAssignment(permutation))
        key = (trace.max_radius, trace.sum_radius)
        joint[key] = joint.get(key, 0) + 1
        for position, radius in trace.radii().items():
            counts = marginals[position]
            counts[radius] = counts.get(radius, 0) + 1
    return RoundDistribution.from_counts(n=n, joint=joint, node_marginals=marginals)
